//! Offline ChaCha-based random number generators.
//!
//! Implements the real ChaCha stream cipher core (D. J. Bernstein) with 12
//! rounds, buffered one 64-byte block at a time. Only the API surface this
//! workspace uses is provided: [`ChaCha12Rng`] plus the [`rand_core`]
//! re-exports. Streams are high-quality and fully deterministic from a
//! 32-byte (or splitmix-expanded 64-bit) seed; they are *not* guaranteed
//! byte-compatible with the upstream `rand_chacha` crate, which is fine
//! because every consumer in this repository derives and replays its own
//! seeds.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Re-export of the core traits under the path `rand_chacha::rand_core`,
/// matching the upstream crate layout.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const WORDS_PER_BLOCK: usize = 16;

#[inline]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha core with a compile-time round count.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ChaChaCore<const ROUNDS: usize> {
    /// Key words (state rows 1–2).
    key: [u32; 8],
    /// 64-bit block counter (state words 12–13).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `buf`; `WORDS_PER_BLOCK` means exhausted.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaCore<ROUNDS> {
    fn new(key_bytes: &[u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(key_bytes.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaCore {
            key,
            counter: 0,
            buf: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; WORDS_PER_BLOCK] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..(ROUNDS / 2) {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(initial.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index == WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Clone, Debug, PartialEq, Eq)]
        pub struct $name {
            core: ChaChaCore<$rounds>,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                $name {
                    core: ChaChaCore::new(&seed),
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                self.core.next_word()
            }

            fn next_u64(&mut self) -> u64 {
                let lo = u64::from(self.core.next_word());
                let hi = u64::from(self.core.next_word());
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(
    ChaCha12Rng,
    12,
    "ChaCha with 12 rounds (the workspace default)."
);
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        let mut b = ChaCha12Rng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect = [b.next_u64().to_le_bytes(), b.next_u64().to_le_bytes()].concat();
        assert_eq!(&buf[..], &expect[..]);
    }

    #[test]
    fn rounds_matter() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha12Rng::seed_from_u64(5);
        let mut c = ChaCha20Rng::seed_from_u64(5);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_ne!(x, y);
        assert_ne!(y, z);
    }

    #[test]
    fn output_is_balanced() {
        // Cheap sanity check on the keystream: bit balance over 64k bits.
        let mut rng = ChaCha12Rng::seed_from_u64(1234);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!(
            (total * 45 / 100..total * 55 / 100).contains(&ones),
            "ones = {ones} of {total}"
        );
    }
}
