//! Offline property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the [`proptest!`] macro with
//! `#![proptest_config(...)]`, `any::<T>()`, integer-range strategies,
//! [`collection::vec`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (test name hashed) so failures replay exactly, and there
//! is **no shrinking** — a failing case panics immediately with the
//! generated inputs printed, which is enough to reproduce and debug under
//! a deterministic generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-test run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving strategies (splitmix64 stream).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TestRng {
    /// Generator for one case of one named test.
    #[must_use]
    pub fn for_case(file: &str, test: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes().chain(test.bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: splitmix64(h ^ splitmix64(case)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter mapping values through a function (see
/// [`Strategy::prop_map`]).
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// One boxed generator arm of a [`OneOf`].
pub type OneOfArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice among boxed alternatives — the value behind the
/// [`prop_oneof!`] macro.
pub struct OneOf<V> {
    options: Vec<OneOfArm<V>>,
}

impl<V> OneOf<V> {
    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<OneOfArm<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof needs at least one arm");
        OneOf { options }
    }

    /// Boxes one strategy as an arm (implementation detail of
    /// [`prop_oneof!`]; keeps the macro's type inference anchored to the
    /// strategy's value type).
    pub fn arm<S: Strategy<Value = V> + 'static>(strategy: S) -> OneOfArm<V> {
        Box::new(move |rng| strategy.generate(rng))
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        (self.options[idx])(rng)
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` half the time and `Some` of the inner
    /// strategy otherwise (upstream's default probability).
    #[derive(Clone, Copy, Debug)]
    pub struct OptionStrategy<S>(S);

    /// `Option` strategy over `element`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() >> 63 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Uniform choice among strategies producing one common value type
/// (upstream's `prop_oneof!`; weights are not supported — all arms are
/// equally likely).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::OneOf::arm($strategy),)+])
    };
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for `any::<T>()`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy returning a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact length or a range.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy with the given element strategy and length spec.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.draw_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Just, Map, OneOf, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut rng =
                        $crate::TestRng::for_case(file!(), stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg,)*
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| -> ::std::ops::ControlFlow<()> {
                            { $body }
                            ::std::ops::ControlFlow::Continue(())
                        }),
                    );
                    match outcome {
                        Ok(_) => {}
                        Err(err) => {
                            eprintln!(
                                "proptest case {case} of {} failed with inputs: {}",
                                stringify!($name),
                                inputs
                            );
                            ::std::panic::resume_unwind(err);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("f", "t", 3);
        let mut b = TestRng::for_case("f", "t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("f", "t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(
            x in 3usize..10,
            y in 0u8..=7,
            z in any::<u64>(),
            f in -5i64..5,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 7);
            prop_assert!((-5..5).contains(&f));
            let _ = z;
        }

        #[test]
        fn vec_strategy_sizes(
            exact in collection::vec(any::<bool>(), 16),
            ranged in collection::vec(any::<u8>(), 1..9),
        ) {
            prop_assert_eq!(exact.len(), 16);
            prop_assert!((1..9).contains(&ranged.len()));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_transforms_values(doubled in (0u64..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled < 100);
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn oneof_picks_every_arm_eventually(
            v in prop_oneof![Just(1u8), Just(2u8), 10u8..20],
        ) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }

        #[test]
        fn option_of_produces_both_variants(o in crate::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn cases_vary_across_index() {
        let mut seen = std::collections::BTreeSet::new();
        for case in 0..32 {
            let mut rng = TestRng::for_case("f", "vary", case);
            seen.insert(rng.next_u64());
        }
        assert_eq!(seen.len(), 32);
    }
}
