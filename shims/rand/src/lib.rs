//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds with no network access, so the handful of `rand`
//! APIs the reproduction uses are implemented here from scratch: the
//! [`RngCore`] / [`SeedableRng`] / [`Rng`] traits, uniform range sampling,
//! and [`seq::index::sample`]. The statistical requirements are modest —
//! every consumer seeds its generator deterministically and the protocols
//! only need uniform draws — but all samplers below are unbiased-enough
//! (Lemire multiply-shift reduction, 53-bit floats) for the repository's
//! statistical tests.

#![forbid(unsafe_code)]

/// Low-level uniform bit source; mirror of `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// `splitmix64` (Steele, Lea, Flood 2014) — the same finalizer upstream
/// `rand` uses to expand `seed_from_u64` seeds.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic construction from seeds; mirror of
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed by splitmix64 expansion
    /// (bit-compatible with upstream `rand`'s default).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut acc = state;
        for chunk in bytes.chunks_mut(8) {
            acc = acc.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = acc;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let out = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&out[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Maps a 64-bit hash to `0..bound` without modulo bias (Lemire).
#[inline]
fn reduce64(hash: u64, bound: u64) -> u64 {
    ((u128::from(hash) * u128::from(bound)) >> 64) as u64
}

/// A uniform double in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable uniformly from their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Integer types supporting uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64) - (lo as u64);
                lo + reduce64(rng.next_u64(), span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + reduce64(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(reduce64(rng.next_u64(), span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(reduce64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // Closed float intervals are sampled like half-open ones; the
        // endpoint has measure zero.
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty inclusive range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Types fillable with uniform randomness via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with uniform random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling helpers; mirror of `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }

    /// Fills `dest` with uniform random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers; mirror of `rand::seq`.
pub mod seq {
    /// Index sampling; mirror of `rand::seq::index`.
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a plain vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// (Floyd's algorithm, `amount` draws, `O(amount log amount)`).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} of {length} indices"
            );
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in (length - amount)..length {
                let t = rng.gen_range(0..=j);
                match chosen.binary_search(&t) {
                    Ok(_) => {
                        let pos = chosen.binary_search(&j).unwrap_err();
                        chosen.insert(pos, j);
                    }
                    Err(pos) => chosen.insert(pos, t),
                }
            }
            IndexVec(chosen)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            splitmix64(self.0)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..5);
            assert!(w < 5);
            let f: f64 = rng.gen_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let i: i64 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn sample_returns_distinct_in_range() {
        let mut rng = Counter(3);
        for _ in 0..100 {
            let idx = seq::index::sample(&mut rng, 50, 20);
            let v = idx.into_vec();
            assert_eq!(v.len(), 20);
            let mut sorted = v.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), 20);
            assert!(v.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_full_range_is_permutation_support() {
        let mut rng = Counter(9);
        let v = seq::index::sample(&mut rng, 8, 8).into_vec();
        let mut sorted = v;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let mut rng = Counter(11);
        let mut counts = [0u32; 10];
        for _ in 0..5_000 {
            for i in seq::index::sample(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Each index should appear ~1500 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_200..1_800).contains(&c), "index {i} drawn {c} times");
        }
    }
}
