//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API the workspace's benches use: [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is warmed up for a fixed wall-clock
//! budget, then timed over batches until the measurement budget elapses;
//! the mean, minimum and maximum per-iteration times are printed. This is
//! deliberately simpler than criterion's bootstrap statistics but stable
//! enough to spot order-of-magnitude regressions, which is what the
//! repository's perf acceptance criteria track.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Formats a per-iteration duration with an adaptive unit.
fn fmt_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iters: u64,
    measure_budget: Duration,
}

impl Bencher {
    fn new(measure_budget: Duration) -> Self {
        Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            max_ns: 0.0,
            iters: 0,
            measure_budget,
        }
    }

    /// Runs `f` repeatedly and records per-iteration timing.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until ~20% of the budget is spent (at least once).
        let warmup_budget = self.measure_budget / 5;
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if start.elapsed() >= warmup_budget {
                break;
            }
        }
        // Choose a batch size targeting ~20 batches in the budget.
        let per_iter = start.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let budget_ns = self.measure_budget.as_nanos() as f64;
        let batch = ((budget_ns / 20.0 / per_iter.max(1.0)).ceil() as u64).max(1);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns: f64 = 0.0;
        let measure_start = Instant::now();
        while measure_start.elapsed().as_nanos() as f64 <= budget_ns {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let batch_ns = t0.elapsed().as_nanos() as f64;
            let per = batch_ns / batch as f64;
            min_ns = min_ns.min(per);
            max_ns = max_ns.max(per);
            total_ns += batch_ns;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.min_ns = min_ns;
        self.max_ns = max_ns;
        self.iters = total_iters;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Adjusts the sampling effort (scales the measurement budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn budget(&self) -> Duration {
        // criterion's default sample count is 100; scale our fixed budget
        // accordingly so `sample_size(10)` benches run faster.
        let base = Duration::from_millis(300);
        base.mul_f64((self.sample_size as f64 / 100.0).clamp(0.05, 1.0))
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let budget = self.budget();
        self.criterion.run_one(&full, budget, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let budget = self.budget();
        self.criterion.run_one(&full, budget, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, budget: Duration, mut f: F) {
        let mut b = Bencher::new(budget);
        f(&mut b);
        if b.iters == 0 {
            println!("{name:<48} (no iterations recorded)");
        } else {
            println!(
                "{name:<48} time: [{} {} {}]  ({} iters)",
                fmt_time(b.min_ns),
                fmt_time(b.mean_ns),
                fmt_time(b.max_ns),
                b.iters
            );
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let budget = self.measure_budget;
        self.run_one(name, budget, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut b = Bencher::new(Duration::from_millis(20));
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert!(b.iters > 0);
        assert!(b.mean_ns > 0.0);
        assert!(b.min_ns <= b.mean_ns && b.mean_ns <= b.max_ns);
    }

    #[test]
    fn group_and_function_apis_run() {
        let mut c = Criterion {
            measure_budget: Duration::from_millis(5),
        };
        c.bench_function("shim/self_test", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("shim/group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn time_formatting_units() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("µs"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
        assert!(fmt_time(2.0e9).ends_with(" s"));
    }
}
