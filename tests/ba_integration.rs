//! End-to-end Byzantine Agreement integration tests: the committee-tree
//! almost-everywhere phase composed with AER, under fault injection and
//! at the resilience boundary.

use fba::ae::{run_ae, AeConfig};
use fba::core::adversary::{AttackContext, BadString, Corner};
use fba::core::{run_ba, BaConfig};
use fba::samplers::GString;
use fba::sim::{NoAdversary, SilentAdversary};

#[test]
fn ba_succeeds_fault_free_across_sizes() {
    for n in [32, 64, 128] {
        let cfg = BaConfig::recommended(n);
        let (report, ae, _) = run_ba(&cfg, 3, &mut NoAdversary, |_, _| NoAdversary, None);
        assert!(report.success(), "n={n}: {report:?}");
        assert_eq!(report.agreed.as_ref(), Some(&ae.gstring));
        assert!(report.knowing_fraction_after_ae > 0.9, "n={n}");
    }
}

#[test]
fn ba_phase_rounds_are_polylogarithmic() {
    let small = {
        let cfg = BaConfig::recommended(32);
        let (r, _, _) = run_ba(&cfg, 5, &mut NoAdversary, |_, _| NoAdversary, None);
        r.ae_rounds + r.aer_rounds.unwrap_or(0)
    };
    let large = {
        let cfg = BaConfig::recommended(256);
        let (r, _, _) = run_ba(&cfg, 5, &mut NoAdversary, |_, _| NoAdversary, None);
        r.ae_rounds + r.aer_rounds.unwrap_or(0)
    };
    // ×8 nodes: rounds grow additively (tree depth), not multiplicatively.
    assert!(
        large < small + 16,
        "rounds should grow logarithmically: {small} -> {large}"
    );
}

#[test]
fn ba_tolerates_silent_faults_through_both_phases() {
    let n = 128;
    let cfg = BaConfig::recommended(n);
    for seed in [7u64, 8] {
        let t = n / 8;
        let (report, _, run) = run_ba(
            &cfg,
            seed,
            &mut SilentAdversary::new(t),
            |_, _| SilentAdversary::new(t),
            None,
        );
        assert!(report.agreed.is_some(), "seed {seed}: disagreement");
        assert!(report.matches_ae_majority, "seed {seed}");
        assert!(
            run.metrics.decided_fraction() > 0.95,
            "seed {seed}: too many undecided"
        );
    }
}

#[test]
fn ba_resists_combined_ae_faults_and_aer_campaign() {
    let n = 96;
    let cfg = BaConfig::recommended(n);
    let (report, ae, run) = run_ba(
        &cfg,
        11,
        &mut SilentAdversary::new(n / 10),
        |harness, gstring| {
            let ctx = AttackContext::new(harness, *gstring);
            BadString::new(ctx, GString::zeroes(gstring.len_bits()))
        },
        None,
    );
    let zero = GString::zeroes(ae.gstring.len_bits());
    for (id, v) in &run.outputs {
        assert_ne!(v, &zero, "node {id} fell for the campaign");
    }
    assert!(report.knowing_fraction_after_ae > 0.75);
}

#[test]
fn ba_runs_with_async_aer_phase_and_cornering() {
    let n = 96;
    let cfg = BaConfig::recommended(n);
    let aer_engine = {
        let pre_cfg = cfg.aer;
        let h = fba::core::AerHarness::new(pre_cfg, vec![GString::zeroes(pre_cfg.string_len); n]);
        h.engine_async(1)
    };
    let (report, ae, run) = run_ba(
        &cfg,
        13,
        &mut NoAdversary,
        |harness, gstring| {
            let ctx = AttackContext::new(harness, *gstring);
            Corner::new(ctx, 128)
        },
        Some(aer_engine),
    );
    for v in run.outputs.values() {
        assert_eq!(v, &ae.gstring, "cornering must only delay, never corrupt");
    }
    assert!(report.decided_nodes as f64 >= 0.9 * report.correct_nodes as f64);
}

#[test]
fn ae_phase_alone_meets_its_contract_under_faults() {
    for n in [64, 128, 256] {
        let cfg = AeConfig::recommended(n);
        let t = n / 8;
        let out = run_ae(&cfg, 18, &mut SilentAdversary::new(t));
        assert!(
            out.knowing_fraction > 0.75,
            "n={n}: contract violated ({:.2})",
            out.knowing_fraction
        );
        assert_eq!(out.gstring.len_bits(), cfg.string_len);
        // The precondition conversion round-trips.
        let pre = out.to_precondition(n, cfg.string_len);
        assert!(pre.satisfies_assumption(&out.run.corrupt, 1.0 / 12.0));
    }
}

#[test]
fn ba_gstring_varies_across_runs() {
    // The agreed value carries the committee's randomness: different
    // seeds must give different strings (probability of collision is
    // 2^-len).
    let cfg = BaConfig::recommended(64);
    let (r1, _, _) = run_ba(&cfg, 100, &mut NoAdversary, |_, _| NoAdversary, None);
    let (r2, _, _) = run_ba(&cfg, 101, &mut NoAdversary, |_, _| NoAdversary, None);
    assert_ne!(r1.agreed, r2.agreed);
}
