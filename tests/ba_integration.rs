//! End-to-end Byzantine Agreement integration tests: the committee-tree
//! almost-everywhere phase composed with AER, under fault injection and
//! at the resilience boundary — all runs constructed through the
//! [`Scenario`] builder.

use fba::samplers::GString;
use fba::scenario::{Phase, Scenario};
use fba::sim::{AdversarySpec, NetworkSpec};

#[test]
fn ba_succeeds_fault_free_across_sizes() {
    for n in [32, 64, 128] {
        let run = Scenario::new(n)
            .phase(Phase::Composed)
            .run(3)
            .expect("valid scenario")
            .into_composed();
        assert!(run.report.success(), "n={n}: {:?}", run.report);
        assert_eq!(run.report.agreed.as_ref(), Some(&run.ae.gstring));
        assert!(run.report.knowing_fraction_after_ae > 0.9, "n={n}");
    }
}

#[test]
fn ba_phase_rounds_are_polylogarithmic() {
    let rounds = |n: usize| {
        let run = Scenario::new(n)
            .phase(Phase::Composed)
            .run(5)
            .expect("valid scenario")
            .into_composed();
        run.report.ae_rounds + run.report.aer_rounds.unwrap_or(0)
    };
    let small = rounds(32);
    let large = rounds(256);
    // ×8 nodes: rounds grow additively (tree depth), not multiplicatively.
    assert!(
        large < small + 16,
        "rounds should grow logarithmically: {small} -> {large}"
    );
}

#[test]
fn ba_tolerates_silent_faults_through_both_phases() {
    let n = 128;
    for seed in [7u64, 8] {
        let run = Scenario::new(n)
            .phase(Phase::Composed)
            .faults(n / 8)
            .ae_adversary(AdversarySpec::Silent { t: None })
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("valid scenario")
            .into_composed();
        assert!(run.report.agreed.is_some(), "seed {seed}: disagreement");
        assert!(run.report.matches_ae_majority, "seed {seed}");
        assert!(
            run.aer.metrics.decided_fraction() > 0.95,
            "seed {seed}: too many undecided"
        );
    }
}

#[test]
fn ba_resists_combined_ae_faults_and_aer_campaign() {
    let n = 96;
    let zero = GString::zeroes(fba::core::AerConfig::recommended(n).string_len);
    let run = Scenario::new(n)
        .phase(Phase::Composed)
        .faults(n / 10)
        .ae_adversary(AdversarySpec::Silent { t: None })
        .adversary(AdversarySpec::BadString)
        .bad_string(zero)
        .run(11)
        .expect("valid scenario")
        .into_composed();
    let zero = GString::zeroes(run.ae.gstring.len_bits());
    for (id, v) in &run.aer.outputs {
        assert_ne!(v, &zero, "node {id} fell for the campaign");
    }
    assert!(run.report.knowing_fraction_after_ae > 0.75);
}

#[test]
fn ba_runs_with_async_aer_phase_and_cornering() {
    let n = 96;
    let run = Scenario::new(n)
        .phase(Phase::Composed)
        .network(NetworkSpec::Async { max_delay: 1 })
        .adversary(AdversarySpec::Corner { label_scan: 128 })
        .run(13)
        .expect("valid scenario")
        .into_composed();
    for v in run.aer.outputs.values() {
        assert_eq!(
            v, &run.ae.gstring,
            "cornering must only delay, never corrupt"
        );
    }
    assert!(run.report.decided_nodes as f64 >= 0.9 * run.report.correct_nodes as f64);
}

#[test]
fn ae_phase_alone_meets_its_contract_under_faults() {
    for n in [64, 128, 256] {
        let run = Scenario::new(n)
            .phase(Phase::Ae)
            .faults(n / 8)
            .adversary(AdversarySpec::Silent { t: None })
            .run(18)
            .expect("valid scenario")
            .into_ae();
        let out = &run.outcome;
        assert!(
            out.knowing_fraction > 0.75,
            "n={n}: contract violated ({:.2})",
            out.knowing_fraction
        );
        assert_eq!(out.gstring.len_bits(), run.config.string_len);
        // The precondition conversion round-trips.
        let pre = out.to_precondition(n, run.config.string_len);
        assert!(pre.satisfies_assumption(&out.run.corrupt, 1.0 / 12.0));
    }
}

#[test]
fn ba_gstring_varies_across_runs() {
    // The agreed value carries the committee's randomness: different
    // seeds must give different strings (probability of collision is
    // 2^-len).
    let composed = Scenario::new(64).phase(Phase::Composed);
    let r1 = composed.run(100).expect("valid scenario").into_composed();
    let r2 = composed.run(101).expect("valid scenario").into_composed();
    assert_ne!(r1.report.agreed, r2.report.agreed);
}
