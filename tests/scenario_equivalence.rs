//! The migration pin: every experiment/example path through the
//! [`Scenario`] builder must be **bit-identical** to the pre-redesign
//! hand-wired construction (`AerConfig` → `Precondition` → `AerHarness`
//! → `EngineConfig` → concrete adversary), at n ∈ {64, 256}.
//!
//! Each case builds the run twice — once through the builder, once
//! through the raw layers exactly as the experiments used to — and
//! compares outputs, corrupt sets, decision times and total bit/message
//! counts. Any divergence means the builder silently changed what an
//! experiment measures.

use fba::ae::{Precondition, UnknowingAssignment};
use fba::baselines::{BenOrNode, BenOrParams, KingNode, KingParams, KlstNode, KlstParams};
use fba::core::adversary::{
    AttackContext, BadString, Corner, Equivocate, PullFlood, PushFlood, RandomStringFlood,
};
use fba::core::{run_ba, AerConfig, AerHarness, AerMsg, BaConfig};
use fba::samplers::GString;
use fba::scenario::{Baseline, Phase, PreconditionSpec, Scenario};
use fba::sim::{
    run, AdversarySpec, EngineConfig, NetworkSpec, NoAdversary, RunOutcome, SilentAdversary,
};
use rand::Rng;

const SIZES: [usize; 2] = [64, 256];

/// The hand-wired construction all migrated AER call sites used.
fn hand_wired(
    n: usize,
    seed: u64,
    knowing: f64,
    mode: UnknowingAssignment,
    strict: bool,
    async_delay: Option<u64>,
    adversary: &AdversarySpec,
) -> (RunOutcome<GString, AerMsg>, Precondition) {
    let mut cfg = AerConfig::recommended(n);
    if strict {
        cfg = cfg.strict();
    }
    let pre = Precondition::synthetic(n, cfg.string_len, knowing, mode, seed);
    let h = AerHarness::from_precondition(cfg, &pre);
    let engine = match async_delay {
        None => h.engine_sync(),
        Some(d) => h.engine_async(d),
    };
    let ctx = || AttackContext::new(&h, pre.gstring);
    let bad = || {
        pre.assignments
            .iter()
            .find(|s| **s != pre.gstring)
            .copied()
            .unwrap_or_else(|| {
                GString::random(
                    pre.gstring.len_bits(),
                    &mut fba::sim::rng::derive_rng(seed, &[0xbad]),
                )
            })
    };
    let out = match adversary {
        AdversarySpec::None => h.run(&engine, seed, &mut NoAdversary),
        AdversarySpec::Silent { t } => {
            h.run(&engine, seed, &mut SilentAdversary::new(t.unwrap_or(cfg.t)))
        }
        AdversarySpec::RandomFlood { rate, steps } => h.run(
            &engine,
            seed,
            &mut RandomStringFlood::new(ctx(), *rate, *steps),
        ),
        AdversarySpec::PushFlood => h.run(&engine, seed, &mut PushFlood::new(ctx(), bad())),
        AdversarySpec::Equivocate { strings } => {
            h.run(&engine, seed, &mut Equivocate::new(ctx(), *strings))
        }
        AdversarySpec::PullFlood { rate, steps } => {
            h.run(&engine, seed, &mut PullFlood::new(ctx(), *rate, *steps))
        }
        AdversarySpec::BadString => h.run(&engine, seed, &mut BadString::new(ctx(), bad())),
        AdversarySpec::Corner { label_scan } => {
            h.run(&engine, seed, &mut Corner::new(ctx(), *label_scan))
        }
        AdversarySpec::Sched(_) => {
            unreachable!("schedules are pinned against the bare strategy, not hand-wired")
        }
    };
    (out, pre)
}

fn assert_identical(
    label: &str,
    scenario: &RunOutcome<GString, AerMsg>,
    hand: &RunOutcome<GString, AerMsg>,
) {
    assert_eq!(scenario.corrupt, hand.corrupt, "{label}: corrupt set");
    assert_eq!(scenario.outputs, hand.outputs, "{label}: outputs");
    assert_eq!(
        scenario.all_decided_at, hand.all_decided_at,
        "{label}: decision step"
    );
    assert_eq!(scenario.quiescent, hand.quiescent, "{label}: quiescence");
    assert_eq!(
        scenario.metrics.total_bits_sent(),
        hand.metrics.total_bits_sent(),
        "{label}: bits"
    );
    assert_eq!(
        scenario.metrics.total_msgs_sent(),
        hand.metrics.total_msgs_sent(),
        "{label}: messages"
    );
    assert_eq!(scenario.metrics.steps, hand.metrics.steps, "{label}: steps");
}

#[test]
fn every_adversary_spec_is_bit_identical_sync() {
    let specs = [
        AdversarySpec::None,
        AdversarySpec::Silent { t: None },
        AdversarySpec::RandomFlood { rate: 16, steps: 4 },
        AdversarySpec::PushFlood,
        AdversarySpec::Equivocate { strings: 8 },
        AdversarySpec::PullFlood { rate: 16, steps: 4 },
        AdversarySpec::BadString,
    ];
    for n in SIZES {
        for spec in &specs {
            let seed = 3;
            let scenario = Scenario::new(n)
                .phase(Phase::aer_with(0.8, UnknowingAssignment::SharedAdversarial))
                .adversary(spec.clone())
                .run(seed)
                .expect("valid scenario")
                .into_aer();
            let (hand, pre) = hand_wired(
                n,
                seed,
                0.8,
                UnknowingAssignment::SharedAdversarial,
                false,
                None,
                spec,
            );
            assert_identical(&format!("n={n} {spec}"), &scenario.run, &hand);
            assert_eq!(scenario.precondition.gstring, pre.gstring);
        }
    }
}

#[test]
fn single_window_schedules_are_bit_identical_to_the_bare_spec() {
    // The tentpole's safety pin: `sched:[0..]X` must be *bit-identical*
    // to the bare `X` — same corrupt set, outputs, decision steps, bit
    // and message counts. This is what makes composed schedules safe to
    // build on: a schedule is the bare strategy plus window dispatch,
    // never a subtly different adversary.
    use fba::sim::{ScheduleSpec, Window};
    let specs = [
        AdversarySpec::Silent { t: None },
        AdversarySpec::RandomFlood { rate: 16, steps: 4 },
        AdversarySpec::PushFlood,
        AdversarySpec::Equivocate { strings: 8 },
        AdversarySpec::BadString,
    ];
    for n in SIZES {
        for spec in &specs {
            let seed = 3;
            let wrap = |spec: &AdversarySpec| {
                AdversarySpec::Sched(
                    ScheduleSpec::new(vec![(Window::open(0), spec.clone())])
                        .expect("single-window schedule"),
                )
            };
            let scheduled = Scenario::new(n)
                .phase(Phase::aer_with(0.8, UnknowingAssignment::SharedAdversarial))
                .adversary(wrap(spec))
                .run(seed)
                .expect("valid scenario")
                .into_aer();
            let (hand, _) = hand_wired(
                n,
                seed,
                0.8,
                UnknowingAssignment::SharedAdversarial,
                false,
                None,
                spec,
            );
            assert_identical(&format!("n={n} sched:[0..]{spec}"), &scheduled.run, &hand);
        }

        // The async rushing shape too: a single corner window under the
        // strict asynchronous engine (the fig1a/l6 regime).
        let corner = AdversarySpec::Corner { label_scan: 256 };
        let scheduled = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .strict()
            .network(NetworkSpec::Async { max_delay: 1 })
            .adversary(AdversarySpec::Sched(
                ScheduleSpec::new(vec![(Window::open(0), corner.clone())]).expect("valid"),
            ))
            .run(5)
            .expect("valid scenario")
            .into_aer();
        let (hand, _) = hand_wired(
            n,
            5,
            0.8,
            UnknowingAssignment::RandomPerNode,
            true,
            Some(1),
            &corner,
        );
        assert_identical(
            &format!("n={n} sched:[0..]corner async"),
            &scheduled.run,
            &hand,
        );
        assert!(
            scheduled.corner.is_some(),
            "n={n}: corner report surfaces through the single-window schedule"
        );
    }
}

#[test]
fn corner_and_silent_are_bit_identical_async() {
    for n in SIZES {
        let seed = 5;
        // The fig1a/l6 shape: strict mode, async engine, cornering.
        let corner_spec = AdversarySpec::Corner { label_scan: 256 };
        let scenario = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .strict()
            .network(NetworkSpec::Async { max_delay: 1 })
            .adversary(corner_spec.clone())
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        let (hand, _) = hand_wired(
            n,
            seed,
            0.8,
            UnknowingAssignment::RandomPerNode,
            true,
            Some(1),
            &corner_spec,
        );
        assert_identical(&format!("n={n} corner async"), &scenario.run, &hand);

        // The aer_integration shape: async delay 2, silent faults.
        let silent = AdversarySpec::Silent { t: Some(n / 8) };
        let scenario = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .network(NetworkSpec::Async { max_delay: 2 })
            .adversary(silent.clone())
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        let (hand, _) = hand_wired(
            n,
            seed,
            0.8,
            UnknowingAssignment::RandomPerNode,
            false,
            Some(2),
            &silent,
        );
        assert_identical(&format!("n={n} silent async"), &scenario.run, &hand);
    }
}

#[test]
fn composed_scenario_is_bit_identical_to_run_ba() {
    for n in SIZES {
        let seed = 7;
        let t = n / 8;
        let scenario = Scenario::new(n)
            .phase(Phase::Composed)
            .faults(t)
            .ae_adversary(AdversarySpec::Silent { t: None })
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("valid scenario")
            .into_composed();

        let cfg = BaConfig::recommended(n);
        let mut ae_adv = SilentAdversary::new(t);
        let (report, ae, aer_run) = run_ba(
            &cfg,
            seed,
            &mut ae_adv,
            |_, _| SilentAdversary::new(t),
            None,
        );
        assert_eq!(scenario.ae.gstring, ae.gstring, "n={n}: AE gstring");
        assert_eq!(
            scenario.ae.knowing_fraction, ae.knowing_fraction,
            "n={n}: AE knowledge"
        );
        assert_identical(
            &format!("n={n} composed AER phase"),
            &scenario.aer,
            &aer_run,
        );
        assert_eq!(scenario.report.ae_rounds, report.ae_rounds);
        assert_eq!(scenario.report.aer_rounds, report.aer_rounds);
        assert_eq!(scenario.report.agreed, report.agreed);
    }
}

#[test]
fn async_composed_scenario_is_bit_identical_to_run_ba() {
    // The ba_integration shape: fault-free AE, cornering AER phase on
    // the harness-default asynchronous engine — covers the async
    // composed path the sync test above does not.
    for n in SIZES {
        let seed = 13;
        let scenario = Scenario::new(n)
            .phase(Phase::Composed)
            .network(NetworkSpec::Async { max_delay: 1 })
            .adversary(AdversarySpec::Corner { label_scan: 128 })
            .run(seed)
            .expect("valid scenario")
            .into_composed();

        let cfg = BaConfig::recommended(n);
        let aer_engine = {
            // The pre-redesign wiring built the async engine off a
            // throwaway harness; its value depends only on the config.
            let h = AerHarness::new(cfg.aer, vec![GString::zeroes(cfg.aer.string_len); n]);
            h.engine_async(1)
        };
        let (report, _, aer_run) = run_ba(
            &cfg,
            seed,
            &mut NoAdversary,
            |harness, gstring| {
                let ctx = AttackContext::new(harness, *gstring);
                Corner::new(ctx, 128)
            },
            Some(aer_engine),
        );
        assert_identical(
            &format!("n={n} async composed AER phase"),
            &scenario.aer,
            &aer_run,
        );
        assert_eq!(scenario.report.aer_rounds, report.aer_rounds);
        assert_eq!(scenario.report.agreed, report.agreed);
    }
}

#[test]
fn diffusion_baselines_are_bit_identical() {
    for n in SIZES {
        let seed = 9;
        let t = (n as f64 * 0.15) as usize;
        let pre_spec = PreconditionSpec::knowing(0.8);

        // KLST (the fig1a shape).
        let scenario = Scenario::new(n)
            .phase(Phase::Baseline(Baseline::Klst {
                precondition: pre_spec,
            }))
            .faults(t)
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("valid scenario")
            .into_baseline();
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            seed,
        );
        let params = KlstParams::recommended(n);
        let engine = EngineConfig {
            max_steps: params.schedule_len() + 8,
            ..EngineConfig::sync(n)
        };
        let mut adv = SilentAdversary::new(t);
        let hand = run::<KlstNode, _, _>(&engine, seed, &mut adv, |id| {
            KlstNode::new(params, pre.assignments[id.index()])
        });
        let fba::scenario::BaselineOutcome::Klst(srun) = &scenario.outcome else {
            panic!("klst scenario produced a different baseline");
        };
        assert_eq!(srun.outputs, hand.outputs, "n={n} klst outputs");
        assert_eq!(
            srun.metrics.total_bits_sent(),
            hand.metrics.total_bits_sent(),
            "n={n} klst bits"
        );
        assert_eq!(srun.all_decided_at, hand.all_decided_at, "n={n} klst time");
    }
}

#[test]
fn binary_baselines_are_bit_identical() {
    for n in SIZES {
        let seed = 11;

        // Ben-Or, the fig1b shape (0.9-biased inputs, silent params.t).
        let params = BenOrParams::recommended(n);
        let scenario = Scenario::new(n)
            .phase(Phase::Baseline(Baseline::BenOr { bias: 0.9 }))
            .faults(params.t)
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("valid scenario")
            .into_baseline();
        let engine = EngineConfig {
            max_steps: 400,
            ..EngineConfig::sync(n)
        };
        let mut rng = fba::sim::rng::derive_rng(seed, &[0xb0]);
        let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.9)).collect();
        let mut adv = SilentAdversary::new(params.t);
        let hand = run::<BenOrNode, _, _>(&engine, seed, &mut adv, |id| {
            BenOrNode::new(params, n, inputs[id.index()])
        });
        let fba::scenario::BaselineOutcome::BenOr(srun) = &scenario.outcome else {
            panic!("benor scenario produced a different baseline");
        };
        assert_eq!(
            scenario.inputs.as_deref(),
            Some(&inputs[..]),
            "n={n} inputs"
        );
        assert_eq!(srun.outputs, hand.outputs, "n={n} benor outputs");
        assert_eq!(
            srun.metrics.total_msgs_sent(),
            hand.metrics.total_msgs_sent(),
            "n={n} benor messages"
        );

        // Phase-King (only at the small size — Θ(n) rounds of Θ(n²)
        // messages; the fig1b sweep caps King sizes the same way).
        if n > 64 {
            continue;
        }
        let kparams = KingParams::recommended(n);
        let scenario = Scenario::new(n)
            .phase(Phase::Baseline(Baseline::PhaseKing))
            .faults(kparams.t / 2)
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("valid scenario")
            .into_baseline();
        let kengine = EngineConfig {
            max_steps: kparams.schedule_len() + 8,
            ..EngineConfig::sync(n)
        };
        let mut rng = fba::sim::rng::derive_rng(seed, &[0xb1]);
        let kinputs: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut adv = SilentAdversary::new(kparams.t / 2);
        let hand = run::<KingNode, _, _>(&kengine, seed, &mut adv, |id| {
            KingNode::new(kparams, n, kinputs[id.index()])
        });
        let fba::scenario::BaselineOutcome::King(srun) = &scenario.outcome else {
            panic!("king scenario produced a different baseline");
        };
        assert_eq!(srun.outputs, hand.outputs, "n={n} king outputs");
        assert_eq!(srun.all_decided_at, hand.all_decided_at, "n={n} king time");
    }
}

#[test]
fn ae_phase_is_bit_identical_to_run_ae() {
    for n in SIZES {
        let seed = 13;
        let scenario = Scenario::new(n)
            .phase(Phase::Ae)
            .run(seed)
            .expect("valid scenario")
            .into_ae();
        let hand = fba::ae::run_ae(&fba::ae::AeConfig::recommended(n), seed, &mut NoAdversary);
        assert_eq!(scenario.outcome.gstring, hand.gstring, "n={n}");
        assert_eq!(scenario.outcome.knowing, hand.knowing, "n={n}");
        assert_eq!(
            scenario.outcome.run.metrics.total_bits_sent(),
            hand.run.metrics.total_bits_sent(),
            "n={n}"
        );
    }
}

/// Per-node accounting comparison for the batching pins: totals hiding a
/// redistribution between nodes would pass [`assert_identical`], so the
/// batched arm is additionally held to node-by-node equality.
fn assert_per_node_identical(
    label: &str,
    n: usize,
    batched: &RunOutcome<GString, AerMsg>,
    unbatched: &RunOutcome<GString, AerMsg>,
) {
    for i in 0..n {
        let id = fba::sim::NodeId::from_index(i);
        assert_eq!(
            batched.metrics.msgs_sent_by(id),
            unbatched.metrics.msgs_sent_by(id),
            "{label}: msgs sent by {id}"
        );
        assert_eq!(
            batched.metrics.bits_sent_by(id),
            unbatched.metrics.bits_sent_by(id),
            "{label}: bits sent by {id}"
        );
        assert_eq!(
            batched.metrics.msgs_recv_by(id),
            unbatched.metrics.msgs_recv_by(id),
            "{label}: msgs received by {id}"
        );
        assert_eq!(
            batched.metrics.bits_recv_by(id),
            unbatched.metrics.bits_recv_by(id),
            "{label}: bits received by {id}"
        );
    }
}

#[test]
fn batched_delivery_is_bit_identical_across_the_matrix() {
    // The tentpole's safety pin: batched delivery is wire framing only.
    // Every adversary spec — windowed schedules and the cornering
    // delay-power attack included — over both timing models must produce
    // byte-for-byte the same outcome with batching on and off, down to
    // per-node message and bit accounting. Debug builds run the small
    // sizes; release (CI) adds the n = 1024 arm.
    use fba::sim::{ScheduleSpec, Window};
    let sched = AdversarySpec::Sched(
        ScheduleSpec::new(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::Equivocate { strings: 4 }),
        ])
        .expect("valid schedule"),
    );
    let specs = [
        AdversarySpec::None,
        AdversarySpec::Silent { t: None },
        AdversarySpec::RandomFlood { rate: 16, steps: 4 },
        AdversarySpec::PushFlood,
        AdversarySpec::Equivocate { strings: 8 },
        AdversarySpec::PullFlood { rate: 16, steps: 4 },
        AdversarySpec::BadString,
        AdversarySpec::Corner { label_scan: 256 },
        sched,
    ];
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    for &n in sizes {
        for spec in &specs {
            for network in [NetworkSpec::Sync, NetworkSpec::Async { max_delay: 2 }] {
                let base = Scenario::new(n)
                    .phase(Phase::aer(0.8))
                    .network(network)
                    .adversary(spec.clone());
                let unbatched = base
                    .clone()
                    .batching(false)
                    .run(3)
                    .expect("valid scenario")
                    .into_aer();
                let batched = base
                    .batching(true)
                    .run(3)
                    .expect("valid scenario")
                    .into_aer();
                let label = format!("n={n} {spec} {network}");
                assert_identical(&label, &batched.run, &unbatched.run);
                assert_per_node_identical(&label, n, &batched.run, &unbatched.run);
            }
        }
    }
}

proptest::proptest! {
    // Full protocol runs per case; keep the case count small.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(10))]

    /// Batch boundaries are invisible: any `batch_limit` — forcing
    /// arbitrary splits of each callback's outbox into separate batches —
    /// produces the same outcome as the unbatched run.
    #[test]
    fn random_batch_boundaries_never_change_outcomes(
        n in 24usize..72,
        seed in proptest::prelude::any::<u64>(),
        limit in 1usize..64,
        silent in proptest::prelude::any::<bool>(),
    ) {
        let mut base = Scenario::new(n).phase(Phase::aer(0.8));
        if silent {
            base = base.adversary(AdversarySpec::Silent { t: None });
        }
        let unbatched = base
            .clone()
            .batching(false)
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        let limited = base
            .batching(true)
            .batch_limit(limit)
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        let label = format!("n={n} limit={limit} silent={silent}");
        assert_identical(&label, &limited.run, &unbatched.run);
        assert_per_node_identical(&label, n, &limited.run, &unbatched.run);
    }
}

#[test]
fn service_single_instance_is_bit_identical_to_run() {
    // The service-mode anchor pin: a 1-instance service run IS the plain
    // run — same outputs, corrupt set, decision step, *per-node* metrics
    // (Metrics implements full structural equality) and transcript —
    // across the adversary matrix, both timing models, and both batching
    // lanes. Everything the service layer threads through (the reusable
    // engine session, the shared AER arena, the per-instance reset) must
    // be invisible at instance 0, or chaining is built on sand.
    use fba::sim::{ScheduleSpec, Window};
    let sched = AdversarySpec::Sched(
        ScheduleSpec::new(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::Equivocate { strings: 4 }),
        ])
        .expect("valid schedule"),
    );
    let specs = [
        AdversarySpec::None,
        AdversarySpec::Silent { t: None },
        AdversarySpec::PushFlood,
        AdversarySpec::Equivocate { strings: 8 },
        AdversarySpec::BadString,
        AdversarySpec::Corner { label_scan: 256 },
        sched,
    ];
    for spec in &specs {
        for network in [NetworkSpec::Sync, NetworkSpec::Async { max_delay: 2 }] {
            for batching in [false, true] {
                let base = Scenario::new(64)
                    .phase(Phase::aer(0.8))
                    .network(network)
                    .adversary(spec.clone())
                    .batching(batching)
                    .record_transcript(true);
                let plain = base.clone().run(3).expect("valid scenario").into_aer();
                let service = base.service(1, 1).run_service(3).expect("valid service");
                assert_eq!(service.instances.len(), 1);
                let inst = &service.instances[0].run;
                let label = format!("{spec} {network} batching={batching}");
                assert_identical(&label, &inst.run, &plain.run);
                assert_eq!(
                    inst.run.metrics, plain.run.metrics,
                    "{label}: per-node metrics"
                );
                assert_eq!(
                    inst.run.transcript, plain.run.transcript,
                    "{label}: transcript"
                );
                assert_eq!(
                    inst.precondition.gstring, plain.precondition.gstring,
                    "{label}: precondition"
                );
            }
        }
    }
}

/// One 64-bit digest over everything the execution-backend acceptance pin
/// cares about: steps, decision time, total and **per-node** send/receive
/// accounting, outputs, the full transcript, and the corrupt set. Computed
/// with the crate's keyless [`fba::sim::fxhash::FxHasher`], so the value is
/// stable across runs and platforms of the same pointer width.
fn run_digest(run: &RunOutcome<GString, AerMsg>, n: usize) -> u64 {
    use std::hash::Hasher;
    let mut h = fba::sim::fxhash::FxHasher::default();
    h.write_u64(run.metrics.steps);
    h.write_u64(run.all_decided_at.unwrap_or(u64::MAX));
    h.write_u64(run.metrics.total_bits_sent());
    h.write_u64(run.metrics.total_msgs_sent());
    for i in 0..n {
        let id = fba::sim::NodeId::from_index(i);
        h.write_u64(run.metrics.bits_sent_by(id));
        h.write_u64(run.metrics.msgs_sent_by(id));
        h.write_u64(run.metrics.bits_recv_by(id));
        h.write_u64(run.metrics.msgs_recv_by(id));
    }
    h.write(format!("{:?}", run.outputs).as_bytes());
    h.write(format!("{:?}", run.transcript).as_bytes());
    h.write(format!("{:?}", run.corrupt).as_bytes());
    h.finish()
}

#[test]
fn sim_backend_matches_pre_refactor_golden_digests() {
    // The absolute anchor for the execution-backend refactor: these
    // digests were captured from the engine *before* `run_session` was
    // split into backend-shared helpers (PR 8), over transcript-recording
    // runs. Every other equivalence test compares two code paths that a
    // refactor moves together; this one pins the sim backend to frozen
    // constants, so any drift in delivery order, scheduling, metrics
    // accounting, or transcripts fails loudly. If a digest changes, the
    // sim backend is no longer bit-identical to the pre-refactor engine —
    // do not update these numbers without understanding exactly why.
    use fba::sim::{ScheduleSpec, Window};
    let sched = AdversarySpec::Sched(
        ScheduleSpec::new(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::Equivocate { strings: 4 }),
        ])
        .expect("valid schedule"),
    );
    let cases: [(&str, usize, u64, NetworkSpec, bool, AdversarySpec, u64); 4] = [
        (
            "n=64 sync silent",
            64,
            3,
            NetworkSpec::Sync,
            false,
            AdversarySpec::Silent { t: Some(9) },
            0x4be2bd383ba93509,
        ),
        (
            "n=64 async corner strict",
            64,
            5,
            NetworkSpec::Async { max_delay: 1 },
            true,
            AdversarySpec::Corner { label_scan: 256 },
            0x677fb1416447f5c5,
        ),
        (
            "n=64 sync sched",
            64,
            3,
            NetworkSpec::Sync,
            false,
            sched,
            0xc5ca61aedfe90822,
        ),
        (
            "n=256 sync none",
            256,
            3,
            NetworkSpec::Sync,
            false,
            AdversarySpec::None,
            0xea97707bfdf82f49,
        ),
    ];
    for (label, n, seed, network, strict, spec, expected) in cases {
        let mut scenario = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .network(network)
            .adversary(spec)
            .record_transcript(true);
        if strict {
            scenario = scenario.strict();
        }
        let run = scenario.run(seed).expect("valid scenario").into_aer();
        let got = run_digest(&run.run, n);
        assert_eq!(
            got, expected,
            "{label}: golden digest drifted (got {got:#x})"
        );
    }
}

#[test]
fn observers_and_transcripts_do_not_perturb_outcomes() {
    // Attaching instrumentation must never change what a scenario
    // computes — the determinism contract that makes observers safe to
    // use in experiments.
    for n in SIZES {
        let base = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .adversary(AdversarySpec::Silent { t: None });
        let plain = base.clone().run(17).expect("valid scenario").into_aer();
        let mut sink = fba::sim::TranscriptSink::<AerMsg>::new();
        let observed = base
            .run_observed(17, &mut sink)
            .expect("valid scenario")
            .into_aer();
        assert_identical(&format!("n={n} observed"), &observed.run, &plain.run);
        assert_eq!(
            sink.transcript.len(),
            plain.run.metrics.total_msgs_sent() as usize,
            "n={n}: the sink sees every send"
        );
    }
}

/// The outcome-level invariants the cross-backend contract promises:
/// same corrupt coalition, same decided fraction, same agreed value (and
/// the full output map), and zero wrong decisions. Everything here must
/// hold for *any* execution backend; the stronger transcript/metrics
/// pins are sim-only and live in the golden-digest test above.
fn assert_outcome_invariants(
    label: &str,
    threaded: &fba::scenario::AerRun,
    sim: &fba::scenario::AerRun,
) {
    assert_eq!(
        threaded.run.corrupt, sim.run.corrupt,
        "{label}: corrupt set"
    );
    assert_eq!(
        threaded.run.outputs, sim.run.outputs,
        "{label}: per-node decisions"
    );
    assert_eq!(
        threaded.run.metrics.decided_fraction(),
        sim.run.metrics.decided_fraction(),
        "{label}: decided fraction"
    );
    assert_eq!(
        threaded.run.unanimous(),
        sim.run.unanimous(),
        "{label}: agreed value"
    );
    assert_eq!(
        threaded.wrong_decisions(),
        0,
        "{label}: threaded run decided a wrong value"
    );
    assert_eq!(
        threaded.run.all_decided_at, sim.run.all_decided_at,
        "{label}: decision step"
    );
}

#[test]
fn threaded_backend_matches_sim_across_the_matrix() {
    // The cross-backend agreement suite: every (size × adversary ×
    // timing) cell runs once on each backend and must agree on the
    // outcome-level invariants. The threaded run uses 3 worker shards so
    // the cross-shard merge path is genuinely exercised (shard counts
    // past the host's cores are clamp-allowed at run time — validate()
    // is where oversubscription is rejected). Debug builds run the small
    // sizes; release (CI) adds the n = 1024 arm.
    use fba::exec::BackendSpec;
    use fba::sim::{ScheduleSpec, Window};
    let sched = AdversarySpec::Sched(
        ScheduleSpec::new(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::Equivocate { strings: 4 }),
        ])
        .expect("valid schedule"),
    );
    let specs = [
        AdversarySpec::None,
        AdversarySpec::Silent { t: Some(9) },
        sched,
        AdversarySpec::Corner { label_scan: 256 },
    ];
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[64, 256]
    } else {
        &[64, 256, 1024]
    };
    for &n in sizes {
        for spec in &specs {
            for network in [NetworkSpec::Sync, NetworkSpec::Async { max_delay: 2 }] {
                let base = Scenario::new(n)
                    .phase(Phase::aer(0.8))
                    .network(network)
                    .adversary(spec.clone());
                let sim = base.clone().run(3).expect("valid scenario").into_aer();
                let threaded = base
                    .backend(BackendSpec::Threaded { shards: Some(3) })
                    .run(3)
                    .expect("valid scenario")
                    .into_aer();
                let label = format!("n={n} {spec} {network}");
                assert_outcome_invariants(&label, &threaded, &sim);
            }
        }
    }
}

#[test]
fn threaded_backend_is_deterministic_for_fixed_seed_and_shards() {
    // Same seed + same shard count twice must replay the identical run,
    // down to per-node metrics and the transcript — the determinism the
    // threaded backend *does* promise (its contractual weakening vs sim
    // is across shard counts, never across replays).
    use fba::exec::BackendSpec;
    let base = Scenario::new(96)
        .phase(Phase::aer(0.8))
        .adversary(AdversarySpec::Silent { t: None })
        .record_transcript(true)
        .backend(BackendSpec::Threaded { shards: Some(4) });
    let first = base.clone().run(11).expect("valid scenario").into_aer();
    let second = base.run(11).expect("valid scenario").into_aer();
    assert_identical("threaded replay", &second.run, &first.run);
    assert_per_node_identical("threaded replay", 96, &second.run, &first.run);
    assert_eq!(
        second.run.transcript, first.run.transcript,
        "threaded replay: transcript"
    );
}

#[test]
fn empty_crash_schedules_are_bit_identical_to_the_no_fault_baseline() {
    // The recovery tentpole's safety pin: setting a zero-window crash
    // schedule must leave every run byte-identical to never setting one.
    // The recovery layer may not consume RNG, send messages, or touch
    // the engine unless a crash is actually scheduled — pinned down to
    // per-node metrics and the full delivery transcript.
    use fba::recovery::CrashSpec;
    for n in SIZES {
        for (label, scenario) in [
            ("plain", Scenario::new(n).phase(Phase::aer(0.8))),
            (
                "adversarial-async",
                Scenario::new(n)
                    .phase(Phase::aer(0.8))
                    .adversary(AdversarySpec::Silent { t: None })
                    .network(NetworkSpec::Async { max_delay: 2 }),
            ),
        ] {
            let baseline = scenario
                .clone()
                .record_transcript(true)
                .run(5)
                .expect("valid scenario")
                .into_aer();
            let with_empty = scenario
                .record_transcript(true)
                .faults_spec(CrashSpec::none())
                .run(5)
                .expect("valid scenario")
                .into_aer();
            let label = format!("{label} n={n}");
            assert_identical(&label, &with_empty.run, &baseline.run);
            assert_eq!(
                with_empty.run.metrics, baseline.run.metrics,
                "{label}: per-node metrics"
            );
            assert_eq!(
                with_empty.run.transcript, baseline.run.transcript,
                "{label}: transcript"
            );
        }
    }
}

#[test]
fn crashed_runs_are_pure_functions_of_seed_and_spec() {
    // A crashed run must replay bit-for-bit from (seed, spec) alone —
    // victim sampling, dark-window drops, checkpoint restores and the
    // state-sync re-polls all derive from the run seed and the schedule,
    // never from ambient state.
    for n in SIZES {
        let scenario = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .record_transcript(true)
            .faults_spec("crash:[2..8]4".parse().expect("parses"));
        let first = scenario.run(9).expect("valid scenario").into_aer();
        let second = scenario.run(9).expect("valid scenario").into_aer();
        let label = format!("crash replay n={n}");
        assert_identical(&label, &second.run, &first.run);
        assert_eq!(
            second.run.metrics, first.run.metrics,
            "{label}: per-node metrics"
        );
        assert_eq!(
            second.run.transcript, first.run.transcript,
            "{label}: transcript"
        );
        assert!(
            first.run.metrics.msgs_dropped() > 0,
            "{label}: the dark window actually dropped traffic"
        );
        assert_eq!(
            first.run.metrics.decided_fraction(),
            1.0,
            "{label}: restarted nodes reconverge"
        );
    }
}

proptest::proptest! {
    // Full protocol runs per case; keep the case count small.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Outcome invariance across shard counts: any shard count in 1..=8
    /// agrees with the sim backend on the outcome-level invariants, for
    /// random sizes, seeds, and (optionally) a silent coalition.
    #[test]
    fn shard_count_never_changes_outcomes(
        n in 24usize..72,
        seed in proptest::prelude::any::<u64>(),
        shards in 1usize..=8,
        silent in proptest::prelude::any::<bool>(),
    ) {
        use fba::exec::BackendSpec;
        let mut base = Scenario::new(n).phase(Phase::aer(0.8));
        if silent {
            base = base.adversary(AdversarySpec::Silent { t: None });
        }
        let sim = base.clone().run(seed).expect("valid scenario").into_aer();
        let threaded = base
            .backend(BackendSpec::Threaded { shards: Some(shards) })
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        let label = format!("n={n} shards={shards} silent={silent}");
        assert_outcome_invariants(&label, &threaded, &sim);
    }
}
