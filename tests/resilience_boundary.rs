//! Resilience-boundary tests: behaviour as `t` approaches and crosses the
//! paper's `(1/3 − ε)·n` bound, and as the knowing fraction approaches the
//! `1/2 + ε` floor — all runs constructed through the [`Scenario`]
//! builder (whose `faults` knob budgets the adversary without touching
//! the config's declared tolerance, which is exactly what boundary
//! experiments need).

use fba::ae::UnknowingAssignment;
use fba::core::{AerConfig, ConfigError};
use fba::scenario::{Phase, Scenario};
use fba::sim::AdversarySpec;

#[test]
fn config_enforces_the_resilience_bound() {
    let n = 120;
    let cfg = AerConfig::recommended(n);
    // Just under (1/3 - 1/12)·120 = 30: fine.
    assert!(cfg.with_t(29).validate().is_ok());
    // At the bound: rejected.
    assert!(matches!(
        cfg.with_t(30).validate(),
        Err(ConfigError::TooManyFaults { .. })
    ));
    // Way beyond: rejected.
    assert!(matches!(
        cfg.with_t(40).validate(),
        Err(ConfigError::TooManyFaults { .. })
    ));
}

/// At the maximum fault budget the adversarial coalition (byz + coherent
/// bogus block) reaches ≈ 35% of the population, and with the default
/// `d = ⌈3·ln n⌉` the per-quorum margins are thin enough that the
/// campaign occasionally wins a poll list at n = 120. The paper's w.h.p.
/// guarantee is asymptotic: the constant in `d = Θ(log n)` absorbs the
/// margin. This test demonstrates exactly that — the default d shows a
/// small wrong-decision rate at the boundary, and doubling d eliminates
/// it.
#[test]
fn safety_at_the_fault_boundary_is_restored_by_larger_quorums() {
    let n = 120;
    let default_d = AerConfig::recommended(n).d;
    let mut wrong_default = 0usize;
    let mut wrong_big_d = 0usize;
    let mut decisions = 0usize;
    for seed in [1u64, 2, 3] {
        for big_d in [false, true] {
            let mut scenario = Scenario::new(n)
                .phase(Phase::aer_with(
                    0.85,
                    UnknowingAssignment::SharedAdversarial,
                ))
                .faults(29)
                .adversary(AdversarySpec::BadString);
            if big_d {
                scenario = scenario.quorum_size(2 * default_d);
            }
            let out = scenario.run(seed).expect("valid scenario").into_aer();
            let wrong = out.wrong_decisions();
            if big_d {
                wrong_big_d += wrong;
            } else {
                wrong_default += wrong;
                decisions += out.run.outputs.len();
            }
        }
    }
    assert_eq!(
        wrong_big_d, 0,
        "doubling d must restore w.h.p. safety at the boundary"
    );
    // The default-d rate stays a finite-size curiosity, not a collapse.
    assert!(
        (wrong_default as f64) < 0.05 * decisions.max(1) as f64,
        "wrong rate too high even for finite-size noise: {wrong_default}/{decisions}"
    );
}

#[test]
fn liveness_degrades_gracefully_as_knowledge_approaches_the_floor() {
    // Decided fraction should fall monotonically-ish as the knowing
    // fraction drops toward 1/2, never producing wrong decisions.
    let n = 96;
    let mut last_decided = 1.1;
    let mut decided_at_55 = 0.0;
    let mut decided_at_90 = 0.0;
    for knowing in [0.90, 0.75, 0.65, 0.55] {
        let mut fractions = Vec::new();
        for seed in [5u64, 6, 7] {
            let out = Scenario::new(n)
                .phase(Phase::aer_with(
                    knowing,
                    UnknowingAssignment::SharedAdversarial,
                ))
                .faults(n / 10)
                .adversary(AdversarySpec::Silent { t: None })
                .run(seed)
                .expect("valid scenario")
                .into_aer();
            assert_eq!(
                out.wrong_decisions(),
                0,
                "knowing={knowing}: wrong decision"
            );
            fractions.push(out.run.metrics.decided_fraction());
        }
        let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
        if knowing == 0.90 {
            decided_at_90 = mean;
        }
        if knowing == 0.55 {
            decided_at_55 = mean;
        }
        // Allow small non-monotonicity from seed noise.
        assert!(
            mean <= last_decided + 0.1,
            "decided fraction jumped up at knowing={knowing}"
        );
        last_decided = mean;
    }
    assert!(
        decided_at_90 > 0.99,
        "ample knowledge must give full liveness: {decided_at_90}"
    );
    // Below the paper's floor the guarantee is void; we only require that
    // the protocol did not lie (checked above), not that it progressed.
    let _ = decided_at_55;
}

/// Beyond the model bound the resilience theorem is not just void — it
/// fails demonstrably: at 40% corruption plus a coherent bogus block the
/// adversarial coalition is an outright majority, quorum majorities flip,
/// and the campaign string wins real decisions. The bound is load-bearing
/// — and the scenario `faults` knob can field the out-of-contract
/// coalition precisely because it budgets the adversary, not the config.
#[test]
fn beyond_the_model_bound_agreement_demonstrably_breaks() {
    let n = 100;
    let mut wrong = 0usize;
    for seed in [9u64, 10, 11] {
        let out = Scenario::new(n)
            .phase(Phase::aer_with(
                0.55,
                UnknowingAssignment::SharedAdversarial,
            ))
            .faults(40) // adversary exceeds the designed budget (out of contract)
            .adversary(AdversarySpec::BadString)
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        wrong += out.wrong_decisions();
    }
    assert!(
        wrong > 0,
        "a majority coalition should be able to flip some decisions — \
         if it cannot, the resilience bound test is vacuous"
    );
}
