//! Integration tests pitting the baselines against AER on identical
//! preconditions — the comparisons behind Figure 1.

use fba::ae::{Precondition, UnknowingAssignment};
use fba::baselines::{
    BenOrNode, BenOrParams, FloodNode, KingNode, KingParams, KlstNode, KlstParams,
};
use fba::core::{AerConfig, AerHarness};
use fba::sim::{run, EngineConfig, NoAdversary, SilentAdversary};
use rand::Rng;

#[test]
fn all_three_diffusion_protocols_agree_on_the_same_precondition() {
    let n = 128;
    let seed = 5;
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::RandomPerNode,
        seed,
    );

    // AER.
    let h = AerHarness::from_precondition(cfg, &pre);
    let aer = h.run(&h.engine_sync(), seed, &mut NoAdversary);
    assert_eq!(aer.unanimous(), Some(&pre.gstring));

    // Flooding.
    let flood = run::<FloodNode, _, _>(&EngineConfig::sync(n), seed, &mut NoAdversary, |id| {
        FloodNode::new(pre.assignments[id.index()])
    });
    assert_eq!(flood.unanimous(), Some(&pre.gstring));

    // KLST-style.
    let params = KlstParams::recommended(n);
    let engine = EngineConfig {
        max_steps: params.schedule_len() + 8,
        ..EngineConfig::sync(n)
    };
    let klst = run::<KlstNode, _, _>(&engine, seed, &mut NoAdversary, |id| {
        KlstNode::new(params, pre.assignments[id.index()])
    });
    assert_eq!(klst.unanimous(), Some(&pre.gstring));
}

#[test]
fn figure_1a_time_ordering_holds() {
    // Flooding < AER < KLST in rounds, at any size.
    let n = 128;
    let seed = 6;
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::RandomPerNode,
        seed,
    );

    let flood = run::<FloodNode, _, _>(&EngineConfig::sync(n), seed, &mut NoAdversary, |id| {
        FloodNode::new(pre.assignments[id.index()])
    });
    let h = AerHarness::from_precondition(cfg, &pre);
    let aer = h.run(&h.engine_sync(), seed, &mut NoAdversary);
    let params = KlstParams::recommended(n);
    let engine = EngineConfig {
        max_steps: params.schedule_len() + 8,
        ..EngineConfig::sync(n)
    };
    let klst = run::<KlstNode, _, _>(&engine, seed, &mut NoAdversary, |id| {
        KlstNode::new(params, pre.assignments[id.index()])
    });

    let f = flood.all_decided_at.unwrap();
    let a = aer.metrics.decided_quantile(0.95).unwrap();
    let k = klst.all_decided_at.unwrap();
    assert!(f <= a, "flooding {f} vs AER {a}");
    assert!(a < k, "AER {a} vs KLST {k}");
}

#[test]
fn figure_1a_bits_ordering_holds() {
    // Per-node bits: KLST (√n-ish) < AER (polylog with big constants) <
    // flooding (linear × string) is NOT the asymptotic order — at n=128
    // the paper's asymptotic winner (AER) still pays its d³ constants.
    // What must hold at every n: flooding pays Θ(n·|s|) and KLST pays
    // o(n·|s|).
    let n = 256;
    let seed = 7;
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::RandomPerNode,
        seed,
    );
    let flood = run::<FloodNode, _, _>(&EngineConfig::sync(n), seed, &mut NoAdversary, |id| {
        FloodNode::new(pre.assignments[id.index()])
    });
    let params = KlstParams::recommended(n);
    let engine = EngineConfig {
        max_steps: params.schedule_len() + 8,
        ..EngineConfig::sync(n)
    };
    let klst = run::<KlstNode, _, _>(&engine, seed, &mut NoAdversary, |id| {
        KlstNode::new(params, pre.assignments[id.index()])
    });
    assert!(
        klst.metrics.amortized_bits() < flood.metrics.amortized_bits(),
        "KLST must beat flooding on bits: {} vs {}",
        klst.metrics.amortized_bits(),
        flood.metrics.amortized_bits()
    );
}

#[test]
fn benor_and_phase_king_agree_under_faults() {
    let n = 40;
    let seed = 8;
    let mut rng = fba::sim::rng::derive_rng(seed, &[]);
    let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();

    let params = BenOrParams::recommended(n);
    let engine = EngineConfig {
        max_steps: 400,
        ..EngineConfig::sync(n)
    };
    let benor = run::<BenOrNode, _, _>(&engine, seed, &mut SilentAdversary::new(params.t), |id| {
        BenOrNode::new(params, n, inputs[id.index()])
    });
    assert!(benor.unanimous().is_some(), "Ben-Or disagreement");

    let kparams = KingParams::recommended(n);
    let kengine = EngineConfig {
        max_steps: kparams.schedule_len() + 8,
        ..EngineConfig::sync(n)
    };
    let king = run::<KingNode, _, _>(
        &kengine,
        seed,
        &mut SilentAdversary::new(kparams.t / 2),
        |id| KingNode::new(kparams, n, inputs[id.index()]),
    );
    assert!(king.unanimous().is_some(), "Phase-King disagreement");
    assert!(king.all_decided());
}

#[test]
fn phase_king_time_dwarfs_randomized_protocols() {
    let n = 64;
    let seed = 9;
    let kparams = KingParams::recommended(n);
    let kengine = EngineConfig {
        max_steps: kparams.schedule_len() + 8,
        ..EngineConfig::sync(n)
    };
    let king = run::<KingNode, _, _>(&kengine, seed, &mut NoAdversary, |id| {
        KingNode::new(kparams, n, id.index() % 3 == 0)
    });
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::RandomPerNode,
        seed,
    );
    let h = AerHarness::from_precondition(cfg, &pre);
    let aer = h.run(&h.engine_sync(), seed, &mut NoAdversary);
    let king_time = king.all_decided_at.unwrap();
    let aer_time = aer.metrics.decided_quantile(0.95).unwrap();
    assert!(
        king_time > 4 * aer_time,
        "deterministic {king_time} vs randomized {aer_time}"
    );
}
