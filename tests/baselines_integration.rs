//! Integration tests pitting the baselines against AER on identical
//! preconditions — the comparisons behind Figure 1 — with every run
//! constructed through the [`Scenario`] builder.

use fba::baselines::{BenOrParams, KingParams};
use fba::scenario::{Baseline, Phase, PreconditionSpec, Scenario};
use fba::sim::AdversarySpec;
use rand::Rng;

fn baseline(n: usize, which: Baseline) -> Scenario {
    Scenario::new(n).phase(Phase::Baseline(which))
}

fn diffusion_pre() -> PreconditionSpec {
    PreconditionSpec::knowing(0.8)
}

#[test]
fn all_three_diffusion_protocols_agree_on_the_same_precondition() {
    let n = 128;
    let seed = 5;

    // AER.
    let aer = Scenario::new(n)
        .phase(Phase::aer(0.8))
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    assert_eq!(aer.run.unanimous(), Some(aer.gstring()));

    // Flooding — same seed, hence the same synthesised precondition.
    let flood = baseline(
        n,
        Baseline::Flood {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();
    let flood_pre = flood.precondition.as_ref().expect("diffusion pre");
    assert_eq!(flood_pre.gstring, *aer.gstring(), "same seed, same state");
    assert_eq!(flood.outcome.unanimous_gstring(), Some(&flood_pre.gstring));

    // KLST-style.
    let klst = baseline(
        n,
        Baseline::Klst {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();
    let klst_pre = klst.precondition.as_ref().expect("diffusion pre");
    assert_eq!(klst.outcome.unanimous_gstring(), Some(&klst_pre.gstring));
}

#[test]
fn figure_1a_time_ordering_holds() {
    // Flooding < AER < KLST in rounds, at any size.
    let n = 128;
    let seed = 6;

    let flood = baseline(
        n,
        Baseline::Flood {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();
    let aer = Scenario::new(n)
        .phase(Phase::aer(0.8))
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    let klst = baseline(
        n,
        Baseline::Klst {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();

    let f = flood.outcome.all_decided_at().unwrap();
    let a = aer.run.metrics.decided_quantile(0.95).unwrap();
    let k = klst.outcome.all_decided_at().unwrap();
    assert!(f <= a, "flooding {f} vs AER {a}");
    assert!(a < k, "AER {a} vs KLST {k}");
}

#[test]
fn figure_1a_bits_ordering_holds() {
    // Per-node bits: KLST (√n-ish) < AER (polylog with big constants) <
    // flooding (linear × string) is NOT the asymptotic order — at n=128
    // the paper's asymptotic winner (AER) still pays its d³ constants.
    // What must hold at every n: flooding pays Θ(n·|s|) and KLST pays
    // o(n·|s|).
    let n = 256;
    let seed = 7;
    let flood = baseline(
        n,
        Baseline::Flood {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();
    let klst = baseline(
        n,
        Baseline::Klst {
            precondition: diffusion_pre(),
        },
    )
    .run(seed)
    .expect("valid scenario")
    .into_baseline();
    assert!(
        klst.outcome.metrics().amortized_bits() < flood.outcome.metrics().amortized_bits(),
        "KLST must beat flooding on bits: {} vs {}",
        klst.outcome.metrics().amortized_bits(),
        flood.outcome.metrics().amortized_bits()
    );
}

#[test]
fn benor_and_phase_king_agree_under_faults() {
    let n = 40;
    let seed = 8;
    let mut rng = fba::sim::rng::derive_rng(seed, &[]);
    let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.8)).collect();

    let benor = baseline(n, Baseline::BenOr { bias: 0.8 })
        .inputs(inputs.clone())
        .faults(BenOrParams::recommended(n).t)
        .adversary(AdversarySpec::Silent { t: None })
        .run(seed)
        .expect("valid scenario")
        .into_baseline();
    assert!(
        benor.outcome.unanimous_bit().is_some(),
        "Ben-Or disagreement"
    );

    let king = baseline(n, Baseline::PhaseKing)
        .inputs(inputs)
        .faults(KingParams::recommended(n).t / 2)
        .adversary(AdversarySpec::Silent { t: None })
        .run(seed)
        .expect("valid scenario")
        .into_baseline();
    assert!(
        king.outcome.unanimous_bit().is_some(),
        "Phase-King disagreement"
    );
    assert!(king.outcome.all_decided());
}

#[test]
fn phase_king_time_dwarfs_randomized_protocols() {
    let n = 64;
    let seed = 9;
    let king = baseline(n, Baseline::PhaseKing)
        .inputs((0..n).map(|i| i % 3 == 0).collect())
        .run(seed)
        .expect("valid scenario")
        .into_baseline();
    let aer = Scenario::new(n)
        .phase(Phase::aer(0.8))
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    let king_time = king.outcome.all_decided_at().unwrap();
    let aer_time = aer.run.metrics.decided_quantile(0.95).unwrap();
    assert!(
        king_time > 4 * aer_time,
        "deterministic {king_time} vs randomized {aer_time}"
    );
}
