//! Property-based tests (proptest) over the core data structures and the
//! protocol invariants: sampler determinism and structure, string
//! round-trips, push-phase acceptance invariants, wire-size accounting,
//! spec-grammar round-trips, and AER's agreement safety over randomized
//! configurations.

use std::collections::BTreeSet;

use fba::ae::{Precondition, UnknowingAssignment};
use fba::core::push::PushPhase;
use fba::samplers::{
    default_quorum_size, GString, Label, PollSampler, QuorumScheme, Sampler, StringKey,
};
use fba::scenario::{Phase, Scenario};
use fba::sim::rng::derive_rng;
use fba::sim::{AdversarySpec, NetworkSpec, NodeId, ScheduleSpec, Window, WireSize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampler_sets_are_deterministic_sized_and_sorted(
        seed in any::<u64>(),
        tag in any::<u64>(),
        n in 4usize..300,
        key in any::<u64>(),
    ) {
        let d = (n / 3).max(1);
        let s = Sampler::new(seed, tag, n, d);
        let a = s.set_for(key);
        let b = s.set_for(key);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), d);
        let set: BTreeSet<_> = a.iter().copied().collect();
        prop_assert_eq!(set.len(), d, "distinct members");
        let mut sorted = a.clone();
        sorted.sort();
        prop_assert_eq!(sorted, a.clone());
        prop_assert!(a.iter().all(|id| id.index() < n));
    }

    #[test]
    fn sampler_contains_matches_enumeration(
        seed in any::<u64>(),
        n in 4usize..128,
        key in any::<u64>(),
        probe in 0usize..128,
    ) {
        prop_assume!(probe < n);
        let d = (n / 4).max(1);
        let s = Sampler::new(seed, 0, n, d);
        let members = s.set_for(key);
        let id = NodeId::from_index(probe);
        prop_assert_eq!(s.contains(key, id), members.contains(&id));
    }

    #[test]
    fn gstring_roundtrips_and_hashes_consistently(
        bits in proptest::collection::vec(any::<bool>(), 1..128),
    ) {
        let s = GString::from_bits(&bits);
        prop_assert_eq!(s.len_bits(), bits.len());
        let back: Vec<bool> = s.bits().collect();
        prop_assert_eq!(&back, &bits);
        prop_assert_eq!(s.key(), GString::from_bits(&back).key());
        prop_assert_eq!(s.wire_bits(), bits.len() as u64);
        prop_assert_eq!(s.hamming(&s), 0);
    }

    #[test]
    fn distinct_gstrings_have_distinct_keys(
        a in proptest::collection::vec(any::<bool>(), 32),
        b in proptest::collection::vec(any::<bool>(), 32),
    ) {
        let ga = GString::from_bits(&a);
        let gb = GString::from_bits(&b);
        if a != b {
            prop_assert_ne!(ga.key(), gb.key(), "64-bit hash collision on 32-bit inputs");
        } else {
            prop_assert_eq!(ga.key(), gb.key());
        }
    }

    #[test]
    fn push_acceptance_requires_exactly_a_quorum_majority(
        seed in any::<u64>(),
        n in 16usize..128,
        string_tag in any::<u64>(),
    ) {
        let d = default_quorum_size(n, 2.0);
        let scheme = QuorumScheme::new(seed, n, d);
        let x = NodeId::from_index(seed as usize % n);
        let mut rng = derive_rng(string_tag, &[]);
        let own = GString::random(32, &mut rng);
        let s = GString::random(32, &mut rng);
        prop_assume!(own != s);
        let mut phase = PushPhase::new(x, own, scheme);
        let quorum = scheme.push.quorum(s.key(), x);
        let majority = scheme.push.majority();
        for (i, &y) in quorum.iter().enumerate() {
            let newly = phase.on_push(y, s);
            if i + 1 < majority {
                prop_assert!(newly.is_none(), "accepted below majority at {}", i + 1);
                prop_assert!(!phase.contains(&s));
            } else if i + 1 == majority {
                prop_assert_eq!(newly, Some(s));
                prop_assert!(phase.contains(&s));
            } else {
                prop_assert!(newly.is_none(), "double acceptance");
            }
        }
    }

    #[test]
    fn poll_lists_are_within_domain_and_deterministic(
        seed in any::<u64>(),
        n in 8usize..200,
        x in 0usize..200,
        label in any::<u64>(),
    ) {
        prop_assume!(x < n);
        let d = default_quorum_size(n, 2.0);
        let j = PollSampler::new(seed, n, d, PollSampler::default_cardinality(n));
        let r = Label(label % j.label_cardinality());
        let list = j.poll_list(NodeId::from_index(x), r);
        prop_assert_eq!(list.len(), d);
        prop_assert!(list.iter().all(|w| w.index() < n));
        prop_assert_eq!(list.clone(), j.poll_list(NodeId::from_index(x), r));
        for w in &list {
            prop_assert!(j.contains(NodeId::from_index(x), r, *w));
        }
    }

    #[test]
    fn precondition_knowledge_is_exact(
        n in 16usize..200,
        frac_percent in 0u8..=100,
        seed in any::<u64>(),
    ) {
        let frac = f64::from(frac_percent) / 100.0;
        let pre = Precondition::synthetic(n, 32, frac, UnknowingAssignment::RandomPerNode, seed);
        let expected = ((n as f64) * frac).round() as usize;
        prop_assert_eq!(pre.knowing.len(), expected.min(n));
        for id in &pre.knowing {
            prop_assert_eq!(&pre.assignments[id.index()], &pre.gstring);
        }
        for (i, s) in pre.assignments.iter().enumerate() {
            let id = NodeId::from_index(i);
            if !pre.knows(id) {
                // Random 32-bit strings collide with gstring with
                // probability 2^-32; treat a collision as failure.
                prop_assert_ne!(s, &pre.gstring);
            }
        }
    }
}

proptest! {
    // Full protocol runs are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline safety property: across randomized sizes, seeds,
    /// knowledge fractions and silent corruption, every correct node that
    /// decides, decides gstring.
    #[test]
    fn aer_agreement_and_validity_hold_over_random_configs(
        n in 24usize..96,
        seed in any::<u64>(),
        knowing_percent in 70u8..=95,
        t_tenths in 0u8..=15,
    ) {
        let knowing = f64::from(knowing_percent) / 100.0;
        let t = (n * usize::from(t_tenths)) / 100;
        let mut scenario = Scenario::new(n)
            .phase(Phase::aer_with(knowing, UnknowingAssignment::SharedAdversarial));
        if t > 0 {
            scenario = scenario.faults(t).adversary(AdversarySpec::Silent { t: None });
        }
        let out = scenario.run(seed).expect("valid scenario").into_aer();
        prop_assert_eq!(
            out.wrong_decisions(), 0,
            "a node decided a non-gstring value (n={}, t={})", n, t
        );
    }

    #[test]
    fn wire_size_accounting_matches_engine_totals(
        n in 8usize..64,
        seed in any::<u64>(),
    ) {
        // Sum of per-node sent bits must equal sum of received bits after
        // quiescence (every sent message is delivered exactly once).
        let out = Scenario::new(n.max(8))
            .phase(Phase::aer(0.8))
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        prop_assume!(out.run.quiescent);
        let sent: u64 = out.run.metrics.total_bits_sent();
        let received: u64 = (0..out.config.n)
            .map(|i| out.run.metrics.bits_recv_by(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(sent, received);
    }
}

/// Strategy generating every single-strategy [`AdversarySpec`] shape
/// with randomized parameters (everything but `sched`).
fn base_adversary_spec_strategy() -> impl Strategy<Value = AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::None),
        proptest::option::of(0usize..10_000).prop_map(|t| AdversarySpec::Silent { t }),
        (1usize..10_000, 1u64..10_000)
            .prop_map(|(rate, steps)| AdversarySpec::RandomFlood { rate, steps }),
        Just(AdversarySpec::PushFlood),
        (1usize..10_000).prop_map(|strings| AdversarySpec::Equivocate { strings }),
        (1u64..10_000, 1u64..10_000)
            .prop_map(|(rate, steps)| AdversarySpec::PullFlood { rate, steps }),
        Just(AdversarySpec::BadString),
        (1u64..100_000).prop_map(|label_scan| AdversarySpec::Corner { label_scan }),
    ]
}

/// Strategy generating valid composed fault schedules: 1–3 windows laid
/// out left to right with random gaps and lengths, randomly open-ended.
fn schedule_strategy() -> impl Strategy<Value = AdversarySpec> {
    (
        proptest::collection::vec(
            (0u64..4, 1u64..40, base_adversary_spec_strategy()),
            1usize..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(parts, open_last)| {
            let count = parts.len();
            let mut windows = Vec::new();
            let mut cursor = 0u64;
            for (i, (gap, len, spec)) in parts.into_iter().enumerate() {
                let start = cursor + gap;
                let end = start + len;
                let window = if i + 1 == count && open_last {
                    Window::open(start)
                } else {
                    Window::bounded(start, end)
                };
                windows.push((window, spec));
                cursor = end;
            }
            AdversarySpec::Sched(ScheduleSpec::new(windows).expect("constructed schedules valid"))
        })
}

/// Strategy generating every [`AdversarySpec`] shape with randomized
/// parameters, composed fault schedules included.
fn adversary_spec_strategy() -> impl Strategy<Value = AdversarySpec> {
    prop_oneof![base_adversary_spec_strategy(), schedule_strategy()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The satellite contract: every adversary spec round-trips through
    /// Display and parse — what makes specs CLI- and sweep-addressable.
    #[test]
    fn adversary_specs_round_trip_parse_display(spec in adversary_spec_strategy()) {
        let shown = spec.to_string();
        let back: AdversarySpec = shown.parse().expect("display output parses");
        prop_assert_eq!(back, spec, "{} did not round-trip", shown);
    }

    /// Same for the network grammar.
    #[test]
    fn network_specs_round_trip_parse_display(delay in proptest::option::of(1u64..10_000)) {
        let spec = match delay {
            None => NetworkSpec::Sync,
            Some(max_delay) => NetworkSpec::Async { max_delay },
        };
        let back: NetworkSpec = spec.to_string().parse().expect("display output parses");
        prop_assert_eq!(back, spec);
    }

    /// Malformed-input fuzzing: syntactic noise applied to any valid
    /// spec string must be *rejected*, never silently normalised — the
    /// spec-grammar satellite (`silent:` / `silent:9,` / embedded
    /// whitespace used to slip through `split_spec`).
    #[test]
    fn mutated_spec_strings_are_rejected(
        spec in adversary_spec_strategy(),
        mutation in 0usize..6,
        pos_seed in any::<u64>(),
    ) {
        let shown = spec.to_string();
        let mutated = match mutation {
            0 => format!("{shown}:"),
            1 => format!("{shown},"),
            2 => format!(" {shown}"),
            3 => format!("{shown} "),
            4 => {
                // Embedded whitespace at a random interior position.
                let pos = 1 + (pos_seed as usize) % shown.len().max(1);
                let split = shown
                    .char_indices()
                    .map(|(i, _)| i)
                    .chain([shown.len()])
                    .min_by_key(|i| i.abs_diff(pos))
                    .unwrap();
                format!("{} {}", &shown[..split], &shown[split..])
            }
            _ => format!("{shown};"),
        };
        prop_assume!(mutated != shown);
        prop_assert!(
            mutated.parse::<AdversarySpec>().is_err(),
            "{:?} (mutation {}) must be rejected",
            mutated,
            mutation
        );
    }
}

/// The retry-wave regression guard: fault-free decision latency must stay
/// a small constant number of steps at every scale. Before the
/// scale-aware retry schedule, n ≥ 2048 burned ~26 steps in poll-retry
/// waves while n = 1024 decided in 5; this pins the fix. Debug builds run
/// the small half of the ladder (a debug n = 4096 run takes minutes);
/// release runs (`cargo test --release`, CI) cover the full ladder.
#[test]
fn fault_free_step_count_stays_constant_across_scales() {
    const STEP_BUDGET: u64 = 12;
    let sizes: &[usize] = if cfg!(debug_assertions) {
        &[256, 1024]
    } else {
        &[256, 1024, 2048, 4096]
    };
    for &n in sizes {
        let out = Scenario::new(n)
            .phase(Phase::aer(0.8))
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert!(out.run.all_decided(), "n={n}: not everyone decided");
        let last = out.run.all_decided_at.expect("all decided");
        assert!(
            last <= STEP_BUDGET,
            "n={n}: decision took {last} steps (> {STEP_BUDGET}) — retry waves are back"
        );
    }
}

#[test]
fn string_key_is_stable_across_processes() {
    // Pin the content hash so persisted experiment data stays comparable.
    let s = GString::from_bits(&[true, false, true, true]);
    assert_eq!(s.key(), s.key());
    let again = GString::from_bits(&[true, false, true, true]);
    assert_eq!(s.key(), again.key());
    assert_ne!(s.key(), StringKey(0));
}
