//! Cross-crate integration tests for AER: agreement, validity,
//! reproducibility and resilience across system sizes, engines and the
//! full adversary suite.

use fba::ae::{Precondition, UnknowingAssignment};
use fba::core::adversary::{
    AttackContext, BadString, Corner, Equivocate, PushFlood, RandomStringFlood,
};
use fba::core::{AerConfig, AerHarness};
use fba::samplers::GString;
use fba::sim::{NoAdversary, NodeId, SilentAdversary};

fn build(
    n: usize,
    seed: u64,
    knowing: f64,
    mode: UnknowingAssignment,
) -> (AerHarness, Precondition) {
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(n, cfg.string_len, knowing, mode, seed);
    (AerHarness::from_precondition(cfg, &pre), pre)
}

#[test]
fn aer_agrees_across_sizes_fault_free() {
    for n in [32, 64, 128, 256] {
        let (h, pre) = build(n, 1, 0.8, UnknowingAssignment::RandomPerNode);
        let out = h.run(&h.engine_sync(), 1, &mut NoAdversary);
        assert!(out.all_decided(), "n={n}: someone never decided");
        assert_eq!(out.unanimous(), Some(&pre.gstring), "n={n}");
        assert!(out.quiescent, "n={n}: network did not quiesce");
    }
}

#[test]
fn aer_survives_each_adversary_without_wrong_decisions() {
    let n = 96;
    for seed in [3u64, 5, 6] {
        let (h, pre) = build(n, seed, 0.8, UnknowingAssignment::SharedAdversarial);
        let g = pre.gstring;
        let bad = *pre
            .assignments
            .iter()
            .find(|s| **s != g)
            .expect("bogus exists");
        let ctx = AttackContext::new(&h, g);
        let t = h.config().t;

        let outcomes = vec![
            (
                "silent",
                h.run(&h.engine_sync(), seed, &mut SilentAdversary::new(t)),
            ),
            (
                "random-flood",
                h.run(
                    &h.engine_sync(),
                    seed,
                    &mut RandomStringFlood::new(ctx.clone(), 8, 3),
                ),
            ),
            (
                "push-flood",
                h.run(
                    &h.engine_sync(),
                    seed,
                    &mut PushFlood::new(ctx.clone(), bad),
                ),
            ),
            (
                "equivocate",
                h.run(&h.engine_sync(), seed, &mut Equivocate::new(ctx.clone(), 6)),
            ),
            (
                "bad-string",
                h.run(
                    &h.engine_sync(),
                    seed,
                    &mut BadString::new(ctx.clone(), bad),
                ),
            ),
            (
                "corner",
                h.run(&h.engine_async(1), seed, &mut Corner::new(ctx.clone(), 128)),
            ),
        ];
        for (name, out) in outcomes {
            for (id, value) in &out.outputs {
                assert_eq!(
                    value, &g,
                    "seed {seed}, adversary {name}: node {id} decided wrongly"
                );
            }
            assert!(
                out.outputs.len() as f64 >= 0.9 * (n - t) as f64,
                "seed {seed}, adversary {name}: only {}/{} decided",
                out.outputs.len(),
                n - t
            );
        }
    }
}

#[test]
fn scale_aware_schedule_preserves_small_n_outcomes() {
    // The scale-aware retry schedule (horizon-derived poll timeout +
    // eager repair) exists to kill large-n retry waves; at small n it must
    // be outcome-equivalent to the legacy fixed schedule: same decision
    // values at every node, and no slower to full decision.
    for n in [32, 64, 128, 256] {
        let cfg = AerConfig::recommended(n);
        let legacy = AerConfig {
            poll_timeout: 8,
            eager_repair: false,
            ..cfg
        };
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            1,
        );
        let new_h = AerHarness::from_precondition(cfg, &pre);
        let new_out = new_h.run(&new_h.engine_sync(), 1, &mut NoAdversary);
        let legacy_h = AerHarness::from_precondition(legacy, &pre);
        let legacy_out = legacy_h.run(&legacy_h.engine_sync(), 1, &mut NoAdversary);
        assert_eq!(
            new_out.outputs, legacy_out.outputs,
            "n={n}: decision values diverged from the legacy schedule"
        );
        assert!(
            new_out.all_decided_at <= legacy_out.all_decided_at,
            "n={n}: scale-aware schedule slower than legacy ({:?} vs {:?})",
            new_out.all_decided_at,
            legacy_out.all_decided_at
        );
    }
}

#[test]
fn aer_is_deterministic_per_seed_and_varies_across_seeds() {
    let (h, _) = build(64, 9, 0.8, UnknowingAssignment::RandomPerNode);
    let a = h.run(&h.engine_sync(), 42, &mut SilentAdversary::new(8));
    let b = h.run(&h.engine_sync(), 42, &mut SilentAdversary::new(8));
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.metrics.total_bits_sent(), b.metrics.total_bits_sent());
    assert_eq!(a.corrupt, b.corrupt);

    let c = h.run(&h.engine_sync(), 43, &mut SilentAdversary::new(8));
    assert_ne!(
        a.corrupt, c.corrupt,
        "different seeds corrupt different sets"
    );
}

#[test]
fn aer_flood_does_not_inflate_correct_node_traffic() {
    let n = 96;
    let (h, pre) = build(n, 5, 0.8, UnknowingAssignment::RandomPerNode);
    let ctx = AttackContext::new(&h, pre.gstring);

    let baseline = h.run(&h.engine_sync(), 5, &mut NoAdversary);
    let flooded = h.run(&h.engine_sync(), 5, &mut RandomStringFlood::new(ctx, 64, 8));
    // §3.1.1: pushes never trigger responses, so correct-node output
    // traffic under blind flooding stays close to fault-free levels
    // (the corrupt set removal changes totals slightly).
    let base = baseline.metrics.correct_bits_sent() as f64;
    let under_attack = flooded.metrics.correct_bits_sent() as f64;
    assert!(
        under_attack < 1.15 * base,
        "flooding inflated correct traffic: {base} -> {under_attack}"
    );
    assert_eq!(flooded.unanimous(), Some(&pre.gstring));
}

#[test]
fn aer_handles_worst_case_default_value_precondition() {
    // Every unknowing node holds the zero string (the "default value"
    // case from §3.1).
    let (h, pre) = build(96, 6, 0.75, UnknowingAssignment::DefaultValue);
    let out = h.run(&h.engine_sync(), 6, &mut NoAdversary);
    assert_eq!(out.unanimous(), Some(&pre.gstring));
}

#[test]
fn aer_async_engine_reaches_agreement_under_delay() {
    for max_delay in [1, 2, 3] {
        let (h, pre) = build(64, 7, 0.8, UnknowingAssignment::RandomPerNode);
        let out = h.run(&h.engine_async(max_delay), 7, &mut SilentAdversary::new(8));
        assert_eq!(out.unanimous(), Some(&pre.gstring), "max_delay={max_delay}");
        assert!(
            out.metrics.decided_fraction() > 0.95,
            "max_delay={max_delay}: too many undecided"
        );
    }
}

#[test]
fn aer_decision_times_concentrate_in_constant_rounds() {
    let (h, _) = build(128, 8, 0.8, UnknowingAssignment::RandomPerNode);
    let out = h.run(&h.engine_sync(), 8, &mut NoAdversary);
    let p90 = out.metrics.decided_quantile(0.9).expect("90% decided");
    assert!(p90 <= 6, "90th percentile decision step {p90} too late");
}

#[test]
fn aer_candidate_lists_stay_bounded_under_equivocation() {
    let n = 96;
    let (h, pre) = build(n, 9, 0.8, UnknowingAssignment::RandomPerNode);
    let ctx = AttackContext::new(&h, pre.gstring);
    let mut total = 0usize;
    let mut max = 0usize;
    let _ = h.run_inspect(
        &h.engine_sync(),
        9,
        &mut Equivocate::new(ctx, 10),
        |_, node| {
            total += node.candidates().len();
            max = max.max(node.candidates().len());
        },
    );
    assert!(
        total < 4 * n,
        "Σ|Lx| = {total} should stay linear in n = {n}"
    );
    assert!(max < 12, "single candidate list exploded: {max}");
}

#[test]
fn unknowing_witness_converges_through_the_full_pipeline() {
    let (h, pre) = build(64, 11, 0.7, UnknowingAssignment::RandomPerNode);
    let out = h.run(&h.engine_sync(), 11, &mut NoAdversary);
    let witness = (0..64)
        .map(NodeId::from_index)
        .find(|id| !pre.knows(*id))
        .unwrap();
    assert_eq!(out.outputs.get(&witness), Some(&pre.gstring));
    // Witness learns strictly later than step 1 (push must arrive first).
    assert!(out.metrics.decided_at(witness).unwrap() >= 2);
}

#[test]
fn harness_accessors_are_consistent() {
    let (h, pre) = build(32, 12, 0.8, UnknowingAssignment::RandomPerNode);
    assert_eq!(h.assignments().len(), 32);
    assert_eq!(h.config().n, 32);
    assert_eq!(h.scheme().n(), 32);
    assert_eq!(h.poll_sampler().n(), 32);
    for id in &pre.knowing {
        assert_eq!(&h.assignments()[id.index()], &pre.gstring);
    }
    let _unused: GString = pre.gstring;
}
