//! Cross-crate integration tests for AER: agreement, validity,
//! reproducibility and resilience across system sizes, engines and the
//! full adversary suite — all runs constructed through the [`Scenario`]
//! builder.

use fba::ae::UnknowingAssignment;
use fba::core::AerNode;
use fba::scenario::{Phase, PollTimeoutSpec, Scenario};
use fba::sim::{AdversarySpec, FinalInspect, NetworkSpec, NodeId};

fn scenario(n: usize, knowing: f64, mode: UnknowingAssignment) -> Scenario {
    Scenario::new(n).phase(Phase::aer_with(knowing, mode))
}

#[test]
fn aer_agrees_across_sizes_fault_free() {
    for n in [32, 64, 128, 256] {
        let out = scenario(n, 0.8, UnknowingAssignment::RandomPerNode)
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert!(out.run.all_decided(), "n={n}: someone never decided");
        assert_eq!(out.run.unanimous(), Some(out.gstring()), "n={n}");
        assert!(out.run.quiescent, "n={n}: network did not quiesce");
    }
}

#[test]
fn aer_survives_each_adversary_without_wrong_decisions() {
    let n = 96;
    // The attack suite as data: spec + timing model per row.
    let suite: [(AdversarySpec, NetworkSpec); 6] = [
        (AdversarySpec::Silent { t: None }, NetworkSpec::Sync),
        (
            AdversarySpec::RandomFlood { rate: 8, steps: 3 },
            NetworkSpec::Sync,
        ),
        (AdversarySpec::PushFlood, NetworkSpec::Sync),
        (AdversarySpec::Equivocate { strings: 6 }, NetworkSpec::Sync),
        (AdversarySpec::BadString, NetworkSpec::Sync),
        (
            AdversarySpec::Corner { label_scan: 128 },
            NetworkSpec::Async { max_delay: 1 },
        ),
    ];
    for seed in [3u64, 5, 6] {
        for (spec, network) in &suite {
            let out = scenario(n, 0.8, UnknowingAssignment::SharedAdversarial)
                .adversary(spec.clone())
                .network(*network)
                .run(seed)
                .expect("valid scenario")
                .into_aer();
            assert_eq!(
                out.wrong_decisions(),
                0,
                "seed {seed}, adversary {spec}: wrong decision"
            );
            let t = out.config.t;
            assert!(
                out.run.outputs.len() as f64 >= 0.9 * (n - t) as f64,
                "seed {seed}, adversary {spec}: only {}/{} decided",
                out.run.outputs.len(),
                n - t
            );
        }
    }
}

#[test]
fn scale_aware_schedule_preserves_small_n_outcomes() {
    // The scale-aware retry schedule (horizon-derived poll timeout +
    // eager repair) exists to kill large-n retry waves; at small n it must
    // be outcome-equivalent to the legacy fixed schedule: same decision
    // values at every node, and no slower to full decision.
    for n in [32, 64, 128, 256] {
        let new_out = scenario(n, 0.8, UnknowingAssignment::RandomPerNode)
            .run(1)
            .expect("valid scenario")
            .into_aer();
        let legacy_out = scenario(n, 0.8, UnknowingAssignment::RandomPerNode)
            .poll_timeout(PollTimeoutSpec::Fixed(8))
            .eager_repair(false)
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert_eq!(
            new_out.run.outputs, legacy_out.run.outputs,
            "n={n}: decision values diverged from the legacy schedule"
        );
        assert!(
            new_out.run.all_decided_at <= legacy_out.run.all_decided_at,
            "n={n}: scale-aware schedule slower than legacy ({:?} vs {:?})",
            new_out.run.all_decided_at,
            legacy_out.run.all_decided_at
        );
    }
}

#[test]
fn async_scenarios_can_scale_the_poll_timeout_to_the_delay_bound() {
    // Satellite knob: `PollTimeoutSpec::DelayScaled` waits one
    // *asynchronous* delivery horizon per attempt, killing the redundant
    // retry waves the synchronous timeout fires under delay — without
    // changing what anyone decides.
    let n = 64;
    for max_delay in [2u64, 3] {
        let base = scenario(n, 0.8, UnknowingAssignment::RandomPerNode)
            .network(NetworkSpec::Async { max_delay })
            .adversary(AdversarySpec::Silent { t: Some(8) })
            .record_transcript(true);
        let config_timeout = base.clone().run(7).expect("valid scenario").into_aer();
        let scaled = base
            .poll_timeout(PollTimeoutSpec::DelayScaled)
            .run(7)
            .expect("valid scenario")
            .into_aer();
        assert_eq!(
            scaled.config.poll_timeout,
            fba::core::AerConfig::sync_poll_horizon() * max_delay,
            "delay {max_delay}"
        );
        // Same decisions, fewer (or equal) retry waves.
        assert_eq!(scaled.run.outputs, config_timeout.run.outputs);
        let waves_scaled = fba::core::trace::poll_wave_count(&scaled.run.transcript);
        let waves_config = fba::core::trace::poll_wave_count(&config_timeout.run.transcript);
        assert!(
            waves_scaled <= waves_config,
            "delay {max_delay}: scaled timeout fired more waves ({waves_scaled} vs {waves_config})"
        );
    }
}

#[test]
fn aer_is_deterministic_per_seed_and_varies_across_seeds() {
    let silent8 = AdversarySpec::Silent { t: Some(8) };
    let s = scenario(64, 0.8, UnknowingAssignment::RandomPerNode).adversary(silent8);
    let a = s.run(42).expect("valid scenario").into_aer();
    let b = s.run(42).expect("valid scenario").into_aer();
    assert_eq!(a.run.outputs, b.run.outputs);
    assert_eq!(
        a.run.metrics.total_bits_sent(),
        b.run.metrics.total_bits_sent()
    );
    assert_eq!(a.run.corrupt, b.run.corrupt);

    let c = s.run(43).expect("valid scenario").into_aer();
    assert_ne!(
        a.run.corrupt, c.run.corrupt,
        "different seeds corrupt different sets"
    );
}

#[test]
fn aer_flood_does_not_inflate_correct_node_traffic() {
    let n = 96;
    let base = scenario(n, 0.8, UnknowingAssignment::RandomPerNode);
    let baseline = base.clone().run(5).expect("valid scenario").into_aer();
    let flooded = base
        .adversary(AdversarySpec::RandomFlood { rate: 64, steps: 8 })
        .run(5)
        .expect("valid scenario")
        .into_aer();
    // §3.1.1: pushes never trigger responses, so correct-node output
    // traffic under blind flooding stays close to fault-free levels
    // (the corrupt set removal changes totals slightly).
    let base_bits = baseline.run.metrics.correct_bits_sent() as f64;
    let under_attack = flooded.run.metrics.correct_bits_sent() as f64;
    assert!(
        under_attack < 1.15 * base_bits,
        "flooding inflated correct traffic: {base_bits} -> {under_attack}"
    );
    assert_eq!(flooded.run.unanimous(), Some(flooded.gstring()));
}

#[test]
fn aer_handles_worst_case_default_value_precondition() {
    // Every unknowing node holds the zero string (the "default value"
    // case from §3.1).
    let out = scenario(96, 0.75, UnknowingAssignment::DefaultValue)
        .run(6)
        .expect("valid scenario")
        .into_aer();
    assert_eq!(out.run.unanimous(), Some(out.gstring()));
}

#[test]
fn aer_async_engine_reaches_agreement_under_delay() {
    for max_delay in [1, 2, 3] {
        let out = scenario(64, 0.8, UnknowingAssignment::RandomPerNode)
            .network(NetworkSpec::Async { max_delay })
            .adversary(AdversarySpec::Silent { t: Some(8) })
            .run(7)
            .expect("valid scenario")
            .into_aer();
        assert_eq!(
            out.run.unanimous(),
            Some(out.gstring()),
            "max_delay={max_delay}"
        );
        assert!(
            out.run.metrics.decided_fraction() > 0.95,
            "max_delay={max_delay}: too many undecided"
        );
    }
}

#[test]
fn aer_decision_times_concentrate_in_constant_rounds() {
    let out = scenario(128, 0.8, UnknowingAssignment::RandomPerNode)
        .run(8)
        .expect("valid scenario")
        .into_aer();
    let p90 = out.run.metrics.decided_quantile(0.9).expect("90% decided");
    assert!(p90 <= 6, "90th percentile decision step {p90} too late");
}

#[test]
fn aer_candidate_lists_stay_bounded_under_equivocation() {
    let n = 96;
    let mut total = 0usize;
    let mut max = 0usize;
    {
        let mut inspect = FinalInspect(|_: NodeId, node: &AerNode| {
            total += node.candidates().len();
            max = max.max(node.candidates().len());
        });
        let _ = scenario(n, 0.8, UnknowingAssignment::RandomPerNode)
            .adversary(AdversarySpec::Equivocate { strings: 10 })
            .run_observed(9, &mut inspect)
            .expect("valid scenario");
    }
    assert!(
        total < 4 * n,
        "Σ|Lx| = {total} should stay linear in n = {n}"
    );
    assert!(max < 12, "single candidate list exploded: {max}");
}

#[test]
fn unknowing_witness_converges_through_the_full_pipeline() {
    let out = scenario(64, 0.7, UnknowingAssignment::RandomPerNode)
        .run(11)
        .expect("valid scenario")
        .into_aer();
    let witness = (0..64)
        .map(NodeId::from_index)
        .find(|id| !out.precondition.knows(*id))
        .unwrap();
    assert_eq!(out.run.outputs.get(&witness), Some(out.gstring()));
    // Witness learns strictly later than step 1 (push must arrive first).
    assert!(out.run.metrics.decided_at(witness).unwrap() >= 2);
}

#[test]
fn outcome_carries_consistent_derivations() {
    let out = scenario(32, 0.8, UnknowingAssignment::RandomPerNode)
        .run(12)
        .expect("valid scenario")
        .into_aer();
    assert_eq!(out.precondition.assignments.len(), 32);
    assert_eq!(out.config.n, 32);
    assert_eq!(out.config.scheme().n(), 32);
    assert_eq!(out.config.poll_sampler().n(), 32);
    assert_eq!(out.engine.n, 32);
    for id in &out.precondition.knowing {
        assert_eq!(&out.precondition.assignments[id.index()], out.gstring());
    }
}
