//! The cross-instance determinism contract for service mode — the test
//! suite the instance-sequence layer exists to satisfy.
//!
//! A service run chains agreement instances over one engine session and
//! one shared AER arena (interned quorum slots, sampler caches, vote
//! arenas, Fw1 routes). The contract has two halves, and this suite pins
//! both:
//!
//! * **No leak**: instance `k`'s outcome is bit-identical to a fresh
//!   engine run with the same value seed and the same coalition seed —
//!   nothing an earlier instance did is visible in a later outcome. The
//!   hardest case is *repeated* value seeds, where every `(string, node)`
//!   slot collides across instances: a single stale vote bit in the push
//!   arena makes `on_push` see a sender as a duplicate and suppress
//!   candidate acceptance. (Deliberately disabling the per-instance
//!   vote-arena reset in `AerRunState::begin_instance` makes the
//!   `repeated_value_seeds_*` tests below fail — that injection is the
//!   suite's own fire drill.)
//! * **Real reuse**: the persistence is not vacuous — cache hit/miss
//!   counters prove later instances *hit* the caches the first instance
//!   populated, rather than silently rebuilding them.

use fba::scenario::{Phase, Scenario};
use fba::sim::{AdversarySpec, NetworkSpec};

/// Per-instance outcome comparison: a service instance against its
/// fresh-engine comparator, down to per-node metrics.
fn assert_instance_matches(
    label: &str,
    service: &fba::scenario::AerRun,
    fresh: &fba::scenario::AerRun,
) {
    assert_eq!(
        service.run.corrupt, fresh.run.corrupt,
        "{label}: corrupt set"
    );
    assert_eq!(service.run.outputs, fresh.run.outputs, "{label}: outputs");
    assert_eq!(
        service.run.all_decided_at, fresh.run.all_decided_at,
        "{label}: decision step"
    );
    assert_eq!(
        service.run.quiescent, fresh.run.quiescent,
        "{label}: quiescence"
    );
    assert_eq!(
        service.run.metrics, fresh.run.metrics,
        "{label}: per-node metrics"
    );
    assert_eq!(
        service.precondition.gstring, fresh.precondition.gstring,
        "{label}: gstring"
    );
}

#[test]
fn every_instance_matches_a_fresh_engine_run() {
    // Instance k of a chained run == a standalone run with instance k's
    // value seed and the service's coalition seed, across adversaries,
    // timing models and batching lanes. This is the no-leak half of the
    // contract under *distinct* value seeds (the common case).
    let specs = [
        AdversarySpec::None,
        AdversarySpec::Silent { t: None },
        AdversarySpec::Equivocate { strings: 4 },
        AdversarySpec::BadString,
    ];
    for spec in &specs {
        for network in [NetworkSpec::Sync, NetworkSpec::Async { max_delay: 2 }] {
            for batching in [false, true] {
                let scenario = Scenario::new(48)
                    .phase(Phase::aer(0.8))
                    .network(network)
                    .adversary(spec.clone())
                    .batching(batching)
                    .service(3, 4);
                let service_seed = 11;
                let service = scenario.run_service(service_seed).expect("valid service");
                for (k, inst) in service.instances.iter().enumerate() {
                    let fresh = scenario
                        .run_instance(inst.seed, service_seed)
                        .expect("valid instance");
                    assert_instance_matches(
                        &format!("{spec} {network} batching={batching} instance {k}"),
                        &inst.run,
                        &fresh,
                    );
                }
            }
        }
    }
}

#[test]
fn repeated_value_seeds_still_match_fresh_runs() {
    // The leak trap: every instance replays the *same* value seed, so
    // every string interns to the same slots and every quorum resolves
    // to the same positions — maximal overlap between what instance k
    // writes and what instance k+1 reads. Any cross-instance residue in
    // the vote arenas or phase state diverges here first.
    for spec in [AdversarySpec::None, AdversarySpec::Silent { t: None }] {
        let scenario = Scenario::new(48)
            .phase(Phase::aer(0.8))
            .adversary(spec.clone())
            .service(4, 1)
            .service_value_seeds(vec![9, 9, 9, 9]);
        let service_seed = 9;
        let service = scenario.run_service(service_seed).expect("valid service");
        let fresh = scenario
            .run_instance(9, service_seed)
            .expect("valid instance");
        for (k, inst) in service.instances.iter().enumerate() {
            assert_instance_matches(
                &format!("{spec} repeated-seed instance {k}"),
                &inst.run,
                &fresh,
            );
        }
    }
}

#[test]
fn later_instances_hit_the_persistent_caches() {
    // The real-reuse half of the contract, counter-based: with identical
    // value seeds, instances 2..k replay exactly the quorum and poll
    // queries instance 1 made, so a *chained* run must add zero cache
    // misses over a 1-instance run — every later lookup is a hit. If the
    // caches were silently rebuilt per instance (persistence broken),
    // misses would scale with the instance count instead.
    let base = Scenario::new(48).phase(Phase::aer(0.8));
    let single = base
        .clone()
        .service(1, 1)
        .service_value_seeds(vec![7])
        .run_service(7)
        .expect("valid service");
    let chained = base
        .service(3, 1)
        .service_value_seeds(vec![7, 7, 7])
        .run_service(7)
        .expect("valid service");
    for (name, single_stats, chained_stats) in [
        ("push", single.push_cache_stats, chained.push_cache_stats),
        ("pull", single.pull_cache_stats, chained.pull_cache_stats),
        ("poll", single.poll_cache_stats, chained.poll_cache_stats),
    ] {
        assert_eq!(
            chained_stats.1, single_stats.1,
            "{name}: chained instances must not add cache misses"
        );
        assert!(
            chained_stats.0 > single_stats.0,
            "{name}: later instances must hit the persistent cache \
             (1-instance hits {}, 3-instance hits {})",
            single_stats.0,
            chained_stats.0
        );
    }
}

#[test]
fn crash_windows_compose_with_the_service_contract() {
    // Crash–restart composes with the instance-sequence layer: a chained
    // run with a mid-stream dark window in every instance still satisfies
    // both the no-leak half of the contract (each instance matches its
    // fresh-engine replay — the crash plan re-resolves identically from
    // the coalition seed inside `run_instance`) and whole-run
    // reproducibility, while the victims reconverge every time.
    let scenario = Scenario::new(48)
        .phase(Phase::aer(0.8))
        .faults_spec("crash:[2..7]6".parse().expect("parses"))
        .service(3, 4);
    let service_seed = 17;
    let service = scenario.run_service(service_seed).expect("valid service");
    assert_eq!(
        service.min_decided_fraction(),
        1.0,
        "restarted nodes reconverge in every instance"
    );
    assert!(service.all_unanimous());
    for (k, inst) in service.instances.iter().enumerate() {
        assert!(
            inst.run.run.metrics.msgs_dropped() > 0,
            "instance {k} went dark mid-stream"
        );
        assert!(
            inst.run.rejoin().expect("crash plan ran").all_rejoined(),
            "instance {k} rejoined every victim"
        );
        let fresh = scenario
            .run_instance(inst.seed, service_seed)
            .expect("valid instance");
        assert_instance_matches(&format!("crash instance {k}"), &inst.run, &fresh);
    }
    let replay = scenario.run_service(service_seed).expect("valid service");
    for (a, b) in service.instances.iter().zip(&replay.instances) {
        assert_eq!(a.run.run.outputs, b.run.run.outputs);
        assert_eq!(a.run.run.metrics, b.run.run.metrics);
    }
    assert_eq!(service.totals, replay.totals);
}

#[test]
fn service_runs_are_reproducible() {
    // A service run is a pure function of (scenario, seed): replaying
    // the same seed reproduces every instance bit for bit, totals
    // included.
    let scenario = Scenario::new(48)
        .phase(Phase::aer(0.8))
        .adversary(AdversarySpec::Silent { t: None })
        .network(NetworkSpec::Async { max_delay: 2 })
        .service(3, 4);
    let a = scenario.run_service(21).expect("valid service");
    let b = scenario.run_service(21).expect("valid service");
    assert_eq!(a.instances.len(), b.instances.len());
    for (x, y) in a.instances.iter().zip(&b.instances) {
        assert_eq!(x.seed, y.seed);
        assert_eq!(x.arrived_at, y.arrived_at);
        assert_eq!(x.started_at, y.started_at);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.run.run.outputs, y.run.run.outputs);
        assert_eq!(x.run.run.metrics, y.run.run.metrics);
    }
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.total_steps, b.total_steps);
    assert_eq!(a.poll_cache_stats, b.poll_cache_stats);
}

#[test]
fn instance_seeds_follow_the_published_scheme() {
    // Instance 0 runs with the service seed itself (that is what makes
    // the 1-instance equivalence pin possible); later instances use the
    // domain-separated derivation, exposed so standalone replays can
    // target any instance.
    let service = Scenario::new(32)
        .service(3, 1)
        .run_service(42)
        .expect("valid service");
    assert_eq!(service.instances[0].seed, 42);
    for (k, inst) in service.instances.iter().enumerate() {
        assert_eq!(inst.seed, fba::sim::rng::instance_seed(42, k));
    }
}

proptest::proptest! {
    // Every case chains several full protocol runs; keep the count low.
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

    /// Arrival times and batch boundaries are outcome-invariant: jitter
    /// inside the admission window moves `arrived_at`/`started_at` but
    /// never changes what any instance decides or sends, and a random
    /// `batch_limit` produces the same per-instance outcomes as the
    /// unbatched lane. Totals always equal the sum of the per-instance
    /// views.
    #[test]
    fn service_outcomes_ignore_arrival_jitter_and_batch_limits(
        n in 24usize..56,
        seed in proptest::prelude::any::<u64>(),
        instances in 1usize..4,
        interval in 0u64..8,
        limit in 1usize..48,
        jitter in proptest::collection::vec(0u64..16, 4),
        silent in proptest::prelude::any::<bool>(),
    ) {
        let mut base = Scenario::new(n).phase(Phase::aer(0.8));
        if silent {
            base = base.adversary(AdversarySpec::Silent { t: None });
        }
        let reference = base
            .clone()
            .batching(false)
            .service(instances, interval)
            .run_service(seed)
            .expect("valid service");

        // Totals are exactly the sum of the per-instance metrics.
        let msgs: u64 = reference.instances.iter().map(|i| i.run.run.metrics.total_msgs_sent()).sum();
        let bits: u64 = reference.instances.iter().map(|i| i.run.run.metrics.total_bits_sent()).sum();
        let steps: u64 = reference.instances.iter().map(|i| i.run.run.metrics.steps).sum();
        assert_eq!(reference.totals.total_msgs_sent(), msgs);
        assert_eq!(reference.totals.total_bits_sent(), bits);
        assert_eq!(reference.totals.steps(), steps);
        assert_eq!(reference.totals.instances(), instances as u64);

        // Jittered (but non-decreasing) arrivals: outcomes unchanged.
        let mut arrivals = Vec::with_capacity(instances);
        let mut at = 0u64;
        for j in jitter.iter().take(instances) {
            at += j;
            arrivals.push(at);
        }
        let jittered = base
            .clone()
            .batching(false)
            .service(instances, interval)
            .service_arrivals(arrivals)
            .run_service(seed)
            .expect("valid service");
        for (k, (a, b)) in reference.instances.iter().zip(&jittered.instances).enumerate() {
            assert_eq!(a.seed, b.seed, "instance {k} seed");
            assert_eq!(a.run.run.outputs, b.run.run.outputs, "instance {k} outputs");
            assert_eq!(a.run.run.metrics, b.run.run.metrics, "instance {k} metrics");
            assert!(b.started_at >= b.arrived_at, "instance {k} admission");
        }

        // Random batch boundaries: outcomes unchanged.
        let batched = base
            .batching(true)
            .batch_limit(limit)
            .service(instances, interval)
            .run_service(seed)
            .expect("valid service");
        for (k, (a, b)) in reference.instances.iter().zip(&batched.instances).enumerate() {
            assert_eq!(a.run.run.outputs, b.run.run.outputs, "instance {k} batched outputs");
            assert_eq!(a.run.run.metrics, b.run.run.metrics, "instance {k} batched metrics");
        }
    }
}
