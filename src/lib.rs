//! # fast-byzantine-agreement
//!
//! A full reproduction of **“Fast Byzantine Agreement”** (Braud-Santoni,
//! Guerraoui, Huc — PODC 2013): the first Byzantine Agreement protocol
//! with poly-logarithmic communication *and* time.
//!
//! ## Quickstart: describe a run, then run it
//!
//! Every execution mode — AER on a synthetic precondition, the
//! almost-everywhere substrate, the composed BA protocol, the Figure 1
//! baselines, under any adversary and either timing model — is one
//! declarative [`Scenario`]:
//!
//! ```
//! use fba::scenario::{Phase, Scenario};
//! use fba::sim::{AdversarySpec, NetworkSpec};
//!
//! // 64 nodes, 80% of which already know gstring; 9 corrupted nodes run
//! // the coherent bad-string campaign over an asynchronous network.
//! let outcome = Scenario::new(64)
//!     .faults(9)
//!     .adversary(AdversarySpec::BadString)
//!     .network(NetworkSpec::Async { max_delay: 2 })
//!     .phase(Phase::aer(0.8))
//!     .run(42)
//!     .expect("valid scenario")
//!     .into_aer();
//!
//! // Lemma 7: nobody decides the campaign string.
//! assert_eq!(outcome.wrong_decisions(), 0);
//! assert_eq!(outcome.run.unanimous(), Some(outcome.gstring()));
//! ```
//!
//! Adversaries and networks are *data* with a stable string grammar
//! (`silent:9`, `flood`, `corner:512`, `async:3`, …), so the same
//! scenario is expressible from the command line:
//!
//! ```bash
//! paperbench scenario --n 64 --faults 9 --adversary bad-string --network async:2
//! ```
//!
//! ## Mixed adversaries: composed fault schedules
//!
//! A `sched:` spec assigns a different strategy to each step window —
//! the fault-schedule matrix an adaptive-behaviour adversary implies.
//! Each window's strategy keeps its own state for the whole run, and a
//! single-window `sched:[0..]X` is bit-identical to the bare `X`:
//!
//! ```
//! use fba::scenario::{Phase, Scenario};
//! use fba::sim::AdversarySpec;
//!
//! // A push-flood volley, then equivocation, then the cornering attack.
//! let sched: AdversarySpec = "sched:[0..1]flood;[1..3]equivocate:4;[3..]corner:64"
//!     .parse()
//!     .expect("valid schedule");
//! let outcome = Scenario::new(64)
//!     .adversary(sched)
//!     .phase(Phase::aer(0.8))
//!     .run(9)
//!     .expect("valid scenario")
//!     .into_aer();
//! assert_eq!(outcome.wrong_decisions(), 0);
//! assert!(outcome.corner.is_some(), "the corner window still reports");
//! ```
//!
//! Windows are half-open `[start..end)` (only the last may be open-ended),
//! must be ordered and non-overlapping, and cannot nest; malformed
//! schedules are rejected at parse/construction time. The `paperbench
//! gauntlet` battery sweeps a schedule matrix across system sizes.
//!
//! See [`scenario`] for the full builder surface (phases, observers,
//! tuning knobs) and [`sim::AdversarySpec`] for the adversary grammar
//! (including [`sim::ScheduleSpec`] and [`sim::Window`]).
//!
//! ## Batteries: experiments as axes × metrics × reporters
//!
//! One level up, a whole *experiment* is one declarative
//! [`Battery`]: the cell grid (axes product), a declared
//! seed policy (surfaced in the table notes and the JSON records — never
//! a silent `take(3)`), a pure per-cell runner, `Option`-aware
//! aggregation (`n/a`, never a fake `0`), and two reporters — a Markdown
//! table plus one structured JSON record per cell:
//!
//! ```
//! use fba::bench::{product2, Agg, Battery, Scope, SeedPolicy};
//!
//! let report = Battery::new(
//!     "demo",
//!     "demo — score per (n, delay)",
//!     |&(n, delay): &(usize, u64), seed| (n as u64 + delay + seed) as f64,
//! )
//! .axes(&["n", "delay"], |&(n, d)| vec![n.to_string(), d.to_string()])
//! .points(product2(&[64, 128], &[1, 4]))
//! .point_n(|&(n, _)| n)
//! .seeds(SeedPolicy::ThinAt { threshold: 4096, max: 3 })
//! .col("score", Agg::Mean, |&score| Some(score))
//! .report(Scope::Quick);
//! assert_eq!(report.table.rows.len(), 4);
//! assert!(report.cells_json.contains("\"battery\": \"demo\""));
//! ```
//!
//! Every `paperbench` experiment id (and the engine throughput battery)
//! is built on this API, and `paperbench sweep --axis n=256,1024 --axis
//! adversary=silent,flood --metric rounds,bits` runs an arbitrary
//! axes × metrics battery from the command line — axis values parse
//! through the spec grammar above. The `recovery` battery (attack
//! window, then quiet, measuring re-convergence) is pure spec rows on
//! the same API.
//!
//! ## Crate map
//!
//! * [`scenario`] — **the public entry point for executing runs**: the
//!   [`Scenario`] builder and its typed outcomes.
//! * [`sim`] — deterministic message-passing simulator (synchronous
//!   rounds, adversarial asynchrony, full-information rushing/non-rushing
//!   Byzantine adversaries, bit-exact communication accounting) plus the
//!   [`sim::AdversarySpec`]/[`sim::NetworkSpec`] grammar and the
//!   read-only [`sim::Observer`] instrumentation interface.
//! * [`samplers`] — the sampler family of §2.2: push quorums `I`, pull
//!   quorums `H`, poll lists `J`, with empirical Lemma 1 / Lemma 2
//!   verification.
//! * [`ae`] — the almost-everywhere agreement substrate (KSSV06-style
//!   committee tree) plus synthetic precondition injection.
//! * [`core`] — **AER**, the paper's almost-everywhere → everywhere
//!   protocol (push §3.1.1 + pull Algorithms 1–3), the composed **BA**
//!   protocol, and the Byzantine attack suite (flooding, equivocation,
//!   bad-string campaigns, the Lemma 6 cornering attack).
//! * [`recovery`] — the crash–restart fault family: the `crash:[3..7]64`
//!   schedule grammar, the checkpoint/WAL layer nodes persist phase
//!   progress into, and rejoin-cost accounting for restarted nodes.
//! * [`baselines`] — Figure 1 comparison protocols (KLST11-style
//!   diffusion, flooding, Ben-Or, Phase-King).
//! * [`bench`](mod@bench) — the declarative [`Battery`] API
//!   (axes × metrics × reporters), every paper experiment built on it,
//!   the deterministic parallel sweep runner, and the `paperbench` CLI.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use fba_ae as ae;
pub use fba_baselines as baselines;
pub use fba_bench as bench;
pub use fba_core as core;
pub use fba_exec as exec;
pub use fba_recovery as recovery;
pub use fba_samplers as samplers;
pub use fba_scenario as scenario;
pub use fba_sim as sim;

pub use fba_bench::{Agg, Battery, Report, SeedPolicy};
pub use fba_recovery::{CrashSpec, CrashWindow, RejoinReport};
pub use fba_scenario::{Baseline, Phase, PreconditionSpec, Scenario, ScenarioOutcome};
pub use fba_sim::{AdversarySpec, NetworkSpec, ScheduleSpec, Window};
