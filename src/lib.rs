//! # fast-byzantine-agreement
//!
//! A full reproduction of **“Fast Byzantine Agreement”** (Braud-Santoni,
//! Guerraoui, Huc — PODC 2013): the first Byzantine Agreement protocol
//! with poly-logarithmic communication *and* time.
//!
//! The facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic message-passing simulator (synchronous
//!   rounds, adversarial asynchrony, full-information rushing/non-rushing
//!   Byzantine adversaries, bit-exact communication accounting).
//! * [`samplers`] — the sampler family of §2.2: push quorums `I`, pull
//!   quorums `H`, poll lists `J`, with empirical Lemma 1 / Lemma 2
//!   verification.
//! * [`ae`] — the almost-everywhere agreement substrate (KSSV06-style
//!   committee tree) plus synthetic precondition injection.
//! * [`core`] — **AER**, the paper's almost-everywhere → everywhere
//!   protocol (push §3.1.1 + pull Algorithms 1–3), the composed **BA**
//!   protocol, and the Byzantine attack suite (flooding, equivocation,
//!   bad-string campaigns, the Lemma 6 cornering attack).
//! * [`baselines`] — Figure 1 comparison protocols (KLST11-style
//!   diffusion, flooding, Ben-Or, Phase-King).
//!
//! ## Quickstart
//!
//! ```
//! use fba::ae::{Precondition, UnknowingAssignment};
//! use fba::core::{AerConfig, AerHarness};
//! use fba::sim::NoAdversary;
//!
//! // 1. A system of 64 nodes; >3/4 already know the global string
//! //    (normally produced by the almost-everywhere phase).
//! let cfg = AerConfig::recommended(64);
//! let pre = Precondition::synthetic(
//!     64, cfg.string_len, 0.8, UnknowingAssignment::RandomPerNode, 42,
//! );
//!
//! // 2. Run AER: every correct node ends up agreeing on gstring.
//! let harness = AerHarness::from_precondition(cfg, &pre);
//! let outcome = harness.run(&harness.engine_sync(), 42, &mut NoAdversary);
//! assert_eq!(outcome.unanimous(), Some(&pre.gstring));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fba_ae as ae;
pub use fba_baselines as baselines;
pub use fba_core as core;
pub use fba_samplers as samplers;
pub use fba_sim as sim;
