//! Quickstart: describe a fault-free AER run as a [`Scenario`], run it,
//! and print what happened.
//!
//! **Paper claim exercised:** §3.1's almost-everywhere → everywhere
//! contract — from a precondition where 80% of nodes know `gstring`,
//! every node decides `gstring` within a constant number of synchronous
//! steps (the Lemma 9 fault-free shape). See the README's example index.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fba::scenario::{Phase, Scenario};
use fba::sim::NodeId;

fn main() {
    let n = 256;
    let seed = 42;

    // 1. One declarative scenario: n nodes, synchronous network, no
    //    faults, 80% of nodes already share gstring. (Run `ba_end_to_end`
    //    to see the real committee-tree phase produce this state.)
    let outcome = Scenario::new(n)
        .phase(Phase::aer(0.8))
        .run(seed)
        .expect("valid scenario")
        .into_aer();

    // 2. Everything the builder derived rides along with the outcome.
    let cfg = &outcome.config;
    println!("system:        n = {n}");
    println!("quorum size:   d = {}", cfg.d);
    println!("string length: {} bits", cfg.string_len);
    println!("overload cap:  {} answers per string", cfg.overload_cap);
    let pre = &outcome.precondition;
    println!(
        "\nprecondition:  {}/{} nodes know gstring ({} …)",
        pre.knowing.len(),
        n,
        pre.gstring
    );

    // 3. Inspect the run.
    let agreed = outcome.run.unanimous().expect("correct nodes agree");
    assert_eq!(agreed, outcome.gstring(), "everyone converged on gstring");
    println!(
        "\nresult:        all {} nodes decided gstring",
        outcome.run.outputs.len()
    );
    println!(
        "time:          all decided by step {}",
        outcome.run.all_decided_at.expect("all decided")
    );
    println!(
        "communication: {:.0} bits per node ({} messages total)",
        outcome.run.metrics.amortized_bits(),
        outcome.run.metrics.total_msgs_sent()
    );

    // A node that started unknowing still learned the string:
    let witness = (0..n)
        .map(NodeId::from_index)
        .find(|id| !pre.knows(*id))
        .expect("someone started unknowing");
    println!(
        "witness:       node {witness} started with junk, decided at step {}",
        outcome
            .run
            .metrics
            .decided_at(witness)
            .expect("witness decided")
    );
}
