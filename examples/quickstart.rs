//! Quickstart: run AER end to end on a fault-free system and print what
//! happened.
//!
//! **Paper claim exercised:** §3.1's almost-everywhere → everywhere
//! contract — from a precondition where 80% of nodes know `gstring`,
//! every node decides `gstring` within a constant number of synchronous
//! steps (the Lemma 9 fault-free shape). See the README's example index.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fba::ae::{Precondition, UnknowingAssignment};
use fba::core::{AerConfig, AerHarness};
use fba::sim::{NoAdversary, NodeId};

fn main() {
    let n = 256;
    let seed = 42;

    // 1. Configure AER for n nodes (quorum size, string length, overload
    //    cap all derive from n — see AerConfig::recommended).
    let cfg = AerConfig::recommended(n);
    println!("system:        n = {n}");
    println!("quorum size:   d = {}", cfg.d);
    println!("string length: {} bits", cfg.string_len);
    println!("overload cap:  {} answers per string", cfg.overload_cap);

    // 2. The almost-everywhere precondition: 80% of nodes already share
    //    gstring; the rest hold random junk. (Run `ba_end_to_end` to see
    //    the real committee-tree phase produce this state.)
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::RandomPerNode,
        seed,
    );
    println!(
        "\nprecondition:  {}/{} nodes know gstring ({} …)",
        pre.knowing.len(),
        n,
        pre.gstring
    );

    // 3. Run the protocol on the synchronous engine with no faults.
    let harness = AerHarness::from_precondition(cfg, &pre);
    let outcome = harness.run(&harness.engine_sync(), seed, &mut NoAdversary);

    // 4. Inspect the outcome.
    let agreed = outcome.unanimous().expect("correct nodes agree");
    assert_eq!(agreed, &pre.gstring, "everyone converged on gstring");
    println!(
        "\nresult:        all {} nodes decided gstring",
        outcome.outputs.len()
    );
    println!(
        "time:          all decided by step {}",
        outcome.all_decided_at.expect("all decided")
    );
    println!(
        "communication: {:.0} bits per node ({} messages total)",
        outcome.metrics.amortized_bits(),
        outcome.metrics.total_msgs_sent()
    );

    // A node that started unknowing still learned the string:
    let witness = (0..n)
        .map(NodeId::from_index)
        .find(|id| !pre.knows(*id))
        .expect("someone started unknowing");
    println!(
        "witness:       node {witness} started with junk, decided at step {}",
        outcome
            .metrics
            .decided_at(witness)
            .expect("witness decided")
    );
}
