//! Run AER through the whole attack suite and report what each adversary
//! achieved — the paper's robustness story in one table.
//!
//! **Paper claim exercised:** Lemma 7's safety census (no correct node
//! ever decides a non-`gstring` value) under silent, flooding,
//! equivocating, bad-string and cornering adversaries at the full
//! `t < (1/3 − ε)·n` budget. See the README's example index.
//!
//! With the `Scenario` builder the gauntlet is *data*: one spec string
//! per adversary, parsed straight into the run description — the same
//! grammar `paperbench scenario --adversary …` accepts.
//!
//! ```bash
//! cargo run --release --example adversarial_gauntlet
//! ```

use fba::scenario::{AerRun, Phase, Scenario};
use fba::sim::{AdversarySpec, NetworkSpec};

struct Row {
    name: &'static str,
    decided: usize,
    correct: usize,
    wrong: usize,
    steps: String,
    bits_per_node: f64,
}

fn evaluate(name: &'static str, outcome: &AerRun) -> Row {
    Row {
        name,
        decided: outcome.run.outputs.len(),
        correct: outcome.correct_nodes(),
        wrong: outcome.wrong_decisions(),
        steps: outcome
            .run
            .all_decided_at
            .map_or("-".to_string(), |s| s.to_string()),
        bits_per_node: outcome.run.metrics.amortized_bits(),
    }
}

fn main() {
    let n = 128;
    let seed = 11;

    // The gauntlet, as data. Every entry is a parseable adversary spec
    // plus its timing model — exactly what the CLI takes. The last row
    // is a composed fault schedule: three strategies across step
    // windows of one run (`paperbench gauntlet` sweeps a whole matrix
    // of these).
    let gauntlet: [(&'static str, &'static str, &'static str); 8] = [
        ("none (fault-free)", "none", "sync"),
        ("silent t", "silent", "sync"),
        ("random-string flood", "random-flood:16,4", "sync"),
        ("push flood (coherent)", "flood", "sync"),
        ("equivocate ×8", "equivocate:8", "sync"),
        ("bad-string campaign", "bad-string", "sync"),
        ("cornering (async)", "corner:256", "async:1"),
        (
            "flood→equivocate→corner",
            "sched:[0..1]flood;[1..3]equivocate:8;[3..]corner:256",
            "async:1",
        ),
    ];

    let mut rows = Vec::new();
    for (name, adversary, network) in gauntlet {
        let spec: AdversarySpec = adversary.parse().expect("gauntlet spec parses");
        let net: NetworkSpec = network.parse().expect("network spec parses");
        // Worst-case precondition: the unknowing block shares one bogus
        // string, which is also the builder's default campaign string.
        let outcome = Scenario::new(n)
            .phase(Phase::aer_with(
                0.8,
                fba::ae::UnknowingAssignment::SharedAdversarial,
            ))
            .adversary(spec)
            .network(net)
            .run(seed)
            .expect("valid scenario")
            .into_aer();
        rows.push(evaluate(name, &outcome));
    }

    println!(
        "{:<24} {:>9} {:>7} {:>7} {:>10}",
        "adversary", "decided", "wrong", "steps", "bits/node"
    );
    for r in &rows {
        println!(
            "{:<24} {:>4}/{:<4} {:>7} {:>7} {:>10.0}",
            r.name, r.decided, r.correct, r.wrong, r.steps, r.bits_per_node
        );
    }

    let total_wrong: usize = rows.iter().map(|r| r.wrong).sum();
    println!(
        "\nsafety: {total_wrong} wrong decisions across all attacks \
         (Lemma 7 predicts 0 w.h.p.)"
    );
}
