//! Run AER through the whole attack suite and report what each adversary
//! achieved — the paper's robustness story in one table.
//!
//! **Paper claim exercised:** Lemma 7's safety census (no correct node
//! ever decides a non-`gstring` value) under silent, flooding,
//! equivocating, bad-string and cornering adversaries at the full
//! `t < (1/3 − ε)·n` budget. See the README's example index.
//!
//! ```bash
//! cargo run --release --example adversarial_gauntlet
//! ```

use fba::ae::{Precondition, UnknowingAssignment};
use fba::core::adversary::{
    AttackContext, BadString, Corner, Equivocate, PushFlood, RandomStringFlood,
};
use fba::core::{AerConfig, AerHarness, AerMsg};
use fba::samplers::GString;
use fba::sim::{Adversary, EngineConfig, NoAdversary, RunOutcome, SilentAdversary};

struct Row {
    name: &'static str,
    decided: usize,
    correct: usize,
    wrong: usize,
    steps: String,
    bits_per_node: f64,
}

fn evaluate(
    name: &'static str,
    outcome: &RunOutcome<GString, AerMsg>,
    gstring: &GString,
    n: usize,
) -> Row {
    let wrong = outcome.outputs.values().filter(|v| *v != gstring).count();
    Row {
        name,
        decided: outcome.outputs.len(),
        correct: n - outcome.corrupt.len(),
        wrong,
        steps: outcome
            .all_decided_at
            .map_or("-".to_string(), |s| s.to_string()),
        bits_per_node: outcome.metrics.amortized_bits(),
    }
}

fn main() {
    let n = 128;
    let seed = 11;
    let cfg = AerConfig::recommended(n);
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.8,
        UnknowingAssignment::SharedAdversarial,
        seed,
    );
    let harness = AerHarness::from_precondition(cfg, &pre);
    let g = pre.gstring;
    let bad = *pre
        .assignments
        .iter()
        .find(|s| **s != g)
        .expect("bogus string exists");
    let ctx = || AttackContext::new(&harness, g);
    let sync = harness.engine_sync();
    let async_engine = harness.engine_async(1);

    let mut rows = Vec::new();
    let mut run = |name: &'static str, engine: &EngineConfig, adv: &mut dyn Adversary<AerMsg>| {
        let outcome = harness.run(engine, seed, adv);
        rows.push(evaluate(name, &outcome, &g, n));
    };

    run("none (fault-free)", &sync, &mut NoAdversary);
    run("silent t", &sync, &mut SilentAdversary::new(cfg.t));
    run(
        "random-string flood",
        &sync,
        &mut RandomStringFlood::new(ctx(), 16, 4),
    );
    run(
        "push flood (coherent)",
        &sync,
        &mut PushFlood::new(ctx(), bad),
    );
    run("equivocate ×8", &sync, &mut Equivocate::new(ctx(), 8));
    run(
        "bad-string campaign",
        &sync,
        &mut BadString::new(ctx(), bad),
    );
    run(
        "cornering (async)",
        &async_engine,
        &mut Corner::new(ctx(), 256),
    );

    println!(
        "{:<24} {:>9} {:>7} {:>7} {:>10}",
        "adversary", "decided", "wrong", "steps", "bits/node"
    );
    for r in &rows {
        println!(
            "{:<24} {:>4}/{:<4} {:>7} {:>7} {:>10.0}",
            r.name, r.decided, r.correct, r.wrong, r.steps, r.bits_per_node
        );
    }

    let total_wrong: usize = rows.iter().map(|r| r.wrong).sum();
    println!(
        "\nsafety: {total_wrong} wrong decisions across all attacks \
         (Lemma 7 predicts 0 w.h.p.)"
    );
}
