//! Figure 2 reproduction: trace the push and pull phases of AER on a
//! small system, showing (a) a node accepting one candidate and rejecting
//! another, and (b) a pull request travelling Poll/Pull → Fw1 → Fw2 →
//! Answer → decision.
//!
//! **Paper claim exercised:** Figure 2 and Algorithms 1–3 — the push
//! phase's sampler-filtered vote counting (2a) and the two-hop filtered
//! verification pipeline (2b), extracted from the transcript a
//! [`TranscriptSink`] observer collects while the scenario runs. See the
//! README's example index.
//!
//! ```bash
//! cargo run --release --example push_pull_trace
//! ```

use std::collections::BTreeMap;

use fba::ae::UnknowingAssignment;
use fba::core::AerMsg;
use fba::samplers::GString;
use fba::scenario::{Phase, Scenario};
use fba::sim::{NodeId, TranscriptSink};

fn main() {
    let n = 48;
    let seed = 7;
    // A third of the nodes hold a *shared* bogus string s2, so push
    // quorums see competing candidates — the Figure 2a situation. The
    // transcript is captured by a read-only observer riding the run.
    let mut sink = TranscriptSink::<AerMsg>::new();
    let outcome = Scenario::new(n)
        .phase(Phase::aer_with(
            0.66,
            UnknowingAssignment::SharedAdversarial,
        ))
        .run_observed(seed, &mut sink)
        .expect("valid scenario")
        .into_aer();
    let transcript = &sink.transcript;
    let cfg = &outcome.config;
    let pre = &outcome.precondition;

    let g = &pre.gstring;
    let _s2 = pre
        .assignments
        .iter()
        .find(|s| *s != g)
        .expect("a bogus candidate exists");

    // ---- Figure 2a: push phase at one node -------------------------------
    // Pick an unknowing node x and count the pushes it received per string.
    let x = (0..n)
        .map(NodeId::from_index)
        .find(|id| !pre.knows(*id))
        .expect("an unknowing node exists");
    let scheme = cfg.scheme();
    let mut per_string: BTreeMap<&'static str, usize> = BTreeMap::new();
    for env in transcript {
        if env.to != x {
            continue;
        }
        if let AerMsg::Push(s) = &env.msg {
            // Only count pushes from legitimate quorum members, as x does.
            if scheme.push.contains(s.key(), x, env.from) {
                let label = if s == g { "s1 = gstring" } else { "s2 (bogus)" };
                *per_string.entry(label).or_default() += 1;
            }
        }
    }
    println!("== Figure 2a: push phase at node {x} ==");
    println!(
        "   quorum size d = {}, acceptance needs > d/2 = {}",
        cfg.d,
        cfg.majority()
    );
    for (label, count) in &per_string {
        let verdict = if *count >= cfg.majority() {
            "ACCEPTED"
        } else {
            "rejected"
        };
        println!("   {label}: {count} valid pushes -> {verdict}");
    }

    // ---- Figure 2b: one pull request hop by hop ---------------------------
    println!("\n== Figure 2b: pull request from node {x} for gstring ==");
    let interesting = |s: &GString| s == g;
    let mut shown = 0;
    for env in transcript {
        let (tag, s) = match &env.msg {
            AerMsg::Poll(s, _) if env.from == x => ("Poll  ", s),
            AerMsg::Pull(s, _) if env.from == x => ("Pull  ", s),
            AerMsg::Fw1 { origin, s, .. } if *origin == x => ("Fw1   ", s),
            AerMsg::Fw2 { origin, s, .. } if *origin == x => ("Fw2   ", s),
            AerMsg::Answer(s) if env.to == x => ("Answer", s),
            _ => continue,
        };
        if !interesting(s) {
            continue;
        }
        shown += 1;
        if shown <= 30 {
            println!("   step {}: {tag} {} -> {}", env.sent_at, env.from, env.to);
        }
    }
    println!("   … {shown} messages in total served this one verification");
    println!(
        "\nnode {x} decided at step {} on {}",
        outcome.run.metrics.decided_at(x).expect("x decided"),
        if outcome.run.outputs[&x] == *g {
            "gstring"
        } else {
            "a bogus string!"
        },
    );
    assert_eq!(outcome.run.outputs[&x], *g);
}
