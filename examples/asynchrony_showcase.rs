//! Asynchrony showcase: the same AER scenario on the synchronous engine,
//! the adversarially-reordered asynchronous engine, and under the Lemma 6
//! cornering attack — demonstrating the paper's claim that AER "remains
//! correct and efficient under asynchrony", plus the decision-time
//! distribution the overload attack produces.
//!
//! **Paper claim exercised:** the asynchrony theorem (`O(log n /
//! log log n)` time under adversarial delay, unchanged code) and
//! Lemma 6's overload bound under the cornering attack. See the
//! README's example index.
//!
//! The three regimes differ only in the scenario's `network`/`adversary`
//! fields — the timing model is one builder knob, not separate wiring.
//!
//! ```bash
//! cargo run --release --example asynchrony_showcase
//! ```

use std::collections::BTreeMap;

use fba::scenario::{AerRun, Phase, Scenario};
use fba::sim::{AdversarySpec, NetworkSpec, NodeId, Step};

fn histogram(outcome: &AerRun, n: usize) -> BTreeMap<Step, usize> {
    let mut h = BTreeMap::new();
    for i in 0..n {
        if let Some(step) = outcome.run.metrics.decided_at(NodeId::from_index(i)) {
            *h.entry(step).or_insert(0) += 1;
        }
    }
    h
}

fn render(label: &str, outcome: &AerRun, n: usize) {
    println!(
        "\n== {label} ==\n   decided: {}/{} correct nodes, wrong: {}",
        outcome.run.outputs.len(),
        outcome.correct_nodes(),
        outcome.wrong_decisions(),
    );
    let hist = histogram(outcome, n);
    let max = hist.values().copied().max().unwrap_or(1);
    for (step, count) in &hist {
        let bar = "#".repeat((count * 40).div_ceil(max));
        println!("   step {step:>3}: {count:>4} {bar}");
    }
}

fn main() {
    let n = 256;
    let seed = 17;
    let base = || Scenario::new(n).phase(Phase::aer(0.85)).strict();
    let cfg = base().aer_config().expect("valid config");
    let t = cfg.t;
    println!("n = {n}, d = {}, t = {t}, strict mode (no retries)", cfg.d);

    // 1. Synchronous, non-rushing: the Lemma 8/9 regime.
    let sync = base()
        .faults(t)
        .adversary(AdversarySpec::Silent { t: None })
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    render("synchronous, non-rushing (silent t)", &sync, n);

    // 2. Asynchronous engine, benign: same code, reordered deliveries.
    let async_benign = base()
        .network(NetworkSpec::Async { max_delay: 2 })
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    render("asynchronous (delay ≤ 2), no faults", &async_benign, n);

    // 3. Asynchronous + the cornering attack: the Lemma 6 regime.
    let cornered = base()
        .network(NetworkSpec::Async { max_delay: 1 })
        .adversary(AdversarySpec::Corner { label_scan: 512 })
        .run(seed)
        .expect("valid scenario")
        .into_aer();
    render("asynchronous + cornering attack", &cornered, n);
    let report = cornered.corner.as_ref().expect("corner adversary reports");
    println!(
        "   attack plan: {} victims blocked, {} overload targets, planned chain depth {}",
        report.blocked_victims, report.overload_targets, report.planned_depth
    );
    println!(
        "   coverage: {}/{} overload units placed",
        report.covered_units, report.needed_units
    );

    println!(
        "\nSafety held in every regime (0 wrong decisions); strict mode trades the\n\
         retry/repair liveness extensions for fidelity to the paper's single-poll\n\
         algorithm, so a θ-fraction of nodes stays undecided (Lemma 2 Property 1)."
    );
}
