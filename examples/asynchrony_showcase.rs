//! Asynchrony showcase: the same AER code on the synchronous engine, the
//! adversarially-reordered asynchronous engine, and under the Lemma 6
//! cornering attack — demonstrating the paper's claim that AER "remains
//! correct and efficient under asynchrony", plus the decision-time
//! distribution the overload attack produces.
//!
//! **Paper claim exercised:** the asynchrony theorem (`O(log n /
//! log log n)` time under adversarial delay, unchanged code) and
//! Lemma 6's overload bound under the cornering attack. See the
//! README's example index.
//!
//! ```bash
//! cargo run --release --example asynchrony_showcase
//! ```

use std::collections::BTreeMap;

use fba::ae::{Precondition, UnknowingAssignment};
use fba::core::adversary::{AttackContext, Corner};
use fba::core::{AerConfig, AerHarness, AerMsg};
use fba::samplers::GString;
use fba::sim::{NoAdversary, RunOutcome, SilentAdversary, Step};

fn histogram(outcome: &RunOutcome<GString, AerMsg>, n: usize) -> BTreeMap<Step, usize> {
    let mut h = BTreeMap::new();
    for i in 0..n {
        if let Some(step) = outcome.metrics.decided_at(fba::sim::NodeId::from_index(i)) {
            *h.entry(step).or_insert(0) += 1;
        }
    }
    h
}

fn render(label: &str, outcome: &RunOutcome<GString, AerMsg>, n: usize, gstring: &GString) {
    let wrong = outcome.outputs.values().filter(|v| *v != gstring).count();
    println!(
        "\n== {label} ==\n   decided: {}/{} correct nodes, wrong: {wrong}",
        outcome.outputs.len(),
        n - outcome.corrupt.len(),
    );
    let hist = histogram(outcome, n);
    let max = hist.values().copied().max().unwrap_or(1);
    for (step, count) in &hist {
        let bar = "#".repeat((count * 40).div_ceil(max));
        println!("   step {step:>3}: {count:>4} {bar}");
    }
}

fn main() {
    let n = 256;
    let seed = 17;
    let cfg = AerConfig::recommended(n).strict();
    let pre = Precondition::synthetic(
        n,
        cfg.string_len,
        0.85,
        UnknowingAssignment::RandomPerNode,
        seed,
    );
    let harness = AerHarness::from_precondition(cfg, &pre);
    let g = pre.gstring;
    let t = cfg.t;

    println!("n = {n}, d = {}, t = {t}, strict mode (no retries)", cfg.d);

    // 1. Synchronous, non-rushing: the Lemma 8/9 regime.
    let sync = harness.run(&harness.engine_sync(), seed, &mut SilentAdversary::new(t));
    render("synchronous, non-rushing (silent t)", &sync, n, &g);

    // 2. Asynchronous engine, benign: same code, reordered deliveries.
    let async_benign = harness.run(&harness.engine_async(2), seed, &mut NoAdversary);
    render("asynchronous (delay ≤ 2), no faults", &async_benign, n, &g);

    // 3. Asynchronous + the cornering attack: the Lemma 6 regime.
    let ctx = AttackContext::new(&harness, g);
    let mut corner = Corner::new(ctx, 512);
    let cornered = harness.run(&harness.engine_async(1), seed, &mut corner);
    render("asynchronous + cornering attack", &cornered, n, &g);
    let report = corner.report();
    println!(
        "   attack plan: {} victims blocked, {} overload targets, planned chain depth {}",
        report.blocked_victims, report.overload_targets, report.planned_depth
    );
    println!(
        "   coverage: {}/{} overload units placed",
        report.covered_units, report.needed_units
    );

    println!(
        "\nSafety held in every regime (0 wrong decisions); strict mode trades the\n\
         retry/repair liveness extensions for fidelity to the paper's single-poll\n\
         algorithm, so a θ-fraction of nodes stays undecided (Lemma 2 Property 1)."
    );
}
