//! The paper's headline protocol end to end: the committee-tree
//! almost-everywhere phase generates a random string known almost
//! everywhere, then AER spreads it to everyone — Byzantine Agreement with
//! poly-logarithmic time and communication.
//!
//! **Paper claim exercised:** Theorem 1 (the main result) — the
//! composition of the almost-everywhere substrate (§2.1's contract) with
//! AER yields full BA, shown fault-free and under the silent-`t` and
//! bad-string adversaries. See the README's example index.
//!
//! Composition is one scenario: `Phase::Composed` with independent
//! adversary specs for each phase.
//!
//! ```bash
//! cargo run --release --example ba_end_to_end
//! ```

use fba::samplers::GString;
use fba::scenario::{Phase, Scenario};
use fba::sim::AdversarySpec;

fn main() {
    let n = 256;
    let seed = 21;

    // --- fault-free ---------------------------------------------------
    let run = Scenario::new(n)
        .phase(Phase::Composed)
        .run(seed)
        .expect("valid scenario")
        .into_composed();
    let cfg = &run.config;
    println!("== Phase structure for n = {n} ==");
    println!(
        "almost-everywhere: committee size {}, {} tree levels, {} steps",
        cfg.ae.committee_size,
        cfg.ae.root_level(),
        cfg.ae.schedule_len()
    );
    println!(
        "AER: quorum size {}, overload cap {}\n",
        cfg.aer.d, cfg.aer.overload_cap
    );

    let report = &run.report;
    println!("== Fault-free run ==");
    println!(
        "AE phase: {} rounds, {:.0} bits/node, {:.1}% of correct nodes knowing",
        report.ae_rounds,
        report.ae_bits_per_node,
        report.knowing_fraction_after_ae * 100.0
    );
    println!(
        "AER phase: {} rounds, {:.0} bits/node",
        report.aer_rounds.map_or("-".to_string(), |s| s.to_string()),
        report.aer_bits_per_node
    );
    println!(
        "agreement: {} ({} of {} correct nodes)",
        if report.success() {
            "SUCCESS"
        } else {
            "FAILED"
        },
        report.decided_nodes,
        report.correct_nodes
    );
    println!("gstring: {}\n", run.ae.gstring);

    // --- under attack ---------------------------------------------------
    // Silent faults corrupt the AE phase; the AER phase fields the full
    // bad-string campaign for the all-zeroes string.
    let t = cfg.aer.t;
    let zero_len = cfg.aer.string_len;
    let attacked = Scenario::new(n)
        .phase(Phase::Composed)
        .faults(t)
        .ae_adversary(AdversarySpec::Silent { t: None })
        .adversary(AdversarySpec::BadString)
        .bad_string(GString::zeroes(zero_len))
        .run(seed + 1)
        .expect("valid scenario")
        .into_composed();
    println!("== Silent faults in phase 1, bad-string campaign in phase 2 (t = {t}) ==");
    println!(
        "AE phase: {:.1}% of correct nodes knowing after faults",
        attacked.report.knowing_fraction_after_ae * 100.0
    );
    let wrong = attacked
        .aer
        .outputs
        .values()
        .filter(|v| **v != attacked.ae.gstring)
        .count();
    println!(
        "AER phase: {}/{} decided, {wrong} wrong decisions",
        attacked.report.decided_nodes, attacked.report.correct_nodes
    );
    println!(
        "agreement on AE majority string: {}",
        if attacked.report.matches_ae_majority {
            "yes"
        } else {
            "no"
        }
    );
}
