//! The paper's headline protocol end to end: the committee-tree
//! almost-everywhere phase generates a random string known almost
//! everywhere, then AER spreads it to everyone — Byzantine Agreement with
//! poly-logarithmic time and communication.
//!
//! **Paper claim exercised:** Theorem 1 (the main result) — the
//! composition of the almost-everywhere substrate (§2.1's contract) with
//! AER yields full BA, shown fault-free and under the silent-`t` and
//! bad-string adversaries. See the README's example index.
//!
//! ```bash
//! cargo run --release --example ba_end_to_end
//! ```

use fba::core::adversary::{AttackContext, BadString};
use fba::core::ba::{run_ba, BaConfig};
use fba::samplers::GString;
use fba::sim::{NoAdversary, SilentAdversary};

fn main() {
    let n = 256;
    let seed = 21;
    let cfg = BaConfig::recommended(n);

    println!("== Phase structure for n = {n} ==");
    println!(
        "almost-everywhere: committee size {}, {} tree levels, {} steps",
        cfg.ae.committee_size,
        cfg.ae.root_level(),
        cfg.ae.schedule_len()
    );
    println!(
        "AER: quorum size {}, overload cap {}\n",
        cfg.aer.d, cfg.aer.overload_cap
    );

    // --- fault-free ---------------------------------------------------
    let (report, ae, _) = run_ba(&cfg, seed, &mut NoAdversary, |_, _| NoAdversary, None);
    println!("== Fault-free run ==");
    println!(
        "AE phase: {} rounds, {:.0} bits/node, {:.1}% of correct nodes knowing",
        report.ae_rounds,
        report.ae_bits_per_node,
        report.knowing_fraction_after_ae * 100.0
    );
    println!(
        "AER phase: {} rounds, {:.0} bits/node",
        report.aer_rounds.map_or("-".to_string(), |s| s.to_string()),
        report.aer_bits_per_node
    );
    println!(
        "agreement: {} ({} of {} correct nodes)",
        if report.success() {
            "SUCCESS"
        } else {
            "FAILED"
        },
        report.decided_nodes,
        report.correct_nodes
    );
    println!("gstring: {}\n", ae.gstring);

    // --- under attack ---------------------------------------------------
    let t = cfg.aer.t;
    let mut silent = SilentAdversary::new(t);
    let (report, ae, run) = run_ba(
        &cfg,
        seed + 1,
        &mut silent,
        |harness, gstring| {
            let ctx = AttackContext::new(harness, *gstring);
            BadString::new(ctx, GString::zeroes(gstring.len_bits()))
        },
        None,
    );
    println!("== Silent faults in phase 1, bad-string campaign in phase 2 (t = {t}) ==");
    println!(
        "AE phase: {:.1}% of correct nodes knowing after faults",
        report.knowing_fraction_after_ae * 100.0
    );
    let wrong = run.outputs.values().filter(|v| **v != ae.gstring).count();
    println!(
        "AER phase: {}/{} decided, {wrong} wrong decisions",
        report.decided_nodes, report.correct_nodes
    );
    println!(
        "agreement on AE majority string: {}",
        if report.matches_ae_majority {
            "yes"
        } else {
            "no"
        }
    );
}
