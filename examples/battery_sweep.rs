//! Declare a whole experiment as data with the Battery API and print
//! both of its reporters: the Markdown table and the per-cell JSON
//! records.
//!
//! **Paper claim exercised:** Lemma 7's safety census (zero wrong
//! decisions) across a small adversary × size battery — the
//! axes × metrics shape every `paperbench` experiment id (and
//! `paperbench sweep --axis … --metric …`) is built on. Cells where no
//! node reached the decision quantile render `n/a`, never a fake `0` —
//! visible live in the small-n silent rows. See the README's example
//! index.
//!
//! The battery owns the cell product, the deterministic parallel
//! fan-out, the declared seed policy (surfaced in the notes, never a
//! silent `take(n)`), and `Option`-aware aggregation (`n/a`, never a
//! fake `0`).
//!
//! ```bash
//! cargo run --release --example battery_sweep
//! ```

use fba::bench::{product2, Agg, Battery, Scope, SeedPolicy};
use fba::scenario::{AerRun, Phase, Scenario};
use fba::sim::AdversarySpec;

fn main() {
    let adversaries = ["none", "silent", "flood"];
    let report = Battery::new(
        "example-battery",
        "battery_sweep — decision census across adversary × n",
        |&(adversary, n): &(&str, usize), seed| {
            let spec: AdversarySpec = adversary.parse().expect("spec parses");
            Scenario::new(n)
                .adversary(spec)
                .phase(Phase::aer(0.8))
                .run(seed)
                .expect("valid scenario")
                .into_aer()
        },
    )
    .axes(&["adversary", "n"], |&(adversary, n)| {
        vec![adversary.to_string(), n.to_string()]
    })
    .points(product2(&adversaries, &[48, 96]))
    .point_n(|&(_, n)| n)
    .seeds(SeedPolicy::Capped { max: 2 })
    .col("decided %", Agg::Mean, |o: &AerRun| {
        Some(o.run.metrics.decided_fraction() * 100.0)
    })
    .col("rounds p50", Agg::Mean, |o: &AerRun| {
        o.run.metrics.decided_quantile(0.5).map(|s| s as f64)
    })
    .col("wrong", Agg::Sum, |o: &AerRun| {
        Some(o.wrong_decisions() as f64)
    })
    .note("Lemma 7: zero wrong decisions in every cell; n/a marks all-undecided cells.")
    .report(Scope::Quick);

    println!("{}", report.table.render());
    println!("--- per-cell JSON records ---\n{}", report.cells_json);

    for row in &report.table.rows {
        assert_eq!(row[4], "0", "safety must hold in every cell: {row:?}");
    }
}
