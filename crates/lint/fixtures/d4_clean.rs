//! D4 clean fixture: streams derive through `fba_sim::rng` helpers.

use fba_sim::rng::{derive_rng, mix, TAG_NODE};
use rand_chacha::ChaCha12Rng;

/// Derives a node's stream from the master seed the sanctioned way.
pub fn node_stream(master: u64, node: u64) -> ChaCha12Rng {
    let _ = mix(master, &[TAG_NODE, node]);
    derive_rng(master, &[TAG_NODE, node])
}
