//! D2 violating fixture: ad-hoc parallelism outside the executors.

use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;

/// Fans work out on unsanctioned threads.
pub fn fan_out(jobs: Vec<u64>) -> u64 {
    let total = Mutex::new(0u64);
    let _progress = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for j in jobs {
            s.spawn(|| *total.lock().unwrap() += j);
        }
    });
    let out = *total.lock().unwrap();
    out
}
