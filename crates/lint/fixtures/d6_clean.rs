//! D6 clean fixture: configuration arrives as data, not ambient state
//! (`env::args` is argument parsing, not an environment read).

/// Carries the knob in the config struct.
pub struct Config {
    /// The knob.
    pub knob: bool,
}

/// Reads the knob from the config and the CLI argument list.
pub fn knob(config: &Config) -> bool {
    config.knob || std::env::args().count() > 1
}
