//! D3 violating fixture: wall-clock reads in deterministic code.

use std::time::Instant;

/// Times a phase on the host clock — a run-to-run variable.
pub fn timed_phase() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
