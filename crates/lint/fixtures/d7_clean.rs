//! D7 clean fixture: output flows through a reporter value (and a local
//! `print` function is not the `print!` macro).

use std::fmt::Write;

/// Renders progress into the report string.
pub fn report(out: &mut String, done: usize, total: usize) {
    let _ = write!(out, "{done}/{total}");
}

/// A near-miss: an ordinary function named `print`.
pub fn print(out: &mut String) {
    out.push('.');
}
