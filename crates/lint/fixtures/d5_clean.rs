//! D5 clean fixture: allowlisted file, audited site.

/// Tunes the allocator, with the audit trail D5 requires.
pub fn tune() -> bool {
    extern "C" {
        fn mallopt(param: i32, value: i32) -> i32;
    }
    // SAFETY: `mallopt` only adjusts allocator tunables and is called
    // with documented glibc parameter constants.
    unsafe { mallopt(-3, 1 << 30) == 1 }
}
