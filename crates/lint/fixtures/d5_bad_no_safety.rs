//! D5 violating fixture: allowlisted file, but the audit comment is gone.

/// Tunes the allocator without saying why it is sound.
pub fn tune() -> bool {
    extern "C" {
        fn mallopt(param: i32, value: i32) -> i32;
    }
    unsafe { mallopt(-3, 1 << 30) == 1 }
}
