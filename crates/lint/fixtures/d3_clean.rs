//! D3 clean fixture: time is simulated steps, never the host clock.

/// Advances a step counter; `instant` in prose (and this comment's
/// Instant) must not trip the token matcher.
pub fn advance(step: u64) -> u64 {
    step + 1
}
