//! D7 violating fixture: stdout side effects in library code.

/// Reports progress by printing — invisible to observers, untestable.
pub fn report(done: usize, total: usize) {
    println!("{done}/{total}");
    if done == total {
        eprintln!("finished");
    }
}
