//! D6 violating fixture: ambient environment steering deterministic code.

/// Reads a knob from the environment at an unsanctioned site.
pub fn knob() -> bool {
    std::env::var("FBA_SECRET_KNOB").is_ok()
}
