//! D1 clean fixture: keyless-hash and ordered containers only, plus the
//! `hash_map::Entry` near-miss (names the module, not the container).

use std::collections::hash_map::Entry;
use std::collections::BTreeMap;

use fba_sim::fxhash::FxHashMap;

/// Counts votes per sender deterministically.
pub fn tally(votes: &[(u32, u32)]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    let mut fast: FxHashMap<u32, u32> = FxHashMap::default();
    for &(sender, _) in votes {
        *counts.entry(sender).or_insert(0) += 1;
        *fast.entry(sender).or_insert(0) += 1;
    }
    counts
}
