//! D1 violating fixture: a randomized-hasher container in protocol code.

use std::collections::HashMap;

/// Counts votes per sender — on a map whose iteration order varies per run.
pub fn tally(votes: &[(u32, u32)]) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for &(sender, _) in votes {
        *counts.entry(sender).or_insert(0) += 1;
    }
    counts
}
