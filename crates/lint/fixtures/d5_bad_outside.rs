//! D5 violating fixture: `unsafe` outside the audited allowlist — a
//! SAFETY comment does not make an unaudited site acceptable.

/// Reads a value without bounds checking.
pub fn sneaky(values: &[u64]) -> u64 {
    // SAFETY: caller pinky-promises the index is in bounds.
    unsafe { *values.get_unchecked(0) }
}
