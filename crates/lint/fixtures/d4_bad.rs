//! D4 violating fixture: ad-hoc RNG construction.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Builds a private RNG stream outside the sanctioned seed splits.
pub fn rogue_stream(node: u64) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(node)
}
