//! D2 clean fixture: single-threaded, and `thread` as a plain identifier
//! (a near-miss the token matcher must not flag).

/// Sums sequentially; `thread` here is just a variable name.
pub fn fan_in(jobs: &[u64], thread: usize) -> u64 {
    jobs.iter().sum::<u64>() + thread as u64
}
