//! `paperlint` — walk the workspace, enforce the determinism contract.
//!
//! ```text
//! paperlint [--root <path>] [--list-rules]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with one `file:line: rule:
//! message` diagnostic per line when it is not, and 2 on usage or I/O
//! errors. Run it from the workspace root (CI does) or point `--root` at
//! one.

use std::path::PathBuf;
use std::process::ExitCode;

use fba_lint::{lint_workspace, workspace_files, Config, RuleId};

fn usage() -> ExitCode {
    eprintln!(
        "usage: paperlint [--root <workspace>] [--list-rules]\n\
         \n\
         Statically enforces the workspace determinism contract and exits\n\
         non-zero on any diagnostic. Waive a single line with an explicit\n\
         `// paperlint: allow(Dn) <reason>` comment on the preceding line."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let Some(path) = args.next() else {
                    eprintln!("paperlint: --root needs a path");
                    return usage();
                };
                root = PathBuf::from(path);
            }
            "--list-rules" => list_rules = true,
            other => {
                eprintln!("paperlint: unknown argument `{other}`");
                return usage();
            }
        }
    }

    if list_rules {
        for rule in RuleId::DETERMINISM {
            println!("{rule}  {}", rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "paperlint: no Cargo.toml under {} — point --root at the workspace",
            root.display()
        );
        return ExitCode::from(2);
    }

    let config = Config::default();
    let files = match workspace_files(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("paperlint: walking {} failed: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    match lint_workspace(&root, &config) {
        Ok(diags) if diags.is_empty() => {
            eprintln!("paperlint: clean ({} files)", files.len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!(
                "paperlint: {} diagnostic{} across {} files",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
                files.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("paperlint: linting failed: {err}");
            ExitCode::from(2)
        }
    }
}
