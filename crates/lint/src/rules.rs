//! The determinism rules and the per-file check engine.
//!
//! Every rule matches on the token stream from [`crate::lexer`] — comments,
//! strings and `#[cfg(test)]` modules are already out of the picture — and
//! reports at most one diagnostic per `(line, rule)`, so a waiver on the
//! preceding line suppresses the whole line's finding for that rule.

use std::fmt;

use crate::config::Config;
use crate::lexer::{cfg_test_mask, lex, Lexed, Token, TokenKind};
use crate::waiver;

/// A lint rule identifier.
///
/// `D*` rules are the determinism contract; `W*` rules police the waiver
/// mechanism itself (and are therefore not waivable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the variants are documented by `describe`
pub enum RuleId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    W1,
    W2,
}

impl RuleId {
    /// All determinism rules, in order.
    pub const DETERMINISM: [RuleId; 7] = [
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::D4,
        RuleId::D5,
        RuleId::D6,
        RuleId::D7,
    ];

    /// Parses a rule name as written in a waiver (`D1` … `D7`).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        Self::DETERMINISM.into_iter().find(|r| r.as_str() == s)
    }

    /// The rule's short name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::D4 => "D4",
            RuleId::D5 => "D5",
            RuleId::D6 => "D6",
            RuleId::D7 => "D7",
            RuleId::W1 => "W1",
            RuleId::W2 => "W2",
        }
    }

    /// One-line statement of the invariant the rule enforces.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "no std HashMap/HashSet in deterministic crates (SipHash random keys); \
                 use fba_sim::fxhash or BTreeMap"
            }
            RuleId::D2 => {
                "no thread/lock/atomic primitives outside the sanctioned parallel \
                 executors (fba-exec, fba-bench::par)"
            }
            RuleId::D3 => "no wall-clock reads (Instant/SystemTime) outside bench timing code",
            RuleId::D4 => {
                "no ad-hoc RNG construction; all streams derive from fba_sim::rng's \
                 seed-split helpers"
            }
            RuleId::D5 => {
                "every unsafe block sits in the audited allowlist under a // SAFETY: comment"
            }
            RuleId::D6 => {
                "no environment reads outside the sanctioned config sites \
                 (resolve_shards, FBA_BATCH, UPDATE_GOLDEN)"
            }
            RuleId::D7 => {
                "no print!/eprintln! in library crates; output goes through observers/reporters"
            }
            RuleId::W1 => "waivers must name a known rule and carry a reason",
            RuleId::W2 => "waivers must suppress an actual violation (no stale waivers)",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One `file:line:rule` finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (unix separators).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source text under `config`. `rel_path` decides crate
/// scoping (e.g. `crates/core/src/push.rs` → `fba-core`); callers pass
/// real or synthetic paths — fixture tests use the latter.
#[must_use]
pub fn lint_source(rel_path: &str, source: &str, config: &Config) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mask = cfg_test_mask(&lexed.tokens);
    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in RuleId::DETERMINISM {
        if !config.applies(rule, rel_path) {
            continue;
        }
        check_rule(rule, rel_path, &lexed, &mask, config, &mut raw);
    }
    // One diagnostic per (line, rule): a line-scoped waiver then suppresses
    // the finding wholesale rather than leaving token-count residue.
    raw.sort_by_key(|d| (d.line, d.rule));
    raw.dedup_by_key(|d| (d.line, d.rule));
    let mut diags = waiver::apply(rel_path, &lexed.comments, raw);
    diags.sort_by_key(|d| (d.line, d.rule));
    diags
}

/// Live (non-test-masked) tokens with their stream index.
fn live<'a>(lexed: &'a Lexed, mask: &'a [bool]) -> impl Iterator<Item = (usize, &'a Token)> + 'a {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(move |(i, _)| !mask[*i])
}

/// Whether the token at stream index `i` is the identifier `want` and the
/// two tokens before it spell `prefix ::`.
fn path_prefixed(tokens: &[Token], i: usize, prefix: &str, want: &str) -> bool {
    tokens[i].kind == TokenKind::Ident
        && tokens[i].text == want
        && i >= 2
        && tokens[i - 1].text == "::"
        && tokens[i - 2].text == prefix
}

fn check_rule(
    rule: RuleId,
    path: &str,
    lexed: &Lexed,
    mask: &[bool],
    config: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let mut emit = |line: u32, message: String| {
        out.push(Diagnostic {
            path: path.to_owned(),
            line,
            rule,
            message,
        });
    };
    match rule {
        RuleId::D1 => {
            for (_, t) in live(lexed, mask) {
                if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
                    emit(
                        t.line,
                        format!(
                            "`{}` in a deterministic crate: SipHash's random keys make \
                             iteration order a run-to-run variable; use \
                             `fba_sim::fxhash::Fx{}` or an ordered map",
                            t.text, t.text
                        ),
                    );
                }
            }
        }
        RuleId::D2 => {
            let toks = &lexed.tokens;
            for (i, t) in live(lexed, mask) {
                let hit = match t.kind {
                    TokenKind::Ident => {
                        t.text == "Mutex"
                            || t.text == "RwLock"
                            || t.text == "Condvar"
                            || t.text == "mpsc"
                            || t.text.starts_with("Atomic")
                            || path_prefixed(toks, i, "std", "thread")
                    }
                    _ => false,
                };
                if hit {
                    emit(
                        t.line,
                        format!(
                            "`{}`: shared-state parallelism belongs behind `fba-exec` \
                             and `fba_bench::par`; protocol code must stay \
                             single-threaded-deterministic",
                            t.text
                        ),
                    );
                }
            }
        }
        RuleId::D3 => {
            for (_, t) in live(lexed, mask) {
                if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
                    emit(
                        t.line,
                        format!(
                            "`{}` reads the wall clock: deterministic code measures \
                             nothing but simulated steps; timing lives in fba-bench",
                            t.text
                        ),
                    );
                }
            }
        }
        RuleId::D4 => {
            const CONSTRUCTORS: [&str; 5] = [
                "from_seed",
                "seed_from_u64",
                "from_entropy",
                "thread_rng",
                "OsRng",
            ];
            for (_, t) in live(lexed, mask) {
                if t.kind == TokenKind::Ident && CONSTRUCTORS.contains(&t.text.as_str()) {
                    emit(
                        t.line,
                        format!(
                            "`{}` constructs an RNG outside `fba_sim::rng`: every stream \
                             must derive from the master seed via the sanctioned \
                             seed-split helpers (mix/derive/instance_seed)",
                            t.text
                        ),
                    );
                }
            }
        }
        RuleId::D5 => {
            let allowed = config.unsafe_allowed(path);
            for (_, t) in live(lexed, mask) {
                if t.kind != TokenKind::Ident || t.text != "unsafe" {
                    continue;
                }
                if !allowed {
                    emit(
                        t.line,
                        "`unsafe` outside the audited allowlist; the workspace carries \
                         exactly the sites named in fba-lint's config"
                            .to_owned(),
                    );
                } else if !has_safety_comment(lexed, t.line) {
                    emit(
                        t.line,
                        "allowlisted `unsafe` without a `// SAFETY:` comment on the \
                         preceding lines"
                            .to_owned(),
                    );
                }
            }
        }
        RuleId::D6 => {
            const READS: [&str; 4] = ["var", "var_os", "set_var", "remove_var"];
            let toks = &lexed.tokens;
            for (i, t) in live(lexed, mask) {
                if t.kind == TokenKind::Ident
                    && READS.contains(&t.text.as_str())
                    && path_prefixed(toks, i, "env", &t.text.clone())
                {
                    emit(
                        t.line,
                        format!(
                            "`env::{}` outside the sanctioned config sites: ambient \
                             environment must not steer deterministic code",
                            t.text
                        ),
                    );
                }
            }
        }
        RuleId::D7 => {
            const MACROS: [&str; 4] = ["print", "println", "eprint", "eprintln"];
            let toks = &lexed.tokens;
            for (i, t) in live(lexed, mask) {
                if t.kind == TokenKind::Ident
                    && MACROS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.text == "!")
                {
                    emit(
                        t.line,
                        format!(
                            "`{}!` in library code: results flow through observers and \
                             reporters, not stdout side effects",
                            t.text
                        ),
                    );
                }
            }
        }
        RuleId::W1 | RuleId::W2 => unreachable!("waiver rules run in waiver::apply"),
    }
}

/// Whether a comment mentioning `SAFETY:` ends within the six lines
/// preceding (or on) `line` — the audit trail an allowlisted `unsafe`
/// must carry.
fn has_safety_comment(lexed: &Lexed, line: u32) -> bool {
    lexed
        .comments
        .iter()
        .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 6 >= line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn lint_core(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/core/src/x.rs", src, &Config::default())
    }

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::DETERMINISM {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("D9"), None);
        assert_eq!(RuleId::parse("W1"), None, "waiver rules are not waivable");
    }

    #[test]
    fn one_diagnostic_per_line_and_rule() {
        let diags = lint_core("use std::collections::{HashMap, HashSet};\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::D1);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn display_is_file_line_rule() {
        let diags = lint_core("use std::time::Instant;\n");
        assert_eq!(diags.len(), 1);
        let rendered = diags[0].to_string();
        assert!(
            rendered.starts_with("crates/core/src/x.rs:1: D3: "),
            "{rendered}"
        );
    }

    #[test]
    fn hash_map_entry_path_is_not_a_hit() {
        // `std::collections::hash_map::Entry` names the module, not the
        // randomized-hasher container.
        let diags = lint_core("use std::collections::hash_map::Entry;\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn thread_as_plain_identifier_is_not_a_hit() {
        let diags = lint_core("fn f(thread: usize) -> usize { thread + 1 }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn print_ident_without_bang_is_not_a_hit() {
        let diags = lint_core("fn print(x: usize) {} fn f() { print(1); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
