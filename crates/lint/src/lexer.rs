//! A minimal Rust token scanner: string-, char- and comment-aware.
//!
//! The lint rules match on *token* sequences, never on raw text, so a
//! `HashMap` inside a doc comment, a string literal or a `#[cfg(test)]`
//! module can never trip a rule. The scanner understands exactly the
//! surface it needs to get that right:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), preserved as [`Comment`]s — waivers and `// SAFETY:`
//!   audits read them;
//! * string literals with escapes, byte strings (`b"…"`), and raw
//!   (byte) strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * char literals (including escapes) versus lifetimes (`'a'` vs `'a`);
//! * identifiers/keywords, numbers, and punctuation (with `::` fused into
//!   one token so path rules can match `std :: thread` directly).
//!
//! It is deliberately *not* a parser: no expression grammar, no macro
//! expansion. That keeps it a few hundred lines, auditable, and — like
//! the mini JSON reader in `fba-bench` — free of registry dependencies.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `std`).
    Ident,
    /// Punctuation; `::` is fused, everything else is one char.
    Punct,
    /// A string/char/number literal (content not interpreted).
    Literal,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: u32,
    /// Token class.
    pub kind: TokenKind,
    /// Token text (for [`TokenKind::Literal`], the raw source slice).
    pub text: String,
}

/// One comment (line or block) with its source extent.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`) — doc
    /// prose *describing* a waiver must never act as one.
    pub doc: bool,
}

/// The result of scanning one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Scans `source` into tokens and comments. Never fails: unterminated
/// constructs simply end at end-of-file (the compiler is the authority on
/// well-formedness; the linter only needs to never misclassify).
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'"' => self.string(false),
                b'\'' => self.quote(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push_token(&mut self, line: u32, kind: TokenKind, text: &str) {
        self.out.tokens.push(Token {
            line,
            kind,
            text: text.to_owned(),
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        let doc = (raw.starts_with("///") && !raw.starts_with("////")) || raw.starts_with("//!");
        self.out.comments.push(Comment {
            line: self.line,
            end_line: self.line,
            text: raw
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim()
                .to_owned(),
            doc,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        let doc = (raw.starts_with("/**") && !raw.starts_with("/***")) || raw.starts_with("/*!");
        let text = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*')
            .trim()
            .to_owned();
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text,
            doc,
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` when the cursor sits on
    /// the `r`/`b` prefix. Returns `false` (consuming nothing) if what
    /// follows is not a string prefix — the caller then lexes an ident.
    fn raw_or_byte_string(&mut self) -> bool {
        let mut i = self.pos;
        let mut raw = false;
        if self.bytes[i] == b'b' {
            i += 1;
        }
        if i < self.bytes.len() && self.bytes[i] == b'r' {
            raw = true;
            i += 1;
        }
        let hash_start = i;
        while raw && i < self.bytes.len() && self.bytes[i] == b'#' {
            i += 1;
        }
        let hashes = i - hash_start;
        if i >= self.bytes.len() || self.bytes[i] != b'"' || (!raw && hashes > 0) {
            return false; // plain ident starting with r/b
        }
        if !raw {
            // b"…": normal escape rules.
            self.pos = i;
            self.string(true);
            return true;
        }
        // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        let line = self.line;
        let start = self.pos;
        self.pos = i + 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"'
                && self.bytes[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                self.pos += 1 + hashes;
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_token(line, TokenKind::Literal, &text);
        true
    }

    /// Scans a `"…"` string (cursor on the opening quote; `byte` marks a
    /// `b"…"` prefix already consumed).
    fn string(&mut self, byte: bool) {
        let line = self.line;
        let start = if byte { self.pos - 1 } else { self.pos };
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // Escapes, including the line-continuation `\<newline>`.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos.min(self.bytes.len())]);
        self.push_token(line, TokenKind::Literal, &text);
    }

    /// Disambiguates char literals from lifetimes at a `'`.
    fn quote(&mut self) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match (next, after) {
            // 'x' / '_' followed by a closing quote: a char literal.
            (Some(n), Some(b'\'')) if n != b'\\' => false,
            // 'ident… with no closing quote right after: a lifetime.
            (Some(n), _) if n == b'_' || n.is_ascii_alphabetic() => true,
            _ => false,
        };
        if is_lifetime {
            let start = self.pos;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
            self.push_token(self.line, TokenKind::Lifetime, &text);
            return;
        }
        // Char literal: consume until the closing quote, honouring escapes.
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos.min(self.bytes.len())]);
        self.push_token(self.line, TokenKind::Literal, &text);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_token(self.line, TokenKind::Ident, &text);
    }

    fn number(&mut self) {
        let start = self.pos;
        // Good enough for matching purposes: digits plus the usual number
        // body characters (hex, underscores, exponents, suffixes, dots).
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b == b'.' || b.is_ascii_alphanumeric())
        {
            // Don't swallow `..` range punctuation or method calls on ints.
            if self.bytes[self.pos] == b'.'
                && self
                    .peek(1)
                    .is_some_and(|b| b == b'.' || b.is_ascii_alphabetic())
            {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push_token(self.line, TokenKind::Literal, &text);
    }

    fn punct(&mut self) {
        if self.bytes[self.pos] == b':' && self.peek(1) == Some(b':') {
            self.push_token(self.line, TokenKind::Punct, "::");
            self.pos += 2;
            return;
        }
        let text = (self.bytes[self.pos] as char).to_string();
        self.push_token(self.line, TokenKind::Punct, &text);
        self.pos += 1;
    }
}

/// Computes, per token, whether it sits inside a `#[cfg(test)]` item
/// (`true` = masked). The static contract binds *shipped* code; in-file
/// test modules are the test suite's own territory and are skipped, the
/// same boundary `cargo build` draws.
///
/// Recognized shape: a `#[cfg(test)]` attribute, optionally followed by
/// further attributes, then one item — masked through its closing `}` (or
/// terminating `;`).
#[must_use]
pub fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            let mut j = after_attr;
            // Skip any further attributes on the same item.
            while j < tokens.len() && tokens[j].text == "#" {
                j = skip_balanced(tokens, j + 1, "[", "]");
            }
            // Mask through the item body: to the matching `}` of the first
            // `{` at depth 0, or to a top-level `;` (e.g. `#[cfg(test)] use …;`).
            let mut k = j;
            while k < tokens.len() {
                match tokens[k].text.as_str() {
                    "{" => {
                        k = skip_balanced(tokens, k, "{", "}");
                        break;
                    }
                    ";" => {
                        k += 1;
                        break;
                    }
                    _ => k += 1,
                }
            }
            for m in mask.iter_mut().take(k).skip(i) {
                *m = true;
            }
            i = k;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` spell `#[cfg(test)]`, returns the index just past `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let texts = ["#", "[", "cfg", "(", "test", ")", "]"];
    for (off, want) in texts.iter().enumerate() {
        if tokens.get(i + off)?.text != *want {
            return None;
        }
    }
    Some(i + texts.len())
}

/// From `open` at or after `start`, returns the index just past its
/// matching `close` (or `tokens.len()` if unbalanced).
fn skip_balanced(tokens: &[Token], start: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        if tokens[i].text == open {
            depth += 1;
        } else if tokens[i].text == close {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_never_yield_tokens() {
        let src = "// HashMap here\n/* Mutex /* nested Instant */ still */ let x = 1;";
        let l = lex(src);
        assert!(idents(src)
            .iter()
            .all(|t| t != "HashMap" && t != "Mutex" && t != "Instant"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "HashMap here");
        assert!(l.comments[1].text.contains("nested Instant"));
    }

    #[test]
    fn strings_never_yield_tokens() {
        let src =
            r####"let a = "HashMap"; let b = r#"Mutex "quoted" Instant"#; let c = b"unsafe";"####;
        assert!(idents(src)
            .iter()
            .all(|t| t != "HashMap" && t != "Mutex" && t != "unsafe"));
    }

    #[test]
    fn raw_string_with_backslash_does_not_derail() {
        let src = r#"let a = r"back\"; let unsafe_thing = 1;"#;
        // The raw string ends at the first quote; `unsafe_thing` must be
        // lexed as an ident (and as `unsafe_thing`, not `unsafe`).
        assert!(idents(src).contains(&"unsafe_thing".to_owned()));
        assert!(!idents(src).contains(&"unsafe".to_owned()));
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' } let q = '\\''; let s: &'static str = \"\";";
        let l = lex(src);
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'x'"));
    }

    #[test]
    fn path_separator_is_fused() {
        let l = lex("std::collections::HashMap");
        let texts: Vec<_> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["std", "::", "collections", "::", "HashMap"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<_> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn multiline_block_comment_spans_are_recorded() {
        let l = lex("/* one\ntwo\nthree */ x");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[0].end_line, 3);
        assert_eq!(l.tokens[0].line, 3);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "use a::B;\n#[cfg(test)]\nmod tests {\n  use std::collections::HashMap;\n}\nfn live() {}";
        let l = lex(src);
        let mask = cfg_test_mask(&l.tokens);
        for (t, m) in l.tokens.iter().zip(&mask) {
            if t.text == "HashMap" {
                assert!(m, "test-mod token must be masked");
            }
            if t.text == "live" {
                assert!(!m, "code after the test mod must be live");
            }
        }
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_semicolon_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::sync::Mutex;\nfn live() {}";
        let l = lex(src);
        let mask = cfg_test_mask(&l.tokens);
        for (t, m) in l.tokens.iter().zip(&mask) {
            if t.text == "Mutex" {
                assert!(m);
            }
            if t.text == "live" {
                assert!(!m);
            }
        }
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(feature = \"x\")]\nmod m { use std::sync::Mutex; }";
        let l = lex(src);
        let mask = cfg_test_mask(&l.tokens);
        assert!(mask.iter().all(|&m| !m));
    }
}
