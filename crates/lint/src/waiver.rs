//! Explicit, greppable waivers: `// paperlint: allow(D2) <reason>`.
//!
//! A waiver is a line comment whose text starts with the `paperlint:`
//! marker. It suppresses **exactly one rule on exactly the next line** —
//! never a range, never a file. The reason is mandatory: a waiver is an
//! audit record, and `grep -rn 'paperlint: allow'` must read as one.
//!
//! The mechanism polices itself with two meta-rules:
//!
//! * **W1** — a waiver that names an unknown rule, or does not parse at
//!   all, is itself a diagnostic (a typo like `allow(D8)` must not
//!   silently waive nothing);
//! * **W2** — a *stale* waiver, one whose next line carries no violation
//!   of the named rule, is a diagnostic too (so waivers cannot outlive the
//!   code they excused).

use crate::lexer::Comment;
use crate::rules::{Diagnostic, RuleId};

/// The comment marker that introduces a waiver.
pub const MARKER: &str = "paperlint:";

/// One parsed waiver: the comment ends on `line` and targets `line + 1`.
#[derive(Clone, Debug)]
struct Waiver {
    line: u32,
    parsed: Result<RuleId, String>,
}

/// Extracts waivers from a file's comments.
fn parse_all(comments: &[Comment]) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        // A waiver is a plain comment that *starts* with the marker; doc
        // prose mentioning the syntax never acts as one.
        if c.doc || !c.text.starts_with(MARKER) {
            continue;
        }
        let body = c.text[MARKER.len()..].trim();
        waivers.push(Waiver {
            line: c.end_line,
            parsed: parse_body(body),
        });
    }
    waivers
}

/// Parses `allow(Dn) <reason>`; returns the waived rule or an error text.
fn parse_body(body: &str) -> Result<RuleId, String> {
    let Some(rest) = body.strip_prefix("allow(") else {
        return Err(format!(
            "malformed waiver `{body}`; expected `paperlint: allow(Dn) <reason>`"
        ));
    };
    let Some((name, reason)) = rest.split_once(')') else {
        return Err(format!("unclosed waiver `{body}`"));
    };
    let Some(rule) = RuleId::parse(name.trim()) else {
        return Err(format!(
            "unknown rule `{}` in waiver; known rules: D1–D7",
            name.trim()
        ));
    };
    if reason.trim().is_empty() {
        return Err(format!(
            "waiver for {rule} carries no reason; the reason is the audit record"
        ));
    }
    Ok(rule)
}

/// Applies waivers to the raw findings: suppresses waived diagnostics and
/// appends W1 (bad waiver) / W2 (stale waiver) findings.
pub(crate) fn apply(
    path: &str,
    comments: &[Comment],
    mut diags: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    for w in parse_all(comments) {
        match w.parsed {
            Err(message) => diags.push(Diagnostic {
                path: path.to_owned(),
                line: w.line,
                rule: RuleId::W1,
                message,
            }),
            Ok(rule) => {
                let target = w.line + 1;
                if let Some(i) = diags
                    .iter()
                    .position(|d| d.line == target && d.rule == rule)
                {
                    diags.remove(i);
                } else {
                    diags.push(Diagnostic {
                        path: path.to_owned(),
                        line: w.line,
                        rule: RuleId::W2,
                        message: format!("stale waiver: no {rule} violation on line {target}"),
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_parses_rule_and_requires_reason() {
        assert_eq!(parse_body("allow(D3) bench timing"), Ok(RuleId::D3));
        assert!(parse_body("allow(D3)").is_err(), "reason required");
        assert!(parse_body("allow(D3)   ").is_err(), "blank reason required");
        assert!(parse_body("allow(D9) typo").is_err(), "unknown rule");
        assert!(
            parse_body("allow(W2) meta").is_err(),
            "meta-rules unwaivable"
        );
        assert!(parse_body("permit(D3) wrong verb").is_err());
        assert!(parse_body("allow(D3 unclosed").is_err());
    }
}
