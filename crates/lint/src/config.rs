//! The crate → rule-set table: which rule binds which file.
//!
//! Scoping happens at two grains:
//!
//! * **crate filters** — e.g. D1 binds only the deterministic crates
//!   (protocol, samplers, simulator, executors), while D3 binds everything
//!   *except* fba-bench, which is the workspace's timing code;
//! * **sanctioned paths** — per-rule path prefixes where the rule's
//!   subject is the point: `fba_sim::fxhash` implements the sanctioned
//!   hasher (D1), `fba_sim::rng` the sanctioned seed splits (D4),
//!   `resolve_shards`/`FBA_BATCH` the sanctioned env reads (D6).
//!
//! Everything else goes through an explicit, greppable waiver comment
//! (`// paperlint: allow(D2) <reason>`) on the preceding line — see
//! [`crate::waiver`].

use crate::rules::RuleId;

/// Which crates a rule binds.
#[derive(Clone, Debug)]
pub enum CrateFilter {
    /// Every linted crate.
    All,
    /// Only the named crates.
    Only(Vec<&'static str>),
    /// Every crate except the named ones.
    Except(Vec<&'static str>),
}

/// One rule's scope: the crates it binds and the sanctioned path prefixes
/// exempt from it.
#[derive(Clone, Debug)]
pub struct RuleScope {
    /// The rule.
    pub rule: RuleId,
    /// Crates the rule binds.
    pub crates: CrateFilter,
    /// Workspace-relative path prefixes where the rule does not apply.
    pub sanctioned: Vec<&'static str>,
}

/// The lint configuration: rule scopes plus the audited `unsafe` allowlist.
#[derive(Clone, Debug)]
pub struct Config {
    /// Per-rule scoping.
    pub scopes: Vec<RuleScope>,
    /// Files allowed to contain `unsafe` (each site still needs its
    /// `// SAFETY:` comment — D5 checks both).
    pub unsafe_allowlist: Vec<&'static str>,
}

/// The crates whose executions must be pure functions of the seed: the
/// protocol phases, samplers, simulator, execution backends, baselines and
/// the scenario layer (plus the facade, which only re-exports them).
const DETERMINISTIC_CRATES: [&str; 9] = [
    "fba-core",
    "fba-samplers",
    "fba-sim",
    "fba-ae",
    "fba-baselines",
    "fba-scenario",
    "fba-exec",
    "fba-recovery",
    "fba",
];

impl Default for Config {
    fn default() -> Self {
        let scopes = vec![
            RuleScope {
                rule: RuleId::D1,
                crates: CrateFilter::Only(DETERMINISTIC_CRATES.to_vec()),
                // The FxHash wrapper is the sanctioned replacement itself.
                sanctioned: vec!["crates/sim/src/fxhash.rs"],
            },
            RuleScope {
                rule: RuleId::D2,
                crates: CrateFilter::All,
                // The two sanctioned parallel executors: the threaded
                // backend and the sweep fan-out.
                sanctioned: vec!["crates/exec/src/", "crates/bench/src/par.rs"],
            },
            RuleScope {
                rule: RuleId::D3,
                // fba-bench *is* the timing code.
                crates: CrateFilter::Except(vec!["fba-bench"]),
                sanctioned: vec![],
            },
            RuleScope {
                rule: RuleId::D4,
                crates: CrateFilter::All,
                // The seed-split helpers: the one place RNGs are built.
                sanctioned: vec!["crates/sim/src/rng.rs"],
            },
            RuleScope {
                rule: RuleId::D5,
                crates: CrateFilter::All,
                sanctioned: vec![],
            },
            RuleScope {
                rule: RuleId::D6,
                crates: CrateFilter::All,
                // resolve_shards (FBA_THREADS) and EngineConfig::batch
                // (FBA_BATCH); UPDATE_GOLDEN lives in a test target, which
                // the walker does not lint.
                sanctioned: vec!["crates/exec/src/spec.rs", "crates/sim/src/engine.rs"],
            },
            RuleScope {
                rule: RuleId::D7,
                crates: CrateFilter::All,
                // Binaries own their stdout.
                sanctioned: vec!["crates/bench/src/bin/", "crates/lint/src/bin/"],
            },
        ];
        Config {
            scopes,
            unsafe_allowlist: vec!["crates/sim/src/tuning.rs"],
        }
    }
}

impl Config {
    /// Whether `rule` binds the file at workspace-relative `path`.
    #[must_use]
    pub fn applies(&self, rule: RuleId, path: &str) -> bool {
        let Some(scope) = self.scopes.iter().find(|s| s.rule == rule) else {
            return false;
        };
        let Some(krate) = crate_of(path) else {
            return false;
        };
        let in_crate = match &scope.crates {
            CrateFilter::All => true,
            CrateFilter::Only(list) => list.contains(&krate.as_str()),
            CrateFilter::Except(list) => !list.contains(&krate.as_str()),
        };
        in_crate && !scope.sanctioned.iter().any(|p| path.starts_with(p))
    }

    /// Whether `path` is on the audited `unsafe` allowlist (D5).
    #[must_use]
    pub fn unsafe_allowed(&self, path: &str) -> bool {
        self.unsafe_allowlist.iter().any(|p| path.starts_with(p))
    }
}

/// Maps a workspace-relative path to its crate name: `crates/<x>/src/…` →
/// `fba-<x>`, `src/…` → `fba` (the facade). Paths outside a linted source
/// tree (tests, benches, examples, shims) map to `None`.
#[must_use]
pub fn crate_of(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        let (name, tail) = rest.split_once('/')?;
        if tail.starts_with("src/") {
            return Some(format!("fba-{name}"));
        }
        return None;
    }
    if path.starts_with("src/") {
        return Some("fba".to_owned());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_of_maps_source_trees_only() {
        assert_eq!(
            crate_of("crates/core/src/push.rs").as_deref(),
            Some("fba-core")
        );
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("fba"));
        assert_eq!(crate_of("crates/core/tests/x.rs"), None);
        assert_eq!(crate_of("tests/properties.rs"), None);
        assert_eq!(crate_of("shims/rand/src/lib.rs"), None);
    }

    #[test]
    fn d1_binds_deterministic_crates_but_not_bench() {
        let c = Config::default();
        assert!(c.applies(RuleId::D1, "crates/core/src/push.rs"));
        assert!(c.applies(RuleId::D1, "crates/exec/src/threaded.rs"));
        assert!(!c.applies(RuleId::D1, "crates/bench/src/battery.rs"));
        assert!(
            !c.applies(RuleId::D1, "crates/sim/src/fxhash.rs"),
            "sanctioned"
        );
    }

    #[test]
    fn d3_exempts_bench_wholesale() {
        let c = Config::default();
        assert!(!c.applies(RuleId::D3, "crates/bench/src/battery.rs"));
        assert!(c.applies(RuleId::D3, "crates/sim/src/engine.rs"));
    }

    #[test]
    fn d2_sanctions_the_two_executors() {
        let c = Config::default();
        assert!(!c.applies(RuleId::D2, "crates/exec/src/threaded.rs"));
        assert!(!c.applies(RuleId::D2, "crates/bench/src/par.rs"));
        assert!(c.applies(RuleId::D2, "crates/bench/src/battery.rs"));
        assert!(c.applies(RuleId::D2, "crates/scenario/src/lib.rs"));
    }

    #[test]
    fn unsafe_allowlist_is_exact() {
        let c = Config::default();
        assert!(c.unsafe_allowed("crates/sim/src/tuning.rs"));
        assert!(!c.unsafe_allowed("crates/sim/src/engine.rs"));
    }
}
