//! Workspace walking: which files the static contract binds.
//!
//! The linted surface is **shipped source**: `src/` (the facade) and every
//! `crates/*/src/` tree — library code plus the binaries that live under
//! `src/bin/`. Test targets (`tests/`), benches, examples and the offline
//! shim crates are out of scope: the equivalence suites own that ground,
//! and the shims deliberately mirror third-party APIs (`from_seed` et al.)
//! that the rules would flag.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::rules::{lint_source, Diagnostic};

/// Returns every linted `.rs` file under `root`, as workspace-relative
/// paths with `/` separators, sorted (so diagnostics come out in a stable
/// order on every platform).
///
/// # Errors
///
/// Propagates filesystem errors; a missing `crates/` or `src/` directory
/// is not an error (temp fixture workspaces may carry only one tree).
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect(&src, root, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in fs::read_dir(&crates)? {
            let crate_src = entry?.path().join("src");
            if crate_src.is_dir() {
                collect(&crate_src, root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(relative(&path, root));
        }
    }
    Ok(())
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every in-scope file under `root`. Diagnostics are ordered by
/// `(path, line, rule)`.
///
/// # Errors
///
/// Propagates filesystem errors from walking or reading sources.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in workspace_files(root)? {
        let source = fs::read_to_string(root.join(PathBuf::from(&rel)))?;
        diags.extend(lint_source(&rel, &source, config));
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_scopes_to_source_trees() {
        let dir = std::env::temp_dir().join("paperlint_walk_test");
        let _ = fs::remove_dir_all(&dir);
        for (path, body) in [
            ("src/lib.rs", "pub fn a() {}\n"),
            ("src/bin/tool.rs", "fn main() {}\n"),
            ("crates/x/src/lib.rs", "pub fn b() {}\n"),
            ("crates/x/tests/t.rs", "use std::time::Instant;\n"),
            ("crates/x/benches/b.rs", "use std::time::Instant;\n"),
            ("examples/e.rs", "use std::time::Instant;\n"),
            ("shims/rand/src/lib.rs", "pub fn from_seed() {}\n"),
            ("tests/integration.rs", "use std::time::Instant;\n"),
        ] {
            let full = dir.join(path);
            fs::create_dir_all(full.parent().unwrap()).unwrap();
            fs::write(full, body).unwrap();
        }
        let files = workspace_files(&dir).unwrap();
        assert_eq!(
            files,
            vec![
                "crates/x/src/lib.rs".to_owned(),
                "src/bin/tool.rs".to_owned(),
                "src/lib.rs".to_owned(),
            ]
        );
        let diags = lint_workspace(&dir, &Config::default()).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        fs::remove_dir_all(&dir).unwrap();
    }
}
