//! # fba-lint — the workspace determinism lint (`paperlint`)
//!
//! Every guarantee this reproduction ships — bit-identical replays,
//! batched ≡ unbatched delivery, threaded ≡ sim backends, the service
//! seed scheme — rests on conventions the compiler cannot see: no
//! randomized-hasher containers in protocol crates, no wall clock or
//! ad-hoc RNG in deterministic code, parallelism only behind the
//! sanctioned executors, one audited `unsafe` site. The equivalence
//! suites *sample* those invariants per seed; this crate *enforces* them
//! on every line, statically.
//!
//! ## The rules
//!
//! | Rule | Invariant | Scope |
//! |------|-----------|-------|
//! | D1 | no std `HashMap`/`HashSet` (SipHash random keys) | deterministic crates; `fba_sim::fxhash` sanctioned |
//! | D2 | no `std::thread`/`Mutex`/`Atomic*` | everywhere; `fba-exec`, `fba_bench::par` sanctioned |
//! | D3 | no `Instant`/`SystemTime` | everywhere except fba-bench (the timing code) |
//! | D4 | no RNG construction (`from_seed`, `seed_from_u64`, …) | everywhere; `fba_sim::rng` sanctioned |
//! | D5 | `unsafe` only on the audited allowlist, under `// SAFETY:` | everywhere |
//! | D6 | no `env::var` reads | everywhere; `resolve_shards`, `FBA_BATCH` sanctioned |
//! | D7 | no `print!`/`eprintln!` in library code | everywhere; binaries sanctioned |
//!
//! One-off exceptions are explicit and greppable:
//! `// paperlint: allow(D2) <reason>` on the preceding line waives exactly
//! one rule on exactly the next line. The waiver mechanism polices itself:
//! unknown rule names (W1) and stale waivers (W2) are diagnostics.
//!
//! ## How it works
//!
//! [`lexer`] is a minimal string/char/comment-aware Rust token scanner (in
//! the idiom of fba-bench's mini JSON reader — self-contained, no registry
//! deps). [`rules`] matches token sequences per rule, [`config`] scopes
//! rules per crate with sanctioned-path exemptions, [`waiver`] applies the
//! allow-comments, and [`walk`] runs the whole workspace. The `paperlint`
//! binary exits non-zero with `file:line: rule: message` diagnostics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;
pub mod waiver;
pub mod walk;

pub use config::Config;
pub use rules::{lint_source, Diagnostic, RuleId};
pub use walk::{lint_workspace, workspace_files};
