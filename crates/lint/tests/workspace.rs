//! The lint against the real workspace: clean at HEAD, and fire drills
//! proving it would catch a regression planted into real files.

use std::fs;
use std::path::{Path, PathBuf};

use fba_lint::{lint_source, lint_workspace, workspace_files, Config, RuleId};

/// The actual workspace root (two levels up from this crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn the_workspace_is_clean_at_head() {
    let root = workspace_root();
    let diags = lint_workspace(&root, &Config::default()).expect("walk succeeds");
    assert!(
        diags.is_empty(),
        "the determinism contract must hold on every shipped line:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_walk_covers_every_crate() {
    // The pass touches every crate: each workspace member's src tree must
    // contribute files to the lint surface.
    let files = workspace_files(&workspace_root()).expect("walk succeeds");
    for krate in [
        "crates/ae/src/",
        "crates/baselines/src/",
        "crates/bench/src/",
        "crates/core/src/",
        "crates/exec/src/",
        "crates/lint/src/",
        "crates/recovery/src/",
        "crates/samplers/src/",
        "crates/scenario/src/",
        "crates/sim/src/",
        "src/",
    ] {
        assert!(
            files.iter().any(|f| f.starts_with(krate)),
            "no files walked under {krate}; walked: {files:?}"
        );
    }
}

/// Fire drill: plant a D1 violation into a temp copy of the real
/// `crates/core/src/push.rs` and assert the workspace walk detects it at
/// the planted line.
#[test]
fn fire_drill_planted_d1_in_a_real_file_is_detected() {
    let root = workspace_root();
    let real = fs::read_to_string(root.join("crates/core/src/push.rs")).expect("read push.rs");
    assert!(
        !real.contains("std::collections::HashMap"),
        "push.rs must stay on FxHashMap (the PR-9 fix)"
    );

    // Re-introduce exactly the import this PR removed.
    let planted = real.replace(
        "use fba_sim::fxhash::{FxHashMap, FxHashSet};",
        "use std::collections::HashMap;\nuse fba_sim::fxhash::{FxHashMap, FxHashSet};",
    );
    assert_ne!(planted, real, "the anchor line must exist to plant after");
    let planted_line = 1 + planted
        .lines()
        .position(|l| l == "use std::collections::HashMap;")
        .expect("planted line present") as u32;

    // Build a temp workspace holding the sabotaged copy and walk it.
    let dir = std::env::temp_dir().join("paperlint_fire_drill_d1");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir");
    fs::write(dir.join("crates/core/src/push.rs"), &planted).expect("write");
    let diags = lint_workspace(&dir, &Config::default()).expect("walk succeeds");
    fs::remove_dir_all(&dir).expect("cleanup");

    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::D1);
    assert_eq!(diags[0].path, "crates/core/src/push.rs");
    assert_eq!(diags[0].line, planted_line);
}

/// Fire drill: deleting the `// SAFETY:` comment from the one audited
/// unsafe site (`crates/sim/src/tuning.rs`) makes the pass fail.
#[test]
fn fire_drill_deleting_the_safety_comment_fails_d5() {
    let root = workspace_root();
    let rel = "crates/sim/src/tuning.rs";
    let real = fs::read_to_string(root.join(rel)).expect("read tuning.rs");
    let config = Config::default();

    // As shipped: the audited site passes.
    let diags = lint_source(rel, &real, &config);
    assert!(
        diags.is_empty(),
        "shipped tuning.rs must be clean: {diags:?}"
    );

    // Strip the audit line; the unsafe block is now unaudited.
    let stripped: String = real
        .lines()
        .filter(|l| !l.contains("SAFETY:"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(stripped, real, "tuning.rs must carry a SAFETY: comment");
    let diags = lint_source(rel, &stripped, &config);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::D5);
    assert!(diags[0].message.contains("SAFETY"), "{:?}", diags[0]);
}

/// Fire drill: moving the audited unsafe out of the allowlisted file is
/// also caught — the allowlist pins the site, not just the comment.
#[test]
fn fire_drill_unsafe_outside_the_allowlist_fails_d5() {
    let root = workspace_root();
    let real = fs::read_to_string(root.join("crates/sim/src/tuning.rs")).expect("read tuning.rs");
    let diags = lint_source("crates/sim/src/engine.rs", &real, &Config::default());
    assert!(
        diags.iter().any(|d| d.rule == RuleId::D5),
        "the same code outside the allowlist must fail: {diags:?}"
    );
}

/// The waivers shipped in this workspace are all live: none stale, none
/// malformed (W1/W2 firing anywhere would already fail
/// `the_workspace_is_clean_at_head`, but assert the count too so a waiver
/// silently losing its violation cannot slip through a config change).
#[test]
fn shipped_waivers_are_exactly_the_audited_set() {
    let root = workspace_root();
    let mut waived = Vec::new();
    for rel in workspace_files(&root).expect("walk succeeds") {
        let source = fs::read_to_string(root.join(&rel)).expect("read source");
        let count = source
            .lines()
            .filter(|l| l.trim_start().starts_with("// paperlint: allow("))
            .count();
        if count > 0 {
            waived.push((rel, count));
        }
    }
    assert_eq!(
        waived,
        vec![
            ("crates/bench/src/battery.rs".to_owned(), 3),
            ("crates/scenario/src/lib.rs".to_owned(), 1),
        ],
        "waiver inventory changed; update this audit list deliberately"
    );
}
