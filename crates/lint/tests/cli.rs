//! Smoke tests for the `paperlint` binary: exit codes, diagnostic format,
//! and usage handling — including the known-bad-fixture run CI relies on.

use std::fs;
use std::path::Path;
use std::process::Command;

fn paperlint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_paperlint"))
        .args(args)
        .output()
        .expect("paperlint binary runs")
}

fn workspace_root() -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
        .to_string_lossy()
        .into_owned()
}

#[test]
fn the_real_workspace_exits_zero() {
    let out = paperlint(&["--root", &workspace_root()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "workspace must lint clean: {stderr}");
    assert!(stderr.contains("clean"), "stderr: {stderr}");
}

#[test]
fn a_known_bad_fixture_tree_exits_non_zero() {
    // Build a temp workspace around the D1 violating fixture and point
    // the binary at it: one diagnostic, exit code 1.
    let dir = std::env::temp_dir().join("paperlint_cli_bad_tree");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(dir.join("crates/core/src")).expect("mkdir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    fs::write(
        dir.join("crates/core/src/lib.rs"),
        include_str!("../fixtures/d1_bad.rs"),
    )
    .expect("write fixture");

    let out = paperlint(&["--root", &dir.to_string_lossy()]);
    fs::remove_dir_all(&dir).expect("cleanup");

    assert_eq!(out.status.code(), Some(1), "diagnostics exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/core/src/lib.rs:3: D1:"),
        "file:line:rule diagnostic expected, got: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("diagnostic"), "stderr summary: {stderr}");
}

#[test]
fn unknown_arguments_print_usage_and_exit_2() {
    let out = paperlint(&["--definitely-not-a-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    assert!(
        stderr.contains("--definitely-not-a-flag"),
        "stderr: {stderr}"
    );
}

#[test]
fn missing_workspace_root_exits_2() {
    let out = paperlint(&["--root", "/definitely/not/a/workspace"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("Cargo.toml"), "stderr: {stderr}");
}

#[test]
fn list_rules_names_the_whole_contract() {
    let out = paperlint(&["--list-rules"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6", "D7"] {
        assert!(stdout.contains(rule), "missing {rule}: {stdout}");
    }
}
