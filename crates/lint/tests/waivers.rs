//! Waiver-handling contract: a `// paperlint: allow(…)` comment
//! suppresses exactly one rule on exactly the next line, unknown rule
//! names in waivers are themselves an error, and stale waivers are
//! reported.

use fba_lint::{lint_source, Config, RuleId};

const PATH: &str = "crates/core/src/fixture.rs";

fn lint(source: &str) -> Vec<fba_lint::Diagnostic> {
    lint_source(PATH, source, &Config::default())
}

#[test]
fn waiver_suppresses_the_next_line() {
    let src = "// paperlint: allow(D3) host timing is reported, not fed back into the run\n\
               use std::time::Instant;\n";
    let diags = lint(src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn waiver_suppresses_exactly_one_rule() {
    // The line violates both D3 (Instant) and D2 (Mutex); waiving D3
    // must leave the D2 finding standing.
    let src = "// paperlint: allow(D3) timing wrapper\n\
               use std::{sync::Mutex, time::Instant};\n";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::D2);
    assert_eq!(diags[0].line, 2);
}

#[test]
fn waiver_reaches_exactly_the_next_line() {
    // The violation sits two lines below the waiver: out of reach. The
    // waiver is stale (W2) and the violation stands (D3).
    let src = "// paperlint: allow(D3) aimed at the wrong line\n\
               pub fn f() {}\n\
               use std::time::Instant;\n";
    let diags = lint(src);
    let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![RuleId::W2, RuleId::D3], "{diags:?}");
    assert_eq!(diags[0].line, 1, "stale waiver reported at the waiver");
    assert_eq!(diags[1].line, 3, "violation still reported at the site");
}

#[test]
fn waiver_does_not_cover_its_own_line() {
    // A trailing waiver on the violating line targets the *next* line:
    // the violation stands and the waiver is stale.
    let src = "use std::time::Instant; // paperlint: allow(D3) same line\n";
    let diags = lint(src);
    let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![RuleId::D3, RuleId::W2], "{diags:?}");
}

#[test]
fn unknown_rule_name_is_an_error() {
    let src = "// paperlint: allow(D42) no such rule\n\
               use std::time::Instant;\n";
    let diags = lint(src);
    let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![RuleId::W1, RuleId::D3], "{diags:?}");
    assert!(diags[0].message.contains("D42"), "{:?}", diags[0]);
}

#[test]
fn meta_rules_are_not_waivable() {
    let src = "// paperlint: allow(W2) trying to waive the waiver police\n\
               pub fn f() {}\n";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::W1);
}

#[test]
fn waiver_without_reason_is_an_error() {
    let src = "// paperlint: allow(D3)\n\
               use std::time::Instant;\n";
    let diags = lint(src);
    let rules: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec![RuleId::W1, RuleId::D3], "{diags:?}");
    assert!(diags[0].message.contains("reason"), "{:?}", diags[0]);
}

#[test]
fn malformed_waiver_is_an_error() {
    let src = "// paperlint: please look away\n\
               pub fn f() {}\n";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::W1);
    assert!(diags[0].message.contains("malformed"), "{:?}", diags[0]);
}

#[test]
fn stale_waiver_is_reported() {
    let src = "// paperlint: allow(D1) this map was removed last refactor\n\
               pub fn f() {}\n";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::W2);
    assert!(diags[0].message.contains("stale"), "{:?}", diags[0]);
}

#[test]
fn duplicate_waivers_leave_the_second_stale() {
    // "Exactly the next line": only the waiver adjacent to the violation
    // suppresses it; the one aimed at the other waiver's line is stale.
    let src = "// paperlint: allow(D3) first\n\
               // paperlint: allow(D3) second\n\
               use std::time::Instant;\n";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RuleId::W2);
    assert_eq!(diags[0].line, 1, "the out-of-reach waiver is the stale one");
}

#[test]
fn doc_comments_describing_waivers_are_inert() {
    // Documentation that *mentions* the syntax must neither waive nor be
    // reported as malformed.
    let src = "//! Write `// paperlint: allow(D3) <reason>` to waive a line.\n\
               /// See also: paperlint: allow(D1) is not a waiver here.\n\
               pub fn f() {}\n";
    let diags = lint(src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn waived_lines_stay_greppable() {
    // The contract the waiver syntax promises: one grep finds every
    // exception in a file, with its reason.
    let src = "// paperlint: allow(D3) measured, not fed back\n\
               use std::time::Instant;\n";
    let hits: Vec<&str> = src
        .lines()
        .filter(|l| l.contains("paperlint: allow"))
        .collect();
    assert_eq!(hits.len(), 1);
    assert!(hits[0].contains("measured"), "reason rides with the waiver");
    assert!(lint(src).is_empty());
}
