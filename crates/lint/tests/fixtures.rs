//! Fixture-based self-tests: every rule has a violating fixture it
//! demonstrably catches and a clean fixture (with near-misses) it
//! demonstrably does not.
//!
//! Fixtures are real `.rs` files under `fixtures/`, linted under a
//! *pseudo-path* that places them in the crate whose rule set is under
//! test — the same path-driven scoping `lint_workspace` uses.

use fba_lint::{lint_source, Config, RuleId};

/// Lints a fixture as if it lived at `pseudo_path`.
fn lint(pseudo_path: &str, source: &str) -> Vec<fba_lint::Diagnostic> {
    lint_source(pseudo_path, source, &Config::default())
}

/// Asserts the fixture trips `rule` (and nothing else) at the given path.
fn assert_catches(rule: RuleId, pseudo_path: &str, source: &str) {
    let diags = lint(pseudo_path, source);
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "{rule} fixture at {pseudo_path} must be caught; got {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.rule == rule),
        "{rule} fixture must trip only {rule}; got {diags:?}"
    );
}

/// Asserts the fixture is completely clean at the given path.
fn assert_clean(pseudo_path: &str, source: &str) {
    let diags = lint(pseudo_path, source);
    assert!(
        diags.is_empty(),
        "expected clean at {pseudo_path}: {diags:?}"
    );
}

#[test]
fn d1_randomized_hasher_containers() {
    let path = "crates/core/src/fixture.rs";
    assert_catches(RuleId::D1, path, include_str!("../fixtures/d1_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d1_clean.rs"));
}

#[test]
fn d1_does_not_bind_bench() {
    // The same container is fine in the (non-deterministic) bench crate.
    assert_clean(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/d1_bad.rs"),
    );
}

#[test]
fn d2_ad_hoc_parallelism() {
    let path = "crates/samplers/src/fixture.rs";
    assert_catches(RuleId::D2, path, include_str!("../fixtures/d2_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d2_clean.rs"));
    // …and the identical code is sanctioned inside the executors.
    assert_clean(
        "crates/exec/src/fixture.rs",
        include_str!("../fixtures/d2_bad.rs"),
    );
}

#[test]
fn d3_wall_clock_reads() {
    let path = "crates/sim/src/fixture.rs";
    assert_catches(RuleId::D3, path, include_str!("../fixtures/d3_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d3_clean.rs"));
    // fba-bench is the timing code: the same read is sanctioned there.
    assert_clean(
        "crates/bench/src/fixture.rs",
        include_str!("../fixtures/d3_bad.rs"),
    );
}

#[test]
fn d4_rng_construction() {
    let path = "crates/baselines/src/fixture.rs";
    assert_catches(RuleId::D4, path, include_str!("../fixtures/d4_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d4_clean.rs"));
    // The seed-split helpers themselves are the sanctioned site.
    assert_clean(
        "crates/sim/src/rng.rs",
        include_str!("../fixtures/d4_bad.rs"),
    );
}

#[test]
fn d5_unsafe_allowlist_and_safety_comments() {
    // Outside the allowlist: unsafe is a violation even with SAFETY.
    assert_catches(
        RuleId::D5,
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/d5_bad_outside.rs"),
    );
    // On the allowlist but unaudited: still a violation.
    assert_catches(
        RuleId::D5,
        "crates/sim/src/tuning.rs",
        include_str!("../fixtures/d5_bad_no_safety.rs"),
    );
    // On the allowlist with the audit comment: clean.
    assert_clean(
        "crates/sim/src/tuning.rs",
        include_str!("../fixtures/d5_clean.rs"),
    );
}

#[test]
fn d6_environment_reads() {
    let path = "crates/scenario/src/fixture.rs";
    assert_catches(RuleId::D6, path, include_str!("../fixtures/d6_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d6_clean.rs"));
    // The engine's FBA_BATCH site is sanctioned.
    assert_clean(
        "crates/sim/src/engine.rs",
        include_str!("../fixtures/d6_bad.rs"),
    );
}

#[test]
fn d7_print_macros_in_library_code() {
    let path = "crates/ae/src/fixture.rs";
    assert_catches(RuleId::D7, path, include_str!("../fixtures/d7_bad.rs"));
    assert_clean(path, include_str!("../fixtures/d7_clean.rs"));
    // Binaries own their stdout.
    assert_clean(
        "crates/bench/src/bin/fixture.rs",
        include_str!("../fixtures/d7_bad.rs"),
    );
}

#[test]
fn violations_inside_cfg_test_modules_are_out_of_scope() {
    // The suite samples; the lint binds shipped code. A test module may
    // use whatever the test needs.
    let src = "pub fn live() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   use std::collections::HashMap;\n\
                   use std::time::Instant;\n\
                   #[test]\n\
                   fn t() { let _ = (HashMap::<u32, u32>::new(), Instant::now()); }\n\
               }\n";
    assert_clean("crates/core/src/fixture.rs", src);
}
