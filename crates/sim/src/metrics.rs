//! Per-run communication and time accounting.
//!
//! The paper evaluates protocols on two metrics (§2.1):
//!
//! * **Time complexity** — number of steps before all correct nodes return
//!   an agreement value.
//! * **Communication complexity** — total exchanged bits divided by the
//!   number of nodes ("amortized" over nodes, not time).
//!
//! [`Metrics`] records both, per node, and additionally exposes the
//! *load-balance* view needed for Figure 1a's "Load-Balanced" row: AER
//! deliberately relaxes load-balancing, so its max-node load can grow much
//! faster than its mean load.

use std::collections::BTreeSet;

use crate::ids::{NodeId, Step};

/// Aggregated statistics over a per-node quantity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSummary {
    /// Largest per-node value.
    pub max: u64,
    /// Mean per-node value.
    pub mean: f64,
    /// `max / mean`; 1.0 means perfectly balanced. Defined as 0 when the
    /// mean is 0.
    pub imbalance: f64,
}

impl LoadSummary {
    fn from_values(values: impl Iterator<Item = u64>) -> Self {
        let mut max = 0u64;
        let mut sum = 0u128;
        let mut count = 0u64;
        for v in values {
            max = max.max(v);
            sum += u128::from(v);
            count += 1;
        }
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        let imbalance = if mean == 0.0 { 0.0 } else { max as f64 / mean };
        LoadSummary {
            max,
            mean,
            imbalance,
        }
    }
}

/// Communication and decision accounting for one simulated run.
///
/// The corrupt set is borrowed at construction and stored as a membership
/// mask: per-node `O(1)` corruption checks on the metric paths, and no
/// clone of the caller's set (the engine keeps ownership for
/// [`crate::RunOutcome::corrupt`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metrics {
    n: usize,
    corrupt_mask: Vec<bool>,
    corrupt_count: usize,
    msgs_sent: Vec<u64>,
    bits_sent: Vec<u64>,
    msgs_recv: Vec<u64>,
    bits_recv: Vec<u64>,
    decided_at: Vec<Option<Step>>,
    msgs_dropped: u64,
    /// Step at which the run stopped (last executed step).
    pub steps: Step,
}

impl Metrics {
    /// Creates empty metrics for a system of `n` nodes with the given
    /// corrupt set (borrowed; out-of-range ids are ignored).
    #[must_use]
    pub fn new(n: usize, corrupt: &BTreeSet<NodeId>) -> Self {
        let mut corrupt_mask = vec![false; n];
        let mut corrupt_count = 0;
        for id in corrupt {
            if id.index() < n && !corrupt_mask[id.index()] {
                corrupt_mask[id.index()] = true;
                corrupt_count += 1;
            }
        }
        Metrics {
            n,
            corrupt_mask,
            corrupt_count,
            msgs_sent: vec![0; n],
            bits_sent: vec![0; n],
            msgs_recv: vec![0; n],
            bits_recv: vec![0; n],
            decided_at: vec![None; n],
            msgs_dropped: 0,
            steps: 0,
        }
    }

    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `node` is in this run's corrupt set.
    #[must_use]
    pub fn is_corrupt(&self, node: NodeId) -> bool {
        self.corrupt_mask[node.index()]
    }

    /// Size of this run's corrupt set.
    #[must_use]
    pub fn corrupt_count(&self) -> usize {
        self.corrupt_count
    }

    /// Records one sent message of `bits` total wire bits.
    pub fn record_send(&mut self, from: NodeId, bits: u64) {
        self.msgs_sent[from.index()] += 1;
        self.bits_sent[from.index()] += bits;
    }

    /// Records `count` identical sent messages of `bits_per_msg` total
    /// wire bits each — the batched-delivery accounting path. A batch of
    /// `k` messages counts exactly like `k` [`Metrics::record_send`]
    /// calls: batching is wire framing, not a metrics discount.
    pub fn record_send_run(&mut self, from: NodeId, count: u64, bits_per_msg: u64) {
        self.msgs_sent[from.index()] += count;
        self.bits_sent[from.index()] += count * bits_per_msg;
    }

    /// Records one delivered message of `bits` total wire bits.
    pub fn record_recv(&mut self, to: NodeId, bits: u64) {
        self.msgs_recv[to.index()] += 1;
        self.bits_recv[to.index()] += bits;
    }

    /// Records `count` logical messages dropped by the network — the
    /// crash fault family's accounting: deliveries whose sender or
    /// recipient was dark at delivery time never reach `record_recv` and
    /// land here instead. Always 0 in runs without crash outages.
    pub fn record_dropped(&mut self, count: u64) {
        self.msgs_dropped += count;
    }

    /// Total logical messages dropped on dark-node edges.
    #[must_use]
    pub fn msgs_dropped(&self) -> u64 {
        self.msgs_dropped
    }

    /// Records the step at which a node first produced an output. Later
    /// calls for the same node are ignored.
    pub fn record_decision(&mut self, node: NodeId, step: Step) {
        let slot = &mut self.decided_at[node.index()];
        if slot.is_none() {
            *slot = Some(step);
        }
    }

    /// Step at which `node` decided, if it did.
    #[must_use]
    pub fn decided_at(&self, node: NodeId) -> Option<Step> {
        self.decided_at[node.index()]
    }

    /// The step by which *all* correct nodes had decided, i.e. the paper's
    /// time-complexity metric. `None` if some correct node never decided.
    #[must_use]
    pub fn all_correct_decided_at(&self) -> Option<Step> {
        let mut latest = 0;
        for id in self.correct_ids() {
            match self.decided_at[id.index()] {
                Some(s) => latest = latest.max(s),
                None => return None,
            }
        }
        Some(latest)
    }

    /// The step by which a `q` fraction (`0 < q ≤ 1`) of correct nodes had
    /// decided; `None` if fewer than that fraction ever decided.
    ///
    /// Timing experiments report quantiles because a handful of
    /// finite-size stragglers (or strict-mode casualties) would otherwise
    /// turn every measurement into `∞`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    #[must_use]
    pub fn decided_quantile(&self, q: f64) -> Option<Step> {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        let mut steps: Vec<Step> = self
            .correct_ids()
            .filter_map(|id| self.decided_at[id.index()])
            .collect();
        let correct = self.correct_ids().count();
        let need = ((correct as f64) * q).ceil() as usize;
        if steps.len() < need || need == 0 {
            return None;
        }
        steps.sort_unstable();
        Some(steps[need - 1])
    }

    /// Fraction of correct nodes that decided.
    #[must_use]
    pub fn decided_fraction(&self) -> f64 {
        let correct = self.correct_ids().count();
        if correct == 0 {
            return 0.0;
        }
        let decided = self
            .correct_ids()
            .filter(|id| self.decided_at[id.index()].is_some())
            .count();
        decided as f64 / correct as f64
    }

    fn correct_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n)
            .map(NodeId::from_index)
            .filter(move |id| !self.corrupt_mask[id.index()])
    }

    /// Total bits sent by correct nodes.
    ///
    /// The paper's communication complexity counts bits exchanged *by the
    /// protocol*; Byzantine traffic is unbounded by definition and filtered
    /// by recipients, so correct-node totals are the meaningful quantity
    /// (see Lemma 3's phrasing "messages sent by any good node").
    #[must_use]
    pub fn correct_bits_sent(&self) -> u64 {
        self.correct_ids()
            .map(|id| self.bits_sent[id.index()])
            .sum()
    }

    /// Total messages sent by correct nodes.
    #[must_use]
    pub fn correct_msgs_sent(&self) -> u64 {
        self.correct_ids()
            .map(|id| self.msgs_sent[id.index()])
            .sum()
    }

    /// Total bits sent by all nodes, including Byzantine ones.
    #[must_use]
    pub fn total_bits_sent(&self) -> u64 {
        self.bits_sent.iter().sum()
    }

    /// Total messages sent by all nodes, including Byzantine ones.
    #[must_use]
    pub fn total_msgs_sent(&self) -> u64 {
        self.msgs_sent.iter().sum()
    }

    /// Amortized communication complexity: correct-node bits divided by `n`.
    #[must_use]
    pub fn amortized_bits(&self) -> f64 {
        self.correct_bits_sent() as f64 / self.n.max(1) as f64
    }

    /// Bits sent by one node.
    #[must_use]
    pub fn bits_sent_by(&self, node: NodeId) -> u64 {
        self.bits_sent[node.index()]
    }

    /// Messages sent by one node.
    #[must_use]
    pub fn msgs_sent_by(&self, node: NodeId) -> u64 {
        self.msgs_sent[node.index()]
    }

    /// Bits received by one node.
    #[must_use]
    pub fn bits_recv_by(&self, node: NodeId) -> u64 {
        self.bits_recv[node.index()]
    }

    /// Messages received by one node.
    #[must_use]
    pub fn msgs_recv_by(&self, node: NodeId) -> u64 {
        self.msgs_recv[node.index()]
    }

    /// Load summary of bits *sent* across correct nodes.
    #[must_use]
    pub fn sent_load(&self) -> LoadSummary {
        LoadSummary::from_values(self.correct_ids().map(|id| self.bits_sent[id.index()]))
    }

    /// Load summary of bits *received* across correct nodes.
    ///
    /// Receive-side load is where AER gives up load-balancing: the adversary
    /// can concentrate verification work on a few victims (§1, "AER is not
    /// load-balanced").
    #[must_use]
    pub fn recv_load(&self) -> LoadSummary {
        LoadSummary::from_values(self.correct_ids().map(|id| self.bits_recv[id.index()]))
    }

    /// Load summary of messages received across correct nodes.
    #[must_use]
    pub fn recv_msg_load(&self) -> LoadSummary {
        LoadSummary::from_values(self.correct_ids().map(|id| self.msgs_recv[id.index()]))
    }

    /// Number of correct nodes that decided in this run.
    #[must_use]
    pub fn decided_count(&self) -> u64 {
        self.correct_ids()
            .filter(|id| self.decided_at[id.index()].is_some())
            .count() as u64
    }
}

/// Run-cumulative accounting across a *sequence* of engine instances.
///
/// [`Metrics`] is deliberately a per-instance view: every engine run
/// constructs a fresh one, so `decided_fraction`, per-node loads, and
/// msgs/bits always describe exactly one agreement instance. Service
/// (chained agreement) runs need the complementary cumulative view — this
/// type absorbs one `Metrics` per finished instance and keeps only sums,
/// so nothing is ever double-counted: `absorb` is called exactly once per
/// instance and the per-instance views stay untouched.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsTotals {
    instances: u64,
    decided_instances: u64,
    decisions: u64,
    msgs_sent: u64,
    bits_sent: u64,
    correct_msgs_sent: u64,
    correct_bits_sent: u64,
    steps: Step,
}

impl MetricsTotals {
    /// Creates empty totals (no instances absorbed yet).
    #[must_use]
    pub fn new() -> Self {
        MetricsTotals::default()
    }

    /// Folds one finished instance's metrics into the running totals.
    pub fn absorb(&mut self, m: &Metrics) {
        self.instances += 1;
        if m.all_correct_decided_at().is_some() {
            self.decided_instances += 1;
        }
        self.decisions += m.decided_count();
        self.msgs_sent += m.total_msgs_sent();
        self.bits_sent += m.total_bits_sent();
        self.correct_msgs_sent += m.correct_msgs_sent();
        self.correct_bits_sent += m.correct_bits_sent();
        self.steps += m.steps;
    }

    /// Number of instances absorbed.
    #[must_use]
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Instances in which *every* correct node decided.
    #[must_use]
    pub fn decided_instances(&self) -> u64 {
        self.decided_instances
    }

    /// Total per-node decisions across all instances.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Total messages sent across all instances (all nodes).
    #[must_use]
    pub fn total_msgs_sent(&self) -> u64 {
        self.msgs_sent
    }

    /// Total bits sent across all instances (all nodes).
    #[must_use]
    pub fn total_bits_sent(&self) -> u64 {
        self.bits_sent
    }

    /// Total messages sent by correct nodes across all instances.
    #[must_use]
    pub fn correct_msgs_sent(&self) -> u64 {
        self.correct_msgs_sent
    }

    /// Total bits sent by correct nodes across all instances.
    #[must_use]
    pub fn correct_bits_sent(&self) -> u64 {
        self.correct_bits_sent
    }

    /// Total engine steps executed across all instances.
    #[must_use]
    pub fn steps(&self) -> Step {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn send_recv_accounting() {
        let mut m = Metrics::new(3, &BTreeSet::new());
        m.record_send(id(0), 100);
        m.record_send(id(0), 50);
        m.record_recv(id(1), 100);
        assert_eq!(m.bits_sent_by(id(0)), 150);
        assert_eq!(m.msgs_sent_by(id(0)), 2);
        assert_eq!(m.bits_recv_by(id(1)), 100);
        assert_eq!(m.msgs_recv_by(id(1)), 1);
        assert_eq!(m.total_bits_sent(), 150);
        assert_eq!(m.total_msgs_sent(), 2);
    }

    #[test]
    fn send_run_counts_like_k_individual_sends() {
        // Batching is wire framing, not a metrics discount: a run of k
        // identical messages must account exactly like k single sends.
        let mut batched = Metrics::new(2, &BTreeSet::new());
        batched.record_send_run(id(0), 5, 32);
        let mut single = Metrics::new(2, &BTreeSet::new());
        for _ in 0..5 {
            single.record_send(id(0), 32);
        }
        assert_eq!(batched.msgs_sent_by(id(0)), single.msgs_sent_by(id(0)));
        assert_eq!(batched.bits_sent_by(id(0)), single.bits_sent_by(id(0)));
        assert_eq!(batched.total_msgs_sent(), 5);
        assert_eq!(batched.total_bits_sent(), 5 * 32);
    }

    #[test]
    fn corrupt_traffic_excluded_from_correct_totals() {
        let corrupt: BTreeSet<_> = [id(2)].into_iter().collect();
        let mut m = Metrics::new(3, &corrupt);
        m.record_send(id(0), 10);
        m.record_send(id(2), 1_000_000);
        assert_eq!(m.correct_bits_sent(), 10);
        assert_eq!(m.total_bits_sent(), 1_000_010);
        assert!((m.amortized_bits() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn decision_tracking_keeps_first() {
        let mut m = Metrics::new(2, &BTreeSet::new());
        m.record_decision(id(0), 4);
        m.record_decision(id(0), 9);
        assert_eq!(m.decided_at(id(0)), Some(4));
        assert_eq!(m.all_correct_decided_at(), None);
        m.record_decision(id(1), 7);
        assert_eq!(m.all_correct_decided_at(), Some(7));
    }

    #[test]
    fn all_correct_decided_ignores_corrupt() {
        let corrupt: BTreeSet<_> = [id(1)].into_iter().collect();
        let mut m = Metrics::new(2, &corrupt);
        m.record_decision(id(0), 3);
        assert_eq!(m.all_correct_decided_at(), Some(3));
    }

    #[test]
    fn decided_quantile_and_fraction() {
        let mut m = Metrics::new(4, &BTreeSet::new());
        m.record_decision(id(0), 2);
        m.record_decision(id(1), 5);
        m.record_decision(id(2), 9);
        assert_eq!(m.decided_quantile(0.5), Some(5));
        assert_eq!(m.decided_quantile(0.75), Some(9));
        assert_eq!(m.decided_quantile(1.0), None, "node 3 never decided");
        assert!((m.decided_fraction() - 0.75).abs() < 1e-12);
        m.record_decision(id(3), 11);
        assert_eq!(m.decided_quantile(1.0), Some(11));
        assert_eq!(m.decided_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn decided_quantile_rejects_zero() {
        let m = Metrics::new(2, &BTreeSet::new());
        let _ = m.decided_quantile(0.0);
    }

    #[test]
    fn load_summary_basics() {
        let mut m = Metrics::new(4, &BTreeSet::new());
        m.record_send(id(0), 10);
        m.record_send(id(1), 10);
        m.record_send(id(2), 10);
        m.record_send(id(3), 70);
        let s = m.sent_load();
        assert_eq!(s.max, 70);
        assert!((s.mean - 25.0).abs() < 1e-12);
        assert!((s.imbalance - 2.8).abs() < 1e-12);
    }

    #[test]
    fn load_summary_zero_traffic() {
        let m = Metrics::new(4, &BTreeSet::new());
        let s = m.recv_load();
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.imbalance, 0.0);
    }

    #[test]
    fn totals_sum_instances_without_double_counting() {
        let corrupt: BTreeSet<_> = [id(2)].into_iter().collect();
        let mut a = Metrics::new(3, &corrupt);
        a.record_send(id(0), 10);
        a.record_send(id(2), 1000); // corrupt traffic
        a.record_decision(id(0), 2);
        a.record_decision(id(1), 3);
        a.steps = 5;
        let mut b = Metrics::new(3, &corrupt);
        b.record_send(id(1), 7);
        b.record_recv(id(0), 7);
        b.record_decision(id(0), 1);
        b.steps = 4;

        let mut totals = MetricsTotals::new();
        totals.absorb(&a);
        totals.absorb(&b);

        assert_eq!(totals.instances(), 2);
        // Instance a fully decided (both correct nodes); b did not.
        assert_eq!(totals.decided_instances(), 1);
        assert_eq!(totals.decisions(), 3);
        assert_eq!(
            totals.total_msgs_sent(),
            a.total_msgs_sent() + b.total_msgs_sent()
        );
        assert_eq!(
            totals.total_bits_sent(),
            a.total_bits_sent() + b.total_bits_sent()
        );
        assert_eq!(
            totals.correct_bits_sent(),
            a.correct_bits_sent() + b.correct_bits_sent()
        );
        assert_eq!(totals.correct_bits_sent(), 17, "corrupt bits excluded");
        assert_eq!(totals.steps(), 9);
        // Absorbing never mutates the per-instance views.
        assert_eq!(a.total_bits_sent(), 1010);
        assert!((a.decided_fraction() - 1.0).abs() < 1e-12);
        assert!((b.decided_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_totals_are_all_zero() {
        let t = MetricsTotals::new();
        assert_eq!(t.instances(), 0);
        assert_eq!(t.decided_instances(), 0);
        assert_eq!(t.decisions(), 0);
        assert_eq!(t.total_msgs_sent(), 0);
        assert_eq!(t.correct_msgs_sent(), 0);
        assert_eq!(t.steps(), 0);
    }
}
