//! Deterministic randomness derivation.
//!
//! The paper's model gives each node a *private* random number generator,
//! while samplers are built from *public* randomness shared by every node.
//! Both are derived here from a single master seed so that a run is a pure
//! function of `(master_seed, configuration)` — the property every test and
//! every experiment in this repository relies on for replay.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// Domain-separation tag for per-node private RNGs.
pub const TAG_NODE: u64 = 0x4e4f_4445; // "NODE"
/// Domain-separation tag for the adversary's RNG.
pub const TAG_ADVERSARY: u64 = 0x4144_5645; // "ADVE"
/// Domain-separation tag for public sampler seeds.
pub const TAG_SAMPLER: u64 = 0x5341_4d50; // "SAMP"
/// Domain-separation tag for workload/input generation.
pub const TAG_WORKLOAD: u64 = 0x574f_524b; // "WORK"
/// Domain-separation tag for per-instance seeds in service (chained
/// agreement) runs.
pub const TAG_SERVICE: u64 = 0x5345_5256; // "SERV"
/// Domain-separation tag for crash-schedule node sampling (the
/// crash–restart fault family in `fba-recovery`).
pub const TAG_CRASH: u64 = 0x4352_5348; // "CRSH"

/// The `splitmix64` mixing function (Steele, Lea, Flood 2014).
///
/// A full-avalanche 64-bit permutation used to fold seed tags together. It
/// is the same finalizer `rand` uses for `seed_from_u64`, reproduced here so
/// multi-tag derivation is stable regardless of `rand` internals.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds a master seed and a sequence of stream tags into one 64-bit seed.
///
/// Distinct tag sequences yield (with overwhelming probability) independent
/// streams; identical sequences always yield the same stream.
#[must_use]
pub fn mix(master: u64, tags: &[u64]) -> u64 {
    let mut acc = splitmix64(master);
    for &t in tags {
        acc = splitmix64(acc ^ splitmix64(t));
    }
    acc
}

/// Derives a deterministic ChaCha RNG from a master seed and stream tags.
///
/// ```
/// use fba_sim::rng::{derive_rng, TAG_NODE};
/// use rand::RngCore;
///
/// let mut a = derive_rng(42, &[TAG_NODE, 7]);
/// let mut b = derive_rng(42, &[TAG_NODE, 7]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[must_use]
pub fn derive_rng(master: u64, tags: &[u64]) -> ChaCha12Rng {
    ChaCha12Rng::seed_from_u64(mix(master, tags))
}

/// Derives the private RNG of node `index` for a given run.
#[must_use]
pub fn node_rng(master: u64, index: usize) -> ChaCha12Rng {
    derive_rng(master, &[TAG_NODE, index as u64])
}

/// Derives the master seed of instance `k` in a service (chained
/// agreement) run with the given service seed.
///
/// Instance 0 *is* the service seed: a 1-instance service run replays the
/// corresponding standalone run bit for bit (the service equivalence
/// contract in `tests/scenario_equivalence.rs` depends on this). Later
/// instances get independent derived streams.
#[must_use]
pub fn instance_seed(service_seed: u64, k: usize) -> u64 {
    if k == 0 {
        service_seed
    } else {
        mix(service_seed, &[TAG_SERVICE, k as u64])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn splitmix_is_not_identity_and_is_deterministic() {
        assert_ne!(splitmix64(0), 0);
        assert_eq!(splitmix64(123), splitmix64(123));
        assert_ne!(splitmix64(123), splitmix64(124));
    }

    #[test]
    fn mix_depends_on_every_tag() {
        let base = mix(1, &[2, 3]);
        assert_ne!(base, mix(1, &[2, 4]));
        assert_ne!(base, mix(1, &[3, 2]));
        assert_ne!(base, mix(2, &[2, 3]));
        assert_eq!(base, mix(1, &[2, 3]));
    }

    #[test]
    fn mix_of_empty_tags_still_mixes_master() {
        assert_ne!(mix(0, &[]), 0);
        assert_ne!(mix(1, &[]), mix(2, &[]));
    }

    #[test]
    fn derived_rngs_are_reproducible() {
        let mut a = derive_rng(7, &[TAG_SAMPLER, 1]);
        let mut b = derive_rng(7, &[TAG_SAMPLER, 1]);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = derive_rng(7, &[TAG_NODE, 0]);
        let mut b = derive_rng(7, &[TAG_NODE, 1]);
        // Equality of a single draw would be a 2^-64 coincidence.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn node_rng_matches_manual_derivation() {
        let mut a = node_rng(99, 5);
        let mut b = derive_rng(99, &[TAG_NODE, 5]);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn instance_zero_is_the_service_seed() {
        assert_eq!(instance_seed(42, 0), 42);
        assert_eq!(instance_seed(7, 0), 7);
    }

    #[test]
    fn later_instances_get_independent_seeds() {
        let s1 = instance_seed(42, 1);
        let s2 = instance_seed(42, 2);
        assert_ne!(s1, 42);
        assert_ne!(s1, s2);
        // Deterministic and distinct across service seeds.
        assert_eq!(s1, instance_seed(42, 1));
        assert_ne!(s1, instance_seed(43, 1));
    }
}
