//! The deterministic discrete-event execution engine.
//!
//! One engine serves both of the paper's timing models:
//!
//! * **Synchronous** (`max_delay = 1`): a message sent during step `r` is
//!   delivered during step `r + 1`, deliveries are processed in send order.
//! * **Asynchronous** (`max_delay ≥ 1` plus an adversary that overrides
//!   [`Adversary::delay`] / [`Adversary::priority`]): the adversary picks
//!   per-message delays (clamped, so delivery stays reliable) and reorders
//!   deliveries within a step. Normalized asynchronous time is then the
//!   step counter.
//!
//! Executions are pure functions of `(config, master_seed, adversary,
//! protocol factory)`: every collection iterated is ordered and every random
//! draw comes from seed-derived ChaCha streams.

use std::collections::{BTreeMap, BTreeSet};

use rand_chacha::ChaCha12Rng;

use crate::adversary::{Adversary, Outbox};
use crate::calendar::CalendarQueue;
use crate::crash::CrashPlan;
use crate::ids::{ceil_log2, NodeId, Step};
use crate::message::{Batch, BatchBuffers, Delivery, Envelope, WireSize};
use crate::metrics::Metrics;
use crate::observer::{FinalInspect, NullObserver, Observer};
use crate::protocol::{Context, Protocol};
use crate::rng::{derive_rng, node_rng, TAG_ADVERSARY};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// System size `n`.
    pub n: usize,
    /// Hard cap on executed steps; runs that exceed it report undecided
    /// nodes rather than looping forever.
    pub max_steps: Step,
    /// Maximum delivery delay the adversary may impose (`1` = synchronous
    /// timing). Reliability: every message is delivered within `max_delay`
    /// steps of being sent.
    pub max_delay: Step,
    /// After all correct nodes have decided, keep delivering pending
    /// messages (and any correct responses to them) for up to this many
    /// extra steps, so post-decision service traffic is counted. The
    /// adversary no longer acts during draining.
    pub drain_steps: Step,
    /// Record every envelope sent, for trace-style experiments (Fig. 2a/2b).
    /// Costs memory; leave off for sweeps.
    pub record_transcript: bool,
    /// Per-message header bits; defaults to `2·⌈log₂ n⌉` (sender +
    /// recipient identity) when `None`.
    pub header_bits: Option<u64>,
    /// Coalesce each callback's sends into one batched delivery (one
    /// header + run-length-encoded payloads) instead of per-message
    /// envelopes. Purely a memory/throughput optimisation: runs are
    /// bit-identical either way (pinned by the equivalence tests).
    /// Defaults from the `FBA_BATCH` environment variable (`0` disables;
    /// anything else, or unset, enables) — the bisecting escape hatch.
    pub batch: bool,
    /// Upper bound on logical messages per batch; `None` means a batch
    /// spans its whole callback outbox. A testing/bisecting knob — the
    /// equivalence proptests randomise it to pin that batch boundaries
    /// never change outcomes.
    pub batch_limit: Option<usize>,
    /// Crash–restart outage plan. `None` (the default) and an empty plan
    /// are the same no-fault fast path and execute bit-identically; with
    /// outages present, the named nodes go dark over their windows (see
    /// [`CrashPlan`] and the crate-level determinism contract).
    pub crash: Option<CrashPlan>,
}

impl EngineConfig {
    /// A synchronous configuration with sensible defaults for system size
    /// `n`: `max_delay = 1`, generous step cap, short drain.
    #[must_use]
    pub fn sync(n: usize) -> Self {
        EngineConfig {
            n,
            max_steps: 10_000,
            max_delay: 1,
            drain_steps: 64,
            record_transcript: false,
            header_bits: None,
            batch: batch_env_default(),
            batch_limit: None,
            crash: None,
        }
    }

    /// An asynchronous configuration: the adversary may delay messages up
    /// to `max_delay` steps and reorder within steps.
    #[must_use]
    pub fn asynchronous(n: usize, max_delay: Step) -> Self {
        EngineConfig {
            max_delay: max_delay.max(1),
            ..EngineConfig::sync(n)
        }
    }

    /// Effective header bits.
    #[must_use]
    pub fn effective_header_bits(&self) -> u64 {
        self.header_bits
            .unwrap_or_else(|| 2 * u64::from(ceil_log2(self.n)))
    }
}

/// The `FBA_BATCH` environment default for [`EngineConfig::batch`]:
/// batching is on unless the variable is set to exactly `0`.
#[must_use]
pub fn batch_env_default() -> bool {
    std::env::var("FBA_BATCH").map_or(true, |v| v != "0")
}

/// Reusable engine scratch state: the pending-delivery calendar plus every
/// per-step buffer of the run loop.
///
/// One-shot entry points ([`run`], [`run_observed`]) construct a fresh
/// session internally. Service (chained agreement) runs construct one
/// session and thread it through consecutive [`run_session`] calls so the
/// calendar ring and the send/delivery/batch buffers keep their
/// allocations across instance boundaries. Reuse is outcome-invariant:
/// every buffer is emptied at the start of a run (capacity is invisible to
/// protocol logic) and the calendar starts a fresh epoch via
/// [`CalendarQueue::reset`].
#[derive(Debug)]
pub struct EngineSession<M> {
    pending: CalendarQueue<Delivery<M>>,
    sends: Vec<Delivery<M>>,
    outbox_buf: Vec<(NodeId, M)>,
    due: Vec<Delivery<M>>,
    sched_buf: Vec<(Step, i64)>,
    flat: Vec<Envelope<M>>,
    pool: Vec<BatchBuffers<M>>,
}

impl<M> EngineSession<M> {
    /// Creates an empty session for delivery delays up to `max_delay`.
    /// The horizon is adjusted automatically by each run, so the argument
    /// only pre-sizes the calendar ring.
    ///
    /// # Panics
    ///
    /// Panics if `max_delay == 0`.
    #[must_use]
    pub fn new(max_delay: Step) -> Self {
        EngineSession {
            pending: CalendarQueue::new(max_delay),
            sends: Vec::new(),
            outbox_buf: Vec::new(),
            due: Vec::new(),
            sched_buf: Vec::new(),
            flat: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Empties every buffer (keeping capacity) and restarts the calendar
    /// epoch for a run with the given delay horizon.
    fn begin(&mut self, max_delay: Step) {
        self.pending.reset(max_delay);
        self.sends.clear();
        self.outbox_buf.clear();
        self.due.clear();
        self.sched_buf.clear();
        self.flat.clear();
        // `pool` buffers are cleared on reuse by `Batch::from_buffers`.
    }
}

impl<M> Default for EngineSession<M> {
    fn default() -> Self {
        EngineSession::new(1)
    }
}

/// Everything a finished run exposes.
#[derive(Clone, Debug)]
pub struct RunOutcome<O, M> {
    /// Communication/time accounting.
    pub metrics: Metrics,
    /// Output of every correct node that decided.
    pub outputs: BTreeMap<NodeId, O>,
    /// The corrupt set the adversary chose.
    pub corrupt: BTreeSet<NodeId>,
    /// Step at which the last correct node decided (the paper's time
    /// metric), or `None` if some correct node never decided.
    pub all_decided_at: Option<Step>,
    /// Whether the network fully quiesced before the step cap.
    pub quiescent: bool,
    /// Every envelope sent, if `record_transcript` was set.
    pub transcript: Vec<Envelope<M>>,
}

impl<O: Clone + Eq, M> RunOutcome<O, M> {
    /// Whether every correct node decided.
    #[must_use]
    pub fn all_decided(&self) -> bool {
        self.all_decided_at.is_some()
    }

    /// Whether every correct node that decided output the same value, and
    /// at least one decided. The core agreement check used by tests.
    #[must_use]
    pub fn unanimous(&self) -> Option<&O> {
        let mut iter = self.outputs.values();
        let first = iter.next()?;
        for v in iter {
            if v != first {
                return None;
            }
        }
        Some(first)
    }
}

/// Runs a protocol to completion under the given adversary.
///
/// `factory(id)` builds the state machine for each *correct* node; corrupt
/// nodes are played by `adversary`. See the crate docs for the step
/// structure.
///
/// # Panics
///
/// Panics if the adversary corrupts an out-of-range node id, or on internal
/// invariant violations (which indicate bugs, not run conditions).
pub fn run<P, A, F>(
    cfg: &EngineConfig,
    master_seed: u64,
    adversary: &mut A,
    factory: F,
) -> RunOutcome<P::Output, P::Msg>
where
    P: Protocol,
    A: Adversary<P::Msg> + ?Sized,
    F: FnMut(NodeId) -> P,
{
    run_observed(cfg, master_seed, adversary, factory, &mut NullObserver)
}

/// Like [`run`], but additionally calls `inspect(id, &state)` for every
/// surviving correct node once the run ends — the hook experiments use to
/// read protocol-internal state (e.g. candidate-list sizes for the
/// paper's Lemma 4). Equivalent to [`run_observed`] with a
/// [`FinalInspect`] sink.
///
/// # Panics
///
/// Same conditions as [`run`].
pub fn run_inspect<P, A, F, I>(
    cfg: &EngineConfig,
    master_seed: u64,
    adversary: &mut A,
    factory: F,
    inspect: I,
) -> RunOutcome<P::Output, P::Msg>
where
    P: Protocol,
    A: Adversary<P::Msg> + ?Sized,
    F: FnMut(NodeId) -> P,
    I: FnMut(NodeId, &P),
{
    run_observed(
        cfg,
        master_seed,
        adversary,
        factory,
        &mut FinalInspect(inspect),
    )
}

/// Like [`run`], but drives a read-only [`Observer`] alongside the
/// execution: per-step send views, per-decision events, and final node
/// states (see the [`crate::observer`] module docs). Observers cannot
/// influence the run, so for any observer the returned outcome is
/// bit-identical to [`run`] with the same inputs.
///
/// # Panics
///
/// Same conditions as [`run`].
pub fn run_observed<P, A, F, O>(
    cfg: &EngineConfig,
    master_seed: u64,
    adversary: &mut A,
    factory: F,
    observer: &mut O,
) -> RunOutcome<P::Output, P::Msg>
where
    P: Protocol,
    A: Adversary<P::Msg> + ?Sized,
    F: FnMut(NodeId) -> P,
    O: Observer<P> + ?Sized,
{
    let mut session = EngineSession::new(cfg.max_delay.max(1));
    run_session(
        cfg,
        master_seed,
        master_seed,
        adversary,
        factory,
        observer,
        &mut session,
    )
}

/// The fully general engine entry point: like [`run_observed`], but with
/// the adversary's corruption draw decoupled from the run's master seed
/// and the scratch state supplied by the caller.
///
/// * `adversary_seed` seeds the RNG handed to [`Adversary::corrupt`].
///   Passing `master_seed` (what every one-shot entry point does)
///   reproduces [`run_observed`] exactly. Service runs pass the *service*
///   seed for every instance so the same non-adaptive coalition persists
///   while node randomness and workloads vary per instance.
/// * `session` provides the calendar and per-step buffers; reusing one
///   session across runs keeps allocations warm and is bit-identical to
///   fresh construction (see [`EngineSession`]).
///
/// # Panics
///
/// Same conditions as [`run`].
pub fn run_session<P, A, F, O>(
    cfg: &EngineConfig,
    master_seed: u64,
    adversary_seed: u64,
    adversary: &mut A,
    mut factory: F,
    observer: &mut O,
    session: &mut EngineSession<P::Msg>,
) -> RunOutcome<P::Output, P::Msg>
where
    P: Protocol,
    A: Adversary<P::Msg> + ?Sized,
    F: FnMut(NodeId) -> P,
    O: Observer<P> + ?Sized,
{
    let n = cfg.n;
    let header_bits = cfg.effective_header_bits();

    let mut adv_rng: ChaCha12Rng = derive_rng(adversary_seed, &[TAG_ADVERSARY]);
    let corrupt = adversary.corrupt(n, &mut adv_rng);
    assert!(
        corrupt.iter().all(|id| id.index() < n),
        "adversary corrupted out-of-range node"
    );

    let mut nodes: Vec<Option<P>> = (0..n)
        .map(|i| {
            let id = NodeId::from_index(i);
            if corrupt.contains(&id) {
                None
            } else {
                Some(factory(id))
            }
        })
        .collect();
    let mut rngs: Vec<ChaCha12Rng> = (0..n).map(|i| node_rng(master_seed, i)).collect();

    let mut metrics = Metrics::new(n, &corrupt);
    let mut outputs: BTreeMap<NodeId, P::Output> = BTreeMap::new();
    let mut decided = vec![false; n];
    // Corrupt nodes count as "decided" for the stop condition.
    for id in &corrupt {
        decided[id.index()] = true;
    }
    let mut undecided = n - corrupt.len();

    let max_delay = cfg.max_delay.max(1);
    let mut transcript: Vec<Envelope<P::Msg>> = Vec::new();

    // Calendar plus per-step scratch buffers, reused across the whole run
    // (and, through a shared session, across chained instances). `flat` is
    // the per-envelope view of the step's sends, materialised only when
    // someone needs it (rushing view, per-envelope scheduling, observe,
    // observer step view, transcript).
    session.begin(max_delay);
    let EngineSession {
        pending,
        sends,
        outbox_buf,
        due,
        sched_buf,
        flat,
        pool,
    } = session;

    // Crash–restart plan: `None` and an empty plan are the same no-fault
    // fast path. Every dark-window check below is gated on `has_crash`,
    // so fault-free runs execute the exact baseline instruction sequence
    // (the bit-identity pin in `tests/scenario_equivalence.rs`).
    let crash_plan = cfg.crash.as_ref().filter(|p| !p.is_empty());
    let has_crash = crash_plan.is_some();
    if let Some(plan) = crash_plan {
        assert!(
            plan.max_node_index().is_none_or(|i| i < n),
            "crash plan names out-of-range node"
        );
    }
    let mut dark: Vec<bool> = if has_crash {
        vec![false; n]
    } else {
        Vec::new()
    };

    let batching = cfg.batch;
    let batch_limit = cfg.batch_limit;
    let rushing = adversary.rushing();
    let consults = adversary.schedules();
    let observes = adversary.observes();
    let step_view = observer.wants_step_sends();

    let mut all_decided_at: Option<Step> = None;
    let mut drain_started_at: Option<Step> = None;
    let mut quiescent = false;

    let mut step: Step = 0;
    loop {
        let draining = all_decided_at.is_some();
        sends.clear();

        // 0. Crash transitions (crash plans only). Restarts first: a
        //    restarting node gets `on_restart` with a context (it may send
        //    catch-up traffic immediately) and then the step's regular
        //    callback like everyone else. New crashes second: their nodes
        //    miss everything from this step until restart. Crashing a
        //    corrupt node is a no-op — the adversary already plays it.
        if let Some(plan) = crash_plan {
            for outage in plan.outages() {
                if outage.end == step {
                    for &id in outage.nodes() {
                        let i = id.index();
                        if !dark[i] {
                            continue;
                        }
                        dark[i] = false;
                        if let Some(node) = nodes[i].as_mut() {
                            let mut ctx = Context::new(id, n, step, &mut rngs[i], outbox_buf);
                            node.on_restart(&mut ctx);
                            enqueue_outbox(
                                id,
                                step,
                                batching,
                                batch_limit,
                                header_bits,
                                outbox_buf,
                                &mut metrics,
                                pool,
                                sends,
                            );
                        }
                    }
                }
                if outage.start == step {
                    for &id in outage.nodes() {
                        let i = id.index();
                        if let Some(node) = nodes[i].as_mut() {
                            dark[i] = true;
                            node.on_crash(step);
                        }
                    }
                }
            }
        }

        // 1. Per-step protocol callbacks: on_start at step 0, on_step later.
        for i in 0..n {
            if has_crash && dark[i] {
                continue;
            }
            let id = NodeId::from_index(i);
            let Some(node) = nodes[i].as_mut() else {
                continue;
            };
            let mut ctx = Context::new(id, n, step, &mut rngs[i], outbox_buf);
            if step == 0 {
                node.on_start(&mut ctx);
            } else {
                node.on_step(&mut ctx);
            }
            enqueue_outbox(
                id,
                step,
                batching,
                batch_limit,
                header_bits,
                outbox_buf,
                &mut metrics,
                pool,
                sends,
            );
        }

        // 2. Deliveries due this step (scheduled at earlier steps).
        pending.drain_due(step, due);
        for delivery in due.drain(..) {
            match delivery {
                Delivery::One(env) => {
                    if has_crash && (dark[env.from.index()] || dark[env.to.index()]) {
                        metrics.record_dropped(1);
                        continue;
                    }
                    metrics.record_recv(env.to, env.total_bits(header_bits));
                    let i = env.to.index();
                    if let Some(node) = nodes[i].as_mut() {
                        let mut ctx = Context::new(env.to, n, step, &mut rngs[i], outbox_buf);
                        node.on_message(env.from, env.msg, &mut ctx);
                        enqueue_outbox(
                            env.to,
                            step,
                            batching,
                            batch_limit,
                            header_bits,
                            outbox_buf,
                            &mut metrics,
                            pool,
                            sends,
                        );
                    }
                    // Deliveries to corrupt nodes reach the adversary
                    // through `observe`, which sees every envelope anyway.
                }
                Delivery::Batch(batch) => {
                    let from = batch.from;
                    if has_crash && dark[from.index()] {
                        metrics.record_dropped(batch.len() as u64);
                        pool.push(batch.into_buffers());
                        continue;
                    }
                    for (msg, recipients) in batch.runs() {
                        let bits = header_bits + msg.wire_bits();
                        for &to in recipients {
                            if has_crash && dark[to.index()] {
                                metrics.record_dropped(1);
                                continue;
                            }
                            metrics.record_recv(to, bits);
                            let i = to.index();
                            if let Some(node) = nodes[i].as_mut() {
                                let mut ctx = Context::new(to, n, step, &mut rngs[i], outbox_buf);
                                node.on_message(from, msg.clone(), &mut ctx);
                                enqueue_outbox(
                                    to,
                                    step,
                                    batching,
                                    batch_limit,
                                    header_bits,
                                    outbox_buf,
                                    &mut metrics,
                                    pool,
                                    sends,
                                );
                            }
                        }
                    }
                    pool.push(batch.into_buffers());
                }
            }
        }

        // 3. Adversary turn (full information; rushing sees current sends).
        if !draining {
            let rushing_view: Option<&[Envelope<P::Msg>]> = if rushing {
                flatten_into(sends, flat);
                Some(flat)
            } else {
                None
            };
            let mut out = Outbox::new(&corrupt, n);
            adversary.act(step, rushing_view, &mut out);
            // Adversary sends stay un-batched: they may mix senders, and
            // every current strategy emits few enough for framing not to
            // matter. Keeping them as single envelopes also keeps the
            // batched and unbatched arms trivially identical here.
            for (from, to, msg) in out.into_sends() {
                metrics.record_send(from, header_bits + msg.wire_bits());
                sends.push(Delivery::One(Envelope {
                    from,
                    to,
                    sent_at: step,
                    msg,
                }));
            }
        }

        // 4. Schedule every send of this step. A scheduling adversary is
        //    consulted (delay then priority, per logical envelope, in send
        //    order) and then observes the step before anything moves into
        //    the queue, so the call order visible to stateful adversaries
        //    matches the per-envelope engine exactly.
        let consult_now = consults && !draining;
        if consult_now || observes || step_view || cfg.record_transcript {
            flatten_into(sends, flat);
        }
        sched_buf.clear();
        let uniform = if consult_now {
            consult_schedule(adversary, max_delay, flat, sched_buf)
        } else {
            Some(1)
        };
        if observes {
            adversary.observe(step, flat);
        }
        if step_view {
            observer.on_step(step, flat);
        }
        if cfg.record_transcript {
            transcript.extend(flat.iter().cloned());
        }
        commit_schedule(pending, step, uniform, sends, flat, sched_buf, pool);

        // 5. Decision tracking.
        if undecided > 0 {
            for i in 0..n {
                if decided[i] || (has_crash && dark[i]) {
                    continue;
                }
                if let Some(node) = nodes[i].as_ref() {
                    if let Some(out) = node.output() {
                        let id = NodeId::from_index(i);
                        decided[i] = true;
                        undecided -= 1;
                        metrics.record_decision(id, step);
                        observer.on_decision(id, step, &out);
                        outputs.insert(id, out);
                    }
                }
            }
            if undecided == 0 {
                all_decided_at = Some(step);
                drain_started_at = Some(step);
            }
        }

        // 6. Stop conditions.
        metrics.steps = step;
        if let Some(started) = drain_started_at {
            if pending.is_empty() {
                quiescent = true;
                break;
            }
            if step >= started + cfg.drain_steps {
                break;
            }
        }
        if step >= cfg.max_steps {
            break;
        }
        step += 1;
    }

    for (i, node) in nodes.iter().enumerate() {
        if let Some(node) = node {
            observer.on_final(NodeId::from_index(i), node);
        }
    }

    RunOutcome {
        metrics,
        outputs,
        corrupt,
        all_decided_at,
        quiescent,
        transcript,
    }
}

/// Moves one callback's outbox into the step's send list, recording each
/// logical message in `metrics`. With batching on and at least two
/// messages queued, the outbox becomes one (or, under `batch_limit`,
/// several) [`Batch`] deliveries built on recycled buffers from `pool`;
/// otherwise every message ships as its own envelope.
///
/// Public because it is the send half of the step contract every execution
/// backend must honour: the threaded backend (`fba-exec`) enqueues worker
/// outboxes through this exact function so framing, batch boundaries, and
/// send accounting match the calendar engine bit for bit.
#[allow(clippy::too_many_arguments)] // engine-internal plumbing of the step loop's scratch state
pub fn enqueue_outbox<M: Clone + PartialEq + WireSize>(
    from: NodeId,
    step: Step,
    batching: bool,
    batch_limit: Option<usize>,
    header_bits: u64,
    outbox: &mut Vec<(NodeId, M)>,
    metrics: &mut Metrics,
    pool: &mut Vec<BatchBuffers<M>>,
    sends: &mut Vec<Delivery<M>>,
) {
    if outbox.is_empty() {
        return;
    }
    if !batching || outbox.len() == 1 {
        for (to, msg) in outbox.drain(..) {
            metrics.record_send(from, header_bits + msg.wire_bits());
            sends.push(Delivery::One(Envelope {
                from,
                to,
                sent_at: step,
                msg,
            }));
        }
        return;
    }
    let limit = batch_limit.unwrap_or(usize::MAX).max(1);
    let mut batch = Batch::from_buffers(from, step, pool.pop().unwrap_or_default());
    for (to, msg) in outbox.drain(..) {
        if batch.len() >= limit {
            seal_batch(batch, header_bits, metrics, sends);
            batch = Batch::from_buffers(from, step, pool.pop().unwrap_or_default());
        }
        batch.push(to, msg);
    }
    seal_batch(batch, header_bits, metrics, sends);
}

/// Records a finished batch's logical messages and moves it into `sends`.
fn seal_batch<M: Clone + PartialEq + WireSize>(
    batch: Batch<M>,
    header_bits: u64,
    metrics: &mut Metrics,
    sends: &mut Vec<Delivery<M>>,
) {
    for (msg, recipients) in batch.runs() {
        metrics.record_send_run(
            batch.from,
            recipients.len() as u64,
            header_bits + msg.wire_bits(),
        );
    }
    sends.push(Delivery::Batch(batch));
}

/// Consults a scheduling adversary for every logical envelope of the
/// step's flattened send view, in send order: delay (clamped to
/// `[1, max_delay]`) then priority, pushed onto `sched_buf` (which the
/// caller has cleared). Returns `Some(delay)` when every envelope got the
/// same delay at priority 0 — the bulk-lane fast path — and `None` when
/// the schedule is non-uniform and deliveries must be keyed individually.
///
/// Shared verbatim by [`run_session`] and the threaded backend so stateful
/// scheduling adversaries see an identical call sequence on both.
pub fn consult_schedule<M: Clone, A: Adversary<M> + ?Sized>(
    adversary: &mut A,
    max_delay: Step,
    flat: &[Envelope<M>],
    sched_buf: &mut Vec<(Step, i64)>,
) -> Option<Step> {
    let mut uniform: Option<Step> = Some(1);
    for env in flat {
        let delay = adversary.delay(env).clamp(1, max_delay);
        let priority = adversary.priority(env);
        uniform = match uniform {
            Some(d) if priority == 0 && (d == delay || sched_buf.is_empty()) => Some(delay),
            _ => None,
        };
        sched_buf.push((delay, priority));
    }
    uniform
}

/// Moves a step's sends into the pending-delivery calendar. With a uniform
/// schedule (`uniform = Some(delay)`, the common case) one vector swap
/// moves the whole step's sends — batches included — into the ring slot;
/// otherwise deliveries are keyed per envelope from `flat` and `sched_buf`
/// (as filled by [`consult_schedule`]), recycling batch buffers into
/// `pool`. The commit half of the step contract shared with `fba-exec`.
pub fn commit_schedule<M: Clone>(
    pending: &mut CalendarQueue<Delivery<M>>,
    step: Step,
    uniform: Option<Step>,
    sends: &mut Vec<Delivery<M>>,
    flat: &mut Vec<Envelope<M>>,
    sched_buf: &[(Step, i64)],
    pool: &mut Vec<BatchBuffers<M>>,
) {
    match uniform {
        Some(delay) if !sends.is_empty() => pending.schedule_bulk(step, delay, sends),
        _ => {
            for delivery in sends.drain(..) {
                if let Delivery::Batch(batch) = delivery {
                    pool.push(batch.into_buffers());
                }
            }
            for (env, &(delay, priority)) in flat.drain(..).zip(sched_buf.iter()) {
                pending.schedule(step, delay, priority, Delivery::One(env));
            }
        }
    }
}

/// Rebuilds the per-envelope view of a step's sends, in logical send
/// order — what rushing adversaries, schedulers, observers, and the
/// transcript are shown regardless of batching.
pub fn flatten_into<M: Clone>(sends: &[Delivery<M>], flat: &mut Vec<Envelope<M>>) {
    flat.clear();
    for delivery in sends {
        match delivery {
            Delivery::One(env) => flat.push(env.clone()),
            Delivery::Batch(batch) => flat.extend(batch.envelopes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{NoAdversary, SilentAdversary};
    use crate::crash::CrashOutage;

    /// Every node sends a ping to the next node at start; a node decides
    /// once it has received a ping. Purely for engine semantics tests.
    struct Ping {
        id: NodeId,
        n: usize,
        got: Option<NodeId>,
    }

    impl Protocol for Ping {
        type Msg = u64;
        type Output = NodeId;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            let next = NodeId::from_index((self.id.index() + 1) % self.n);
            ctx.send(next, 42);
        }

        fn on_message(&mut self, from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
            assert_eq!(msg, 42);
            self.got = Some(from);
        }

        fn output(&self) -> Option<NodeId> {
            self.got
        }
    }

    fn ping_factory(n: usize) -> impl FnMut(NodeId) -> Ping {
        move |id| Ping { id, n, got: None }
    }

    #[test]
    fn sync_ring_decides_in_one_step() {
        let cfg = EngineConfig::sync(8);
        let out = run::<Ping, _, _>(&cfg, 1, &mut NoAdversary, ping_factory(8));
        assert_eq!(out.all_decided_at, Some(1));
        assert!(out.quiescent);
        assert_eq!(out.outputs.len(), 8);
        // Each node sent exactly one message of header-only size (payload 64 bits).
        assert_eq!(out.metrics.total_msgs_sent(), 8);
        let expected_bits = 8 * (2 * 3 + 64); // header 2*ceil_log2(8)=6 bits + u64
        assert_eq!(out.metrics.total_bits_sent(), expected_bits);
    }

    #[test]
    fn deliveries_never_arrive_same_step() {
        // With max_delay=1 the ping sent at step 0 must arrive at step 1,
        // so no node may decide at step 0.
        let cfg = EngineConfig::sync(4);
        let out = run::<Ping, _, _>(&cfg, 7, &mut NoAdversary, ping_factory(4));
        for id in out.outputs.keys() {
            assert_eq!(out.metrics.decided_at(*id), Some(1));
        }
    }

    #[test]
    fn silent_adversary_blocks_its_victims_senders() {
        // Node i receives from i-1. If i-1 is corrupt (silent), node i
        // never decides; the run must hit max_steps and report undecided.
        let cfg = EngineConfig {
            max_steps: 10,
            ..EngineConfig::sync(8)
        };
        let mut adv = SilentAdversary::new(2);
        let out = run::<Ping, _, _>(&cfg, 3, &mut adv, ping_factory(8));
        assert_eq!(out.corrupt.len(), 2);
        assert!(out.all_decided_at.is_none());
        // Nodes whose predecessor is correct still decide.
        let decided_count = out.outputs.len();
        assert!(decided_count >= 8 - 2 * 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = EngineConfig::sync(16);
        let mut a1 = SilentAdversary::new(4);
        let mut a2 = SilentAdversary::new(4);
        let o1 = run::<Ping, _, _>(&cfg, 11, &mut a1, ping_factory(16));
        let o2 = run::<Ping, _, _>(&cfg, 11, &mut a2, ping_factory(16));
        assert_eq!(o1.corrupt, o2.corrupt);
        assert_eq!(o1.all_decided_at, o2.all_decided_at);
        assert_eq!(o1.metrics.total_bits_sent(), o2.metrics.total_bits_sent());
        assert_eq!(o1.outputs, o2.outputs);
    }

    #[test]
    fn transcript_records_all_sends() {
        let cfg = EngineConfig {
            record_transcript: true,
            ..EngineConfig::sync(4)
        };
        let out = run::<Ping, _, _>(&cfg, 1, &mut NoAdversary, ping_factory(4));
        assert_eq!(out.transcript.len(), 4);
        assert!(out.transcript.iter().all(|e| e.sent_at == 0 && e.msg == 42));
    }

    /// Adversary that delays one specific edge to max_delay and checks the
    /// rushing view plumbing.
    struct DelayingAdversary {
        saw_rushing_view: bool,
    }

    impl Adversary<u64> for DelayingAdversary {
        fn corrupt(&mut self, _n: usize, _rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
            BTreeSet::new()
        }
        fn rushing(&self) -> bool {
            true
        }
        fn act(&mut self, step: Step, view: Option<&[Envelope<u64>]>, _out: &mut Outbox<'_, u64>) {
            if step == 0 {
                let view = view.expect("rushing adversary must see current sends");
                assert_eq!(view.len(), 4);
                self.saw_rushing_view = true;
            }
        }
        fn delay(&mut self, env: &Envelope<u64>) -> Step {
            if env.from == NodeId::from_index(0) {
                100 // engine must clamp to max_delay
            } else {
                1
            }
        }
    }

    #[test]
    fn adversarial_delay_is_clamped_to_max_delay() {
        let cfg = EngineConfig::asynchronous(4, 3);
        let mut adv = DelayingAdversary {
            saw_rushing_view: false,
        };
        let out = run::<Ping, _, _>(&cfg, 5, &mut adv, ping_factory(4));
        assert!(adv.saw_rushing_view);
        // Node 1 (receiver of node 0's ping) decides at step 3, not 100.
        assert_eq!(out.metrics.decided_at(NodeId::from_index(1)), Some(3));
        assert_eq!(out.all_decided_at, Some(3));
    }

    /// Protocol where a node decides on the *first* message it processes;
    /// used to verify priority-based reordering within a step.
    struct FirstWins {
        first: Option<u64>,
    }

    impl Protocol for FirstWins {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.id().index() != 0 {
                // Nodes 1 and 2 both message node 0 with their index.
                ctx.send(NodeId::from_index(0), ctx.id().index() as u64);
            }
        }
        fn on_message(&mut self, _from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
            self.first.get_or_insert(msg);
        }
        fn output(&self) -> Option<u64> {
            self.first
        }
    }

    struct ReorderAdversary;

    impl Adversary<u64> for ReorderAdversary {
        fn corrupt(&mut self, _n: usize, _rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
            BTreeSet::new()
        }
        fn act(&mut self, _s: Step, _v: Option<&[Envelope<u64>]>, _o: &mut Outbox<'_, u64>) {}
        fn priority(&mut self, env: &Envelope<u64>) -> i64 {
            // Deliver the message with the larger payload first.
            -(env.msg as i64)
        }
    }

    #[test]
    fn priority_reorders_within_step() {
        let cfg = EngineConfig::sync(3);
        let fair = run::<FirstWins, _, _>(&cfg, 2, &mut NoAdversary, |_| FirstWins { first: None });
        assert_eq!(fair.outputs[&NodeId::from_index(0)], 1); // send order: node 1 first
        let skewed = run::<FirstWins, _, _>(&cfg, 2, &mut ReorderAdversary, |_| FirstWins {
            first: None,
        });
        assert_eq!(skewed.outputs[&NodeId::from_index(0)], 2); // adversary flipped it
    }

    /// Every node broadcasts its index to all others at start (a batch of
    /// `n-1` under batching) and replies once to each first contact; a
    /// node decides when it has heard from everyone else. Exercises both
    /// the batch path (broadcast) and the single-envelope path (replies).
    struct Broadcast {
        id: NodeId,
        n: usize,
        heard: BTreeSet<NodeId>,
    }

    impl Protocol for Broadcast {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.n {
                if i != self.id.index() {
                    ctx.send(NodeId::from_index(i), self.id.index() as u64);
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<'_, u64>) {
            if self.heard.insert(from) && msg != u64::MAX {
                ctx.send(from, u64::MAX);
            }
        }
        fn output(&self) -> Option<u64> {
            (self.heard.len() == self.n - 1).then_some(0)
        }
    }

    #[test]
    fn batched_and_unbatched_runs_account_identically() {
        // Satellite guarantee: a batch of k logical messages counts as k
        // messages and k× bits, node by node — delivered and sent — so
        // flipping `batch` must leave every metric bit-identical.
        let n = 12;
        let factory = |id: NodeId| Broadcast {
            id,
            n,
            heard: BTreeSet::new(),
        };
        let base = EngineConfig::sync(n);
        let unbatched = run::<Broadcast, _, _>(
            &EngineConfig {
                batch: false,
                ..base.clone()
            },
            9,
            &mut NoAdversary,
            factory,
        );
        for (label, cfg) in [
            (
                "batched",
                EngineConfig {
                    batch: true,
                    ..base.clone()
                },
            ),
            (
                "batched-limit-3",
                EngineConfig {
                    batch: true,
                    batch_limit: Some(3),
                    ..base.clone()
                },
            ),
        ] {
            let batched = run::<Broadcast, _, _>(&cfg, 9, &mut NoAdversary, factory);
            assert_eq!(
                batched.metrics.total_msgs_sent(),
                unbatched.metrics.total_msgs_sent(),
                "{label}: total logical messages"
            );
            assert_eq!(
                batched.metrics.total_bits_sent(),
                unbatched.metrics.total_bits_sent(),
                "{label}: total bits"
            );
            for i in 0..n {
                let id = NodeId::from_index(i);
                assert_eq!(
                    batched.metrics.msgs_sent_by(id),
                    unbatched.metrics.msgs_sent_by(id),
                    "{label}: msgs sent by {id}"
                );
                assert_eq!(
                    batched.metrics.bits_sent_by(id),
                    unbatched.metrics.bits_sent_by(id),
                    "{label}: bits sent by {id}"
                );
                assert_eq!(
                    batched.metrics.msgs_recv_by(id),
                    unbatched.metrics.msgs_recv_by(id),
                    "{label}: msgs received by {id}"
                );
                assert_eq!(
                    batched.metrics.bits_recv_by(id),
                    unbatched.metrics.bits_recv_by(id),
                    "{label}: bits received by {id}"
                );
            }
            assert_eq!(batched.outputs, unbatched.outputs, "{label}: outputs");
            assert_eq!(
                batched.all_decided_at, unbatched.all_decided_at,
                "{label}: decision step"
            );
        }
        // Sanity: the broadcast really exercised the batch path — every
        // node sent n-1 broadcast messages plus n-1 replies.
        assert_eq!(
            unbatched.metrics.total_msgs_sent(),
            (n * 2 * (n - 1)) as u64
        );
    }

    #[test]
    fn session_reuse_is_bit_identical_to_fresh_runs() {
        // The service mode's engine contract: threading one EngineSession
        // through consecutive runs must leave every run identical to a
        // standalone one, including across differing seeds and horizons.
        let mut session = EngineSession::new(1);
        for (seed, delay) in [(1u64, 1u64), (9, 3), (1, 1), (4, 2)] {
            let cfg = EngineConfig::asynchronous(8, delay);
            let mut a1 = SilentAdversary::new(2);
            let reused = run_session::<Ping, _, _, _>(
                &cfg,
                seed,
                seed,
                &mut a1,
                ping_factory(8),
                &mut NullObserver,
                &mut session,
            );
            let mut a2 = SilentAdversary::new(2);
            let fresh = run::<Ping, _, _>(&cfg, seed, &mut a2, ping_factory(8));
            assert_eq!(reused.corrupt, fresh.corrupt);
            assert_eq!(reused.outputs, fresh.outputs);
            assert_eq!(reused.all_decided_at, fresh.all_decided_at);
            assert_eq!(reused.quiescent, fresh.quiescent);
            assert_eq!(
                reused.metrics.total_bits_sent(),
                fresh.metrics.total_bits_sent()
            );
            assert_eq!(reused.metrics.steps, fresh.metrics.steps);
        }
    }

    #[test]
    fn adversary_seed_pins_the_coalition_across_master_seeds() {
        let cfg = EngineConfig::sync(16);
        let mut outcomes = Vec::new();
        for master in [3u64, 8, 21] {
            let mut adv = SilentAdversary::new(4);
            let mut session = EngineSession::new(1);
            outcomes.push(run_session::<Ping, _, _, _>(
                &cfg,
                master,
                77, // same adversary seed every time
                &mut adv,
                ping_factory(16),
                &mut NullObserver,
                &mut session,
            ));
        }
        assert_eq!(outcomes[0].corrupt, outcomes[1].corrupt);
        assert_eq!(outcomes[1].corrupt, outcomes[2].corrupt);
        // And adversary_seed = master_seed reproduces run() exactly.
        let mut adv = SilentAdversary::new(4);
        let plain = run::<Ping, _, _>(&cfg, 77, &mut adv, ping_factory(16));
        assert_eq!(plain.corrupt, outcomes[0].corrupt);
    }

    /// Every node broadcasts a token every step (even after deciding); a
    /// node decides once it has heard from everyone else. The retrying
    /// traffic makes reconvergence after a dark window observable.
    struct Gossip {
        id: NodeId,
        n: usize,
        heard: BTreeSet<NodeId>,
        crashes: u32,
        restarts: u32,
    }

    impl Gossip {
        fn fresh(id: NodeId, n: usize) -> Self {
            Gossip {
                id,
                n,
                heard: BTreeSet::new(),
                crashes: 0,
                restarts: 0,
            }
        }

        fn broadcast(&self, ctx: &mut Context<'_, u64>) {
            for i in 0..self.n {
                if i != self.id.index() {
                    ctx.send(NodeId::from_index(i), 1);
                }
            }
        }
    }

    impl Protocol for Gossip {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            self.broadcast(ctx);
        }
        fn on_step(&mut self, ctx: &mut Context<'_, u64>) {
            self.broadcast(ctx);
        }
        fn on_message(&mut self, from: NodeId, _msg: u64, _ctx: &mut Context<'_, u64>) {
            self.heard.insert(from);
        }
        fn on_crash(&mut self, _step: Step) {
            self.crashes += 1;
            self.heard.clear(); // transient state is lost in the outage
        }
        fn on_restart(&mut self, _ctx: &mut Context<'_, u64>) {
            self.restarts += 1;
        }
        fn output(&self) -> Option<u64> {
            (self.heard.len() == self.n - 1).then_some(0)
        }
    }

    fn crash_cfg(n: usize, plan: CrashPlan) -> EngineConfig {
        EngineConfig {
            max_steps: 40,
            drain_steps: 4,
            crash: Some(plan),
            ..EngineConfig::sync(n)
        }
    }

    #[test]
    fn dark_window_suspends_a_node_until_restart() {
        let n = 4;
        let plan = CrashPlan::new(vec![
            CrashOutage::new(1, 5, vec![NodeId::from_index(0)]).unwrap()
        ])
        .unwrap();
        let mut crash_hooks = Vec::new();
        let out = run_inspect::<Gossip, _, _, _>(
            &crash_cfg(n, plan),
            3,
            &mut NoAdversary,
            |id| Gossip::fresh(id, n),
            |id, node| crash_hooks.push((id, node.crashes, node.restarts)),
        );
        // Node 0 is dark over steps 1-4: it misses every delivery, and
        // its own step-0 broadcast is dropped too (the sender is dark at
        // delivery time), so nodes 1-3 are stuck one contact short.
        // Restart happens at the top of step 5, before deliveries — node
        // 0 immediately receives the broadcasts sent at step 4 and
        // decides at 5; its own restart broadcast lands at 6, where the
        // rest reconverge.
        assert_eq!(out.metrics.decided_at(NodeId::from_index(0)), Some(5));
        for i in 1..n {
            assert_eq!(out.metrics.decided_at(NodeId::from_index(i)), Some(6));
        }
        assert_eq!(out.all_decided_at, Some(6));
        // Dropped traffic: node 0's step-0 broadcast (3 msgs, dark
        // sender) plus the others' broadcasts delivered to it during
        // steps 1-4 (3 msgs × 4 steps, dark recipient).
        assert_eq!(out.metrics.msgs_dropped(), 3 + 3 * 4);
        // The crash/restart hooks fired exactly once each, on node 0.
        assert_eq!(crash_hooks.len(), n);
        for (id, crashes, restarts) in crash_hooks {
            let expected = u32::from(id.index() == 0);
            assert_eq!((crashes, restarts), (expected, expected), "node {id}");
        }
    }

    #[test]
    fn crashed_runs_are_identical_batched_and_unbatched() {
        let n = 5;
        let plan = CrashPlan::new(vec![
            CrashOutage::new(1, 3, vec![NodeId::from_index(2)]).unwrap(),
            CrashOutage::new(4, 6, vec![NodeId::from_index(0), NodeId::from_index(3)]).unwrap(),
        ])
        .unwrap();
        let base = crash_cfg(n, plan);
        let unbatched = run::<Gossip, _, _>(
            &EngineConfig {
                batch: false,
                ..base.clone()
            },
            11,
            &mut NoAdversary,
            |id| Gossip::fresh(id, n),
        );
        let batched = run::<Gossip, _, _>(
            &EngineConfig {
                batch: true,
                ..base
            },
            11,
            &mut NoAdversary,
            |id| Gossip::fresh(id, n),
        );
        assert_eq!(batched.metrics, unbatched.metrics);
        assert_eq!(batched.outputs, unbatched.outputs);
        assert_eq!(batched.all_decided_at, unbatched.all_decided_at);
        assert!(unbatched.metrics.msgs_dropped() > 0, "windows were live");
    }

    #[test]
    fn empty_crash_plan_is_bit_identical_to_none() {
        let cfg_none = EngineConfig {
            record_transcript: true,
            ..EngineConfig::sync(8)
        };
        let cfg_empty = EngineConfig {
            crash: Some(CrashPlan::empty()),
            ..cfg_none.clone()
        };
        for seed in [1u64, 9, 42] {
            let mut a1 = SilentAdversary::new(2);
            let mut a2 = SilentAdversary::new(2);
            let plain = run::<Ping, _, _>(&cfg_none, seed, &mut a1, ping_factory(8));
            let empty = run::<Ping, _, _>(&cfg_empty, seed, &mut a2, ping_factory(8));
            assert_eq!(plain.metrics, empty.metrics);
            assert_eq!(plain.outputs, empty.outputs);
            assert_eq!(plain.corrupt, empty.corrupt);
            assert_eq!(plain.all_decided_at, empty.all_decided_at);
            assert_eq!(plain.quiescent, empty.quiescent);
            assert_eq!(plain.transcript, empty.transcript);
            assert_eq!(empty.metrics.msgs_dropped(), 0);
        }
    }

    #[test]
    fn crashing_a_corrupt_node_is_a_no_op() {
        // The adversary plays corrupt nodes; a crash window naming one
        // must not disturb the run (no hooks, no drops beyond what the
        // correct crash targets cause).
        let cfg = EngineConfig {
            max_steps: 10,
            ..EngineConfig::sync(8)
        };
        let mut adv = SilentAdversary::new(2);
        let baseline = run::<Ping, _, _>(&cfg, 3, &mut adv, ping_factory(8));
        let corrupt_target = *baseline.corrupt.iter().next().unwrap();
        let plan =
            CrashPlan::new(vec![CrashOutage::new(2, 4, vec![corrupt_target]).unwrap()]).unwrap();
        let mut adv2 = SilentAdversary::new(2);
        let crashed = run::<Ping, _, _>(
            &EngineConfig {
                crash: Some(plan),
                ..cfg
            },
            3,
            &mut adv2,
            ping_factory(8),
        );
        assert_eq!(crashed.corrupt, baseline.corrupt);
        assert_eq!(crashed.outputs, baseline.outputs);
        assert_eq!(crashed.metrics.msgs_dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn crash_plan_naming_out_of_range_node_panics() {
        let plan = CrashPlan::new(vec![
            CrashOutage::new(1, 2, vec![NodeId::from_index(9)]).unwrap()
        ])
        .unwrap();
        let _ = run::<Ping, _, _>(&crash_cfg(4, plan), 1, &mut NoAdversary, ping_factory(4));
    }

    #[test]
    fn unanimous_detects_agreement_and_disagreement() {
        let cfg = EngineConfig::sync(3);
        let out = run::<FirstWins, _, _>(&cfg, 2, &mut NoAdversary, |_| FirstWins { first: None });
        // Nodes 1 and 2 decide on their own "no message" path? They never
        // receive anything, so only node 0 decides => not all decided.
        assert!(out.all_decided_at.is_none());
        assert!(out.unanimous().is_some()); // single decider is unanimous
    }
}
