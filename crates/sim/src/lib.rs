//! # fba-sim — deterministic network simulator
//!
//! The execution substrate for the *Fast Byzantine Agreement* (PODC 2013)
//! reproduction: a fully connected, reliable, authenticated message-passing
//! network of `n` nodes (§2.1 of the paper) with
//!
//! * **synchronous** executions — a message sent during step `r` is
//!   delivered during step `r + 1`;
//! * **asynchronous** executions — a coordinated adversary schedules
//!   delivery delays (bounded, preserving reliability) and reorders
//!   deliveries within a step;
//! * a **full-information, non-adaptive Byzantine adversary** that plays
//!   all corrupt nodes, observes every message, and may be *rushing*
//!   (sees correct nodes' current-step messages before choosing its own)
//!   or *non-rushing*;
//! * per-node **bit and message accounting** matching the paper's
//!   communication-complexity metric (total bits / n, plus load-balance
//!   summaries for Figure 1a's "Load-Balanced" row).
//!
//! Runs are pure functions of a 64-bit master seed, so every experiment in
//! the repository replays exactly.
//!
//! ## Determinism contract
//!
//! Every performance mechanism in this workspace is *outcome-invariant* by
//! construction, so speed never trades against replayability:
//!
//! * **Event queue** — the engine schedules deliveries in a
//!   [`calendar::CalendarQueue`] ring buffer. It preserves the exact
//!   delivery order of the ordered-map queue it replaced (step order, then
//!   `(priority, insertion order)` within a step); the randomized
//!   equivalence test in `tests/calendar_equiv.rs` checks this against a
//!   `BTreeMap` reference model.
//! * **Scratch reuse** — per-step send/delivery buffers are recycled, not
//!   reallocated. Buffer capacity is invisible to protocol logic, and the
//!   adversary callback order (`delay` then `priority` per envelope in
//!   send order, then `observe`) is unchanged, so stateful adversaries see
//!   the same call sequence.
//! * **Memoization** — quorum caching in `fba-samplers` memoizes pure
//!   functions of `(public seed, string, node)`; a cache hit returns the
//!   same bytes the sampler would recompute.
//! * **Parallelism** — experiment sweeps fan out *whole runs*, each a pure
//!   function of `(config, seed)`, and aggregate results by input index.
//!   Thread count and interleaving cannot affect any run's RNG streams,
//!   so parallel output equals serial output bit for bit.
//! * **Batched bulk lane** — with [`EngineConfig::batch`] on (the
//!   default), each callback's outbox ships as one run-length-encoded
//!   [`Batch`] on the calendar's bulk lane instead of per-message
//!   envelopes. Batches unpack in exact send order at delivery, every
//!   per-envelope consumer (rushing views, scheduling adversaries,
//!   observers, transcripts) is shown the flattened per-envelope view,
//!   and metrics count *logical* messages — a batch of `k` counts `k`
//!   messages and `k×` bits. Runs are bit-identical either way, pinned by
//!   `tests/scenario_equivalence.rs` across the adversary × network
//!   matrix plus a proptest over random batch boundaries; `FBA_BATCH=0`
//!   is the environment escape hatch for bisecting.
//! * **Instance sequencing** — service mode chains agreement instances
//!   over one reusable [`EngineSession`] and shared protocol arenas. The
//!   sequencing rules: instance `0` runs with the service seed itself,
//!   instance `k > 0` with [`rng::instance_seed`]`(seed, k)` (domain-
//!   separated, so instances are independent draws); the *adversary*
//!   stream is derived from its own seed — the service seed for every
//!   instance, pinning one corrupt coalition across the run. What
//!   persists across instances is only what is outcome-invariant: engine
//!   scratch (cleared by [`EngineSession`] reuse — capacity is
//!   invisible), pure memoization caches, and interned-slot arenas whose
//!   per-instance state is reset at instance start. Every instance is
//!   therefore bit-identical to a fresh-engine run with the same
//!   `(value seed, adversary seed)` — pinned by
//!   `tests/service_determinism.rs`, including the repeated-value-seed
//!   battery that forces maximal slot collisions, and cache hit/miss
//!   counters prove the persistence is real rather than silently
//!   rebuilt. Arrival schedules only move service-clock bookkeeping,
//!   never outcomes.
//! * **Dark windows** — the crash–restart fault family
//!   ([`EngineConfig::crash`], resolved plans in [`CrashPlan`]) gates
//!   every one of its checks on the plan being non-empty: a run carrying
//!   `None` *or* an empty plan executes the exact pre-crash instruction
//!   sequence, so the no-fault path stays bit-identical to baseline
//!   (pinned by `tests/scenario_equivalence.rs`). With outages present,
//!   crash and restart transitions happen at fixed plan-determined steps
//!   (restarts before crashes, before the step's regular callbacks),
//!   dark nodes are skipped in deterministic node order, and dropped
//!   deliveries are counted in [`Metrics::msgs_dropped`] — a crashed run
//!   is a pure function of `(config, plan, master seed)`.
//! * **Execution backends** — the step loop's building blocks
//!   ([`enqueue_outbox`], [`flatten_into`], [`consult_schedule`],
//!   [`commit_schedule`]) are public so alternative executors can share
//!   them. The `fba-exec` crate ships two: `SimBackend`, which *is*
//!   [`run_session`] (bit-identical, the substrate for every correctness
//!   pin), and `ThreadedBackend`, which shards nodes across worker
//!   threads with a barrier per simulated step. The threaded backend
//!   replays the same per-node RNG streams and the same cross-shard merge
//!   order, but protocol state shared *between* nodes (the AER arenas) is
//!   per-shard there, so only outcome-level invariants — not transcripts
//!   or bit counts — are contractual across backends; see the `fba-exec`
//!   crate docs.
//!
//! ### Static enforcement
//!
//! The pins above *sample* the contract per seed. Its preconditions —
//! no randomized-hasher containers in deterministic crates, no wall
//! clock or ad-hoc RNG construction, parallelism only behind the
//! sanctioned executors, one audited `unsafe` site, no ambient
//! `env::var` reads — are *statically enforced* on every shipped line
//! by the `paperlint` pass (crate `fba-lint`, rules D1–D7, run in CI
//! next to clippy). The sanctioned sites live in this crate: [`fxhash`]
//! is the D1 hasher, [`rng`] the D4 seed splits, [`tuning`] the D5
//! `unsafe` allowlist, and `EngineConfig::batch`'s `FBA_BATCH` read one
//! of the two D6 config sites. See the README's "Static guarantees"
//! section for the rule table and waiver syntax.
//!
//! ## Quick example
//!
//! ```
//! use fba_sim::{run, Context, EngineConfig, NoAdversary, NodeId, Protocol};
//!
//! /// Every node announces itself to node 0; node 0 decides on the count.
//! struct Census { id: NodeId, heard: u64 }
//!
//! impl Protocol for Census {
//!     type Msg = ();
//!     type Output = u64;
//!     fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
//!         if self.id.index() != 0 { ctx.send(NodeId::from_index(0), ()); }
//!     }
//!     fn on_message(&mut self, _from: NodeId, _msg: (), _ctx: &mut Context<'_, ()>) {
//!         self.heard += 1;
//!     }
//!     fn output(&self) -> Option<u64> {
//!         if self.id.index() == 0 {
//!             (self.heard == 7).then_some(self.heard)
//!         } else {
//!             Some(0)
//!         }
//!     }
//! }
//!
//! let cfg = EngineConfig::sync(8);
//! let out = run::<Census, _, _>(&cfg, 42, &mut NoAdversary, |id| Census { id, heard: 0 });
//! assert_eq!(out.outputs[&NodeId::from_index(0)], 7);
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the audited
// glibc `mallopt` binding in [`tuning`], which carries its own
// `allow(unsafe_code)` and SAFETY justification. Everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod adversary;
pub mod calendar;
mod crash;
mod engine;
pub mod fxhash;
mod ids;
mod message;
mod metrics;
pub mod observer;
mod protocol;
pub mod rng;
mod spec;
pub mod tuning;

pub use adversary::{choose_corrupt, Adversary, NoAdversary, Outbox, SilentAdversary};
pub use crash::{CrashOutage, CrashPlan, CrashPlanError};
pub use engine::{
    batch_env_default, commit_schedule, consult_schedule, enqueue_outbox, flatten_into, run,
    run_inspect, run_observed, run_session, EngineConfig, EngineSession, RunOutcome,
};
pub use ids::{all_nodes, ceil_log2, ln_at_least_one, NodeId, Step};
pub use message::{Batch, BatchBuffers, Delivery, Envelope, WireSize};
pub use metrics::{LoadSummary, Metrics, MetricsTotals};
pub use observer::{DecisionLog, FinalInspect, NullObserver, Observer, TranscriptSink};
pub use protocol::{Context, Protocol};
pub use spec::{
    AdversarySpec, GenericAdversary, NetworkSpec, ParseSpecError, ScheduleError, ScheduleSpec,
    Window, DEFAULT_CORNER_SCAN, DEFAULT_EQUIVOCATE_STRINGS, DEFAULT_FLOOD_RATE,
    DEFAULT_FLOOD_STEPS, DEFAULT_PULL_FLOOD_RATE,
};
pub use tuning::tune_allocator_for_bulk;
