//! Process-level allocator tuning for bulk simulation workloads.
//!
//! Large-`n` engine runs allocate and free multi-gigabyte waves of queue
//! memory each step. Under glibc's default malloc tunables, those waves
//! are serviced by `mmap`/`munmap` and aggressive heap trimming, so the
//! process spends most of its time in kernel page-fault handling rather
//! than simulating (measured: >50% sys time at `n ≥ 4096`). Raising the
//! mmap and trim thresholds keeps the burst memory on the heap across
//! steps, trading peak RSS for a several-fold throughput gain.
//!
//! Allocator behaviour is invisible to the determinism contract: runs
//! compute bit-identical outcomes with or without tuning.

/// glibc `mallopt` parameter: heap trim threshold (`M_TRIM_THRESHOLD`).
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_TRIM_THRESHOLD: i32 = -1;
/// glibc `mallopt` parameter: mmap threshold (`M_MMAP_THRESHOLD`).
#[cfg(all(target_os = "linux", target_env = "gnu"))]
const M_MMAP_THRESHOLD: i32 = -3;

/// Tunes the process allocator for bursty, multi-gigabyte simulation
/// workloads: raises the glibc mmap and trim thresholds to 1 GiB so
/// per-step queue memory is recycled on the heap instead of being
/// returned to (and re-faulted from) the kernel every step.
///
/// Call once at process start, before the first large run — benchmark
/// binaries do this by default. Returns `true` if the tuning was applied;
/// on non-glibc targets this is a no-op returning `false`. Never affects
/// simulation results, only how fast they are produced.
#[allow(unsafe_code)] // the crate's one FFI call; see the SAFETY note below
pub fn tune_allocator_for_bulk() -> bool {
    #[cfg(all(target_os = "linux", target_env = "gnu"))]
    {
        // Bind the two glibc tunables directly; this avoids a `libc`
        // crate dependency for two constants and one call.
        extern "C" {
            fn mallopt(param: i32, value: i32) -> i32;
        }
        const ONE_GIB: i32 = 1 << 30;
        // SAFETY: `mallopt` is async-signal-unsafe but thread-safe; it
        // only adjusts allocator tunables and is called with documented
        // glibc parameter constants.
        unsafe {
            mallopt(M_MMAP_THRESHOLD, ONE_GIB) == 1 && mallopt(M_TRIM_THRESHOLD, ONE_GIB) == 1
        }
    }
    #[cfg(not(all(target_os = "linux", target_env = "gnu")))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_is_idempotent_and_reports_support() {
        let first = tune_allocator_for_bulk();
        let second = tune_allocator_for_bulk();
        // Whatever the platform answers, it must answer consistently.
        assert_eq!(first, second);
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        assert!(first);
    }
}
