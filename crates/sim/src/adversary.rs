//! The coordinated Byzantine adversary interface.
//!
//! The paper's adversary (§2.1) controls up to `t` nodes, has *full
//! knowledge* of the network, coordinates all corrupt nodes centrally, and
//! is **non-adaptive**: the corrupt set is fixed before the algorithm runs.
//! Two observation regimes exist:
//!
//! * a **rushing** adversary sees the messages correct nodes send during a
//!   step *before* choosing its own messages for that step;
//! * a **non-rushing** adversary chooses its messages for a step
//!   independently of correct messages sent during the same step (it still
//!   sees everything sent in strictly earlier steps).
//!
//! In asynchronous executions the adversary additionally schedules the
//! network: it assigns every message a delivery delay (bounded by the
//! engine's `max_delay`, enforcing reliability) and an intra-step
//! processing priority.

use std::collections::BTreeSet;

use rand::seq::index::sample;
use rand_chacha::ChaCha12Rng;

use crate::ids::{NodeId, Step};
use crate::message::Envelope;

/// Messages the adversary injects during its turn.
///
/// Sender identities are checked against the corrupt set: the model's
/// authenticated channels make sender forgery impossible.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    corrupt: &'a BTreeSet<NodeId>,
    n: usize,
    sends: Vec<(NodeId, NodeId, M)>,
}

impl<'a, M> Outbox<'a, M> {
    /// Creates an outbox bound to a corrupt set. Engine-internal, exposed
    /// for adversary unit tests.
    #[must_use]
    pub fn new(corrupt: &'a BTreeSet<NodeId>, n: usize) -> Self {
        Outbox {
            corrupt,
            n,
            sends: Vec::new(),
        }
    }

    /// Sends `msg` from corrupt node `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupt (authenticated channels cannot be
    /// forged) or if `to` is out of range.
    pub fn send_as(&mut self, from: NodeId, to: NodeId, msg: M) {
        assert!(
            self.corrupt.contains(&from),
            "adversary tried to forge sender {from}, which is not corrupt"
        );
        assert!(to.index() < self.n, "send target {to} out of range");
        self.sends.push((from, to, msg));
    }

    /// Number of messages queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sends.len()
    }

    /// Whether no messages are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
    }

    /// Consumes the outbox, returning the queued `(from, to, msg)` triples.
    #[must_use]
    pub fn into_sends(self) -> Vec<(NodeId, NodeId, M)> {
        self.sends
    }
}

/// A coordinated, full-information, non-adaptive Byzantine adversary.
///
/// One adversary instance plays *all* corrupt nodes of a run. Every message
/// sent by anyone is eventually shown to it via [`Adversary::observe`]
/// (full-information model); rushing adversaries additionally receive the
/// current step's correct sends inside [`Adversary::act`].
pub trait Adversary<M: Clone> {
    /// Chooses the corrupt set before the run starts (non-adaptive
    /// corruption). Must return node ids in `0..n`.
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId>;

    /// Whether this adversary is rushing (§2.1).
    fn rushing(&self) -> bool {
        false
    }

    /// The adversary's turn for `step`.
    ///
    /// `rushing_view` is `Some(correct sends of this step)` iff
    /// [`Adversary::rushing`] returns true, and `None` otherwise. Messages
    /// queued on `out` are handed to the network at the end of the step and
    /// delivered no earlier than `step + 1`.
    fn act(&mut self, step: Step, rushing_view: Option<&[Envelope<M>]>, out: &mut Outbox<'_, M>);

    /// Full-information observation hook: called at the end of every step
    /// with *all* messages sent during it (correct and corrupt alike).
    fn observe(&mut self, step: Step, sends: &[Envelope<M>]) {
        let _ = (step, sends);
    }

    /// Network-scheduling power (asynchronous executions): the delivery
    /// delay for `env`, in steps. The engine clamps the result to
    /// `1..=max_delay`, which enforces the model's reliability assumption.
    fn delay(&mut self, env: &Envelope<M>) -> Step {
        let _ = env;
        1
    }

    /// Network-scheduling power: intra-step processing priority for `env`.
    /// Deliveries due at the same step are processed in ascending priority
    /// order (ties broken by send order).
    fn priority(&mut self, env: &Envelope<M>) -> i64 {
        let _ = env;
        0
    }

    /// Whether the engine must consult [`Adversary::delay`] /
    /// [`Adversary::priority`] for every envelope. Defaults to `true`
    /// (always correct); adversaries that keep the default uniform
    /// `(delay 1, priority 0)` schedule may return `false`, letting the
    /// engine skip per-message materialisation on batched fast paths.
    /// Must return `true` whenever either scheduling hook is overridden.
    fn schedules(&self) -> bool {
        true
    }

    /// Whether the engine must call [`Adversary::observe`] each step.
    /// Defaults to `true` (always correct); adversaries whose `observe` is
    /// the default no-op may return `false` to skip the per-step
    /// materialisation of the full send view. Must return `true` whenever
    /// `observe` is overridden.
    fn observes(&self) -> bool {
        true
    }
}

/// Samples a uniformly random corrupt set of size `t` from `0..n`.
///
/// # Panics
///
/// Panics if `t > n`.
#[must_use]
pub fn choose_corrupt(n: usize, t: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
    assert!(t <= n, "cannot corrupt {t} of {n} nodes");
    sample(rng, n, t)
        .into_iter()
        .map(NodeId::from_index)
        .collect()
}

/// The benign environment: no node is corrupted, nothing is scheduled
/// adversarially. Used for fault-free runs ("unlike many randomized
/// protocols, success is guaranteed when there is no Byzantine fault").
#[derive(Clone, Copy, Debug, Default)]
pub struct NoAdversary;

impl<M: Clone> Adversary<M> for NoAdversary {
    fn corrupt(&mut self, _n: usize, _rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        BTreeSet::new()
    }

    fn act(&mut self, _step: Step, _view: Option<&[Envelope<M>]>, _out: &mut Outbox<'_, M>) {}

    fn schedules(&self) -> bool {
        false
    }

    fn observes(&self) -> bool {
        false
    }
}

/// Corrupts `t` random nodes that then stay silent (fail-stop behaviour).
///
/// The weakest Byzantine strategy; useful as a liveness smoke test because
/// quorum majorities must still be reached without the corrupt members.
#[derive(Clone, Copy, Debug)]
pub struct SilentAdversary {
    /// Number of nodes to corrupt.
    pub t: usize,
}

impl SilentAdversary {
    /// Creates a silent adversary corrupting `t` nodes.
    #[must_use]
    pub fn new(t: usize) -> Self {
        SilentAdversary { t }
    }
}

impl<M: Clone> Adversary<M> for SilentAdversary {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        choose_corrupt(n, self.t, rng)
    }

    fn act(&mut self, _step: Step, _view: Option<&[Envelope<M>]>, _out: &mut Outbox<'_, M>) {}

    fn schedules(&self) -> bool {
        false
    }

    fn observes(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    #[test]
    fn choose_corrupt_size_and_range() {
        let mut rng = derive_rng(3, &[]);
        let set = choose_corrupt(100, 33, &mut rng);
        assert_eq!(set.len(), 33);
        assert!(set.iter().all(|id| id.index() < 100));
    }

    #[test]
    fn choose_corrupt_is_deterministic() {
        let mut a = derive_rng(5, &[]);
        let mut b = derive_rng(5, &[]);
        assert_eq!(
            choose_corrupt(64, 21, &mut a),
            choose_corrupt(64, 21, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "cannot corrupt")]
    fn choose_corrupt_rejects_oversize() {
        let mut rng = derive_rng(3, &[]);
        let _ = choose_corrupt(4, 5, &mut rng);
    }

    #[test]
    fn outbox_accepts_corrupt_sender() {
        let corrupt: BTreeSet<_> = [NodeId::from_index(1)].into_iter().collect();
        let mut out: Outbox<'_, u32> = Outbox::new(&corrupt, 4);
        assert!(out.is_empty());
        out.send_as(NodeId::from_index(1), NodeId::from_index(0), 7);
        assert_eq!(out.len(), 1);
        let sends = out.into_sends();
        assert_eq!(
            sends,
            vec![(NodeId::from_index(1), NodeId::from_index(0), 7)]
        );
    }

    #[test]
    #[should_panic(expected = "forge")]
    fn outbox_rejects_forged_sender() {
        let corrupt: BTreeSet<_> = [NodeId::from_index(1)].into_iter().collect();
        let mut out: Outbox<'_, u32> = Outbox::new(&corrupt, 4);
        out.send_as(NodeId::from_index(0), NodeId::from_index(2), 7);
    }

    #[test]
    fn no_adversary_corrupts_nothing() {
        let mut rng = derive_rng(0, &[]);
        let set = <NoAdversary as Adversary<u32>>::corrupt(&mut NoAdversary, 10, &mut rng);
        assert!(set.is_empty());
        assert!(!<NoAdversary as Adversary<u32>>::rushing(&NoAdversary));
    }

    #[test]
    fn silent_adversary_corrupts_t() {
        let mut rng = derive_rng(0, &[]);
        let mut adv = SilentAdversary::new(3);
        let set = <SilentAdversary as Adversary<u32>>::corrupt(&mut adv, 10, &mut rng);
        assert_eq!(set.len(), 3);
    }
}
