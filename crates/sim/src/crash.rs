//! Crash–restart outage plans: the resolved form of the crash fault
//! family.
//!
//! A [`CrashPlan`] names which *correct* nodes go dark over which step
//! windows. It is the fully resolved, engine-facing representation — the
//! `crash:[a..b]k` spec grammar and the seeded node sampling that produce
//! one live in `fba-recovery`; the engine only ever sees concrete node
//! lists. While a node is dark the engine suspends its callbacks and drops
//! every delivery to or from it; at the window's end the node is restarted
//! through [`crate::Protocol::on_restart`] and resumes normal execution.
//!
//! Crash faults are orthogonal to corruption: a crashed node is honest
//! (it follows the protocol before and after its outage), it just loses
//! its network presence — and, unless the protocol checkpoints, its
//! transient in-memory state — for a window. Corrupt nodes appearing in a
//! plan are ignored (the adversary already plays them).
//!
//! Validation mirrors the `sched:` window rules (see [`crate::Window`]):
//! windows are closed, non-empty, ordered, and non-overlapping. Two extra
//! rules are crash-specific: a window may not start at step 0 (every node
//! must execute `on_start`, or no protocol state exists to checkpoint),
//! and every window must name at least one node. An entirely *empty* plan
//! (no outages) is permitted programmatically and is the engine's no-fault
//! fast path: runs carrying one are bit-identical to runs with no plan at
//! all, a pin the equivalence suite enforces.

use std::fmt;

use crate::ids::{NodeId, Step};

/// Why a crash plan failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CrashPlanError {
    /// An outage window starts at step 0; crash windows must start at
    /// step 1 or later so every node runs `on_start` first.
    StartsAtZero {
        /// Index of the offending outage.
        index: usize,
    },
    /// An outage window is empty or inverted (`end <= start`).
    EmptyWindow {
        /// Index of the offending outage.
        index: usize,
        /// The window's start step.
        start: Step,
        /// The window's end step.
        end: Step,
    },
    /// An outage names no nodes.
    NoNodes {
        /// Index of the offending outage.
        index: usize,
    },
    /// An outage starts before the previous one ended (overlapping or
    /// out-of-order windows).
    Unordered {
        /// Index of the offending outage.
        index: usize,
    },
    /// An outage asks to crash more nodes than the system has (raised at
    /// spec-resolution time, when the crash count meets a concrete `n`).
    TooManyNodes {
        /// Index of the offending outage.
        index: usize,
        /// Nodes the outage wanted to crash.
        count: usize,
        /// System size.
        n: usize,
    },
}

impl fmt::Display for CrashPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashPlanError::StartsAtZero { index } => write!(
                f,
                "crash window {index} starts at step 0; crash windows must start at step 1 or \
                 later (every node runs on_start first)"
            ),
            CrashPlanError::EmptyWindow { index, start, end } => write!(
                f,
                "crash window {index} is empty: [{start}..{end}] must satisfy end > start"
            ),
            CrashPlanError::NoNodes { index } => {
                write!(f, "crash window {index} crashes zero nodes")
            }
            CrashPlanError::Unordered { index } => write!(
                f,
                "crash window {index} starts before the previous window ended; windows must be \
                 ordered and non-overlapping"
            ),
            CrashPlanError::TooManyNodes { index, count, n } => write!(
                f,
                "crash window {index} crashes {count} nodes but the system only has {n}"
            ),
        }
    }
}

impl std::error::Error for CrashPlanError {}

/// One contiguous dark window: a set of nodes that crash at the start of
/// step `start` and restart at the start of step `end`.
///
/// The window is half-open on the engine's step clock: the nodes miss
/// every callback and delivery of steps `start..end` and run again from
/// step `end` (restart happens before that step's regular callbacks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashOutage {
    /// First dark step.
    pub start: Step,
    /// Restart step (exclusive end of the dark window).
    pub end: Step,
    /// The crashed nodes, sorted and deduplicated.
    nodes: Vec<NodeId>,
}

impl CrashOutage {
    /// Builds an outage, sorting and deduplicating `nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`CrashPlanError::StartsAtZero`], [`CrashPlanError::EmptyWindow`],
    /// or [`CrashPlanError::NoNodes`] (all reported with outage index 0;
    /// [`CrashPlan::new`] rewrites indices for multi-outage plans).
    pub fn new(start: Step, end: Step, mut nodes: Vec<NodeId>) -> Result<Self, CrashPlanError> {
        if start == 0 {
            return Err(CrashPlanError::StartsAtZero { index: 0 });
        }
        if end <= start {
            return Err(CrashPlanError::EmptyWindow {
                index: 0,
                start,
                end,
            });
        }
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.is_empty() {
            return Err(CrashPlanError::NoNodes { index: 0 });
        }
        Ok(CrashOutage { start, end, nodes })
    }

    /// The crashed nodes (sorted, deduplicated).
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of dark steps (`end - start`).
    #[must_use]
    pub fn len_steps(&self) -> Step {
        self.end - self.start
    }
}

/// A validated sequence of [`CrashOutage`] windows, ordered and
/// non-overlapping in time.
///
/// Carried into the engine via `EngineConfig::crash`; `None` and an empty
/// plan are equivalent (and bit-identical — the engine treats both as the
/// no-fault fast path).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    outages: Vec<CrashOutage>,
}

impl CrashPlan {
    /// A plan with no outages: the no-fault baseline.
    #[must_use]
    pub fn empty() -> Self {
        CrashPlan::default()
    }

    /// Builds a plan from outages, validating global window order.
    ///
    /// # Errors
    ///
    /// Returns [`CrashPlanError::Unordered`] when an outage starts before
    /// the previous one ended (windows must be disjoint and sorted by
    /// start).
    pub fn new(outages: Vec<CrashOutage>) -> Result<Self, CrashPlanError> {
        let mut prev_end: Step = 0;
        for (index, outage) in outages.iter().enumerate() {
            if outage.start < prev_end {
                return Err(CrashPlanError::Unordered { index });
            }
            prev_end = outage.end;
        }
        Ok(CrashPlan { outages })
    }

    /// The outages, in time order.
    #[must_use]
    pub fn outages(&self) -> &[CrashOutage] {
        &self.outages
    }

    /// Whether the plan has no outages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// The last restart step, or `None` for an empty plan. Runs shorter
    /// than this never bring every crashed node back.
    #[must_use]
    pub fn last_restart(&self) -> Option<Step> {
        self.outages.last().map(|o| o.end)
    }

    /// The largest node index any outage names, or `None` for an empty
    /// plan. Engine runs reject plans naming nodes outside `0..n`.
    #[must_use]
    pub fn max_node_index(&self) -> Option<usize> {
        self.outages
            .iter()
            .flat_map(|o| o.nodes.iter().map(|id| id.index()))
            .max()
    }

    /// Total node-steps of darkness across all outages (each crashed node
    /// contributes its window length).
    #[must_use]
    pub fn dark_node_steps(&self) -> u64 {
        self.outages
            .iter()
            .map(|o| o.len_steps() * o.nodes.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[usize]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::from_index).collect()
    }

    #[test]
    fn outage_sorts_and_dedups_nodes() {
        let o = CrashOutage::new(2, 5, ids(&[4, 1, 4, 2])).unwrap();
        assert_eq!(o.nodes(), ids(&[1, 2, 4]).as_slice());
        assert_eq!(o.len_steps(), 3);
    }

    #[test]
    fn outage_rejects_step_zero_start() {
        assert_eq!(
            CrashOutage::new(0, 3, ids(&[1])),
            Err(CrashPlanError::StartsAtZero { index: 0 })
        );
    }

    #[test]
    fn outage_rejects_empty_window() {
        assert_eq!(
            CrashOutage::new(5, 5, ids(&[1])),
            Err(CrashPlanError::EmptyWindow {
                index: 0,
                start: 5,
                end: 5
            })
        );
        assert!(matches!(
            CrashOutage::new(5, 3, ids(&[1])),
            Err(CrashPlanError::EmptyWindow { .. })
        ));
    }

    #[test]
    fn outage_rejects_zero_nodes() {
        assert_eq!(
            CrashOutage::new(1, 2, vec![]),
            Err(CrashPlanError::NoNodes { index: 0 })
        );
    }

    #[test]
    fn plan_accepts_ordered_disjoint_windows() {
        let plan = CrashPlan::new(vec![
            CrashOutage::new(1, 4, ids(&[0])).unwrap(),
            CrashOutage::new(4, 6, ids(&[1])).unwrap(),
            CrashOutage::new(9, 12, ids(&[0, 1])).unwrap(),
        ])
        .unwrap();
        assert_eq!(plan.outages().len(), 3);
        assert_eq!(plan.last_restart(), Some(12));
        assert_eq!(plan.max_node_index(), Some(1));
        assert_eq!(plan.dark_node_steps(), 3 + 2 + 2 * 3);
    }

    #[test]
    fn plan_rejects_overlap() {
        let result = CrashPlan::new(vec![
            CrashOutage::new(1, 5, ids(&[0])).unwrap(),
            CrashOutage::new(4, 8, ids(&[1])).unwrap(),
        ]);
        assert_eq!(result, Err(CrashPlanError::Unordered { index: 1 }));
    }

    #[test]
    fn empty_plan_is_the_no_fault_baseline() {
        let plan = CrashPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.last_restart(), None);
        assert_eq!(plan.max_node_index(), None);
        assert_eq!(plan.dark_node_steps(), 0);
        assert_eq!(plan, CrashPlan::new(vec![]).unwrap());
    }
}
