//! A fixed-horizon calendar queue for bounded-delay event scheduling.
//!
//! The engine's reliability assumption bounds every delivery delay by
//! `max_delay`, so the pending-delivery set never spans more than
//! `max_delay` distinct future steps. That makes a classic calendar ring
//! buffer (one slot per step modulo the horizon) strictly better than an
//! ordered map keyed by step: scheduling is O(1) with no per-event
//! allocation, and draining a step is a slot swap.
//!
//! Two lanes per slot:
//!
//! * **Bulk lane** — [`CalendarQueue::schedule_bulk`] moves a whole
//!   already-ordered batch (uniform delay, priority 0 — the synchronous /
//!   non-scheduling-adversary common case) into the slot by a vector
//!   *swap*: no per-event wrapper, no copy, no sort at drain time. This is
//!   what keeps large-`n` sweeps from doubling their peak memory in the
//!   scheduler.
//! * **Keyed lane** — [`CalendarQueue::schedule`] attaches `(priority,
//!   sequence)` ordering keys for adversarial schedules that reorder
//!   within a step.
//!
//! Ordering contract (identical to the `BTreeMap<Step, Vec<_>>` queue this
//! replaced): events due at the same step drain sorted by `(priority,
//! insertion order)`; distinct steps drain in step order because the
//! caller advances one step at a time. The bulk lane preserves this
//! because its events all carry priority 0 and *globally earlier*
//! insertion sequences than any keyed event coexisting in the slot (a
//! bulk append refuses slots that already hold keyed events). The
//! randomized test in `tests/calendar_equiv.rs` checks the combined-lane
//! order against the `BTreeMap` reference model.

use crate::ids::Step;

/// One keyed scheduled event.
#[derive(Clone, Debug)]
pub struct Scheduled<T> {
    /// Intra-step processing priority (ascending).
    pub priority: i64,
    /// Global insertion sequence number; ties on `priority` drain in
    /// insertion order.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

#[derive(Clone, Debug)]
struct Slot<T> {
    /// Priority-0 events in insertion order, all sequenced before every
    /// event in `keyed`.
    bulk: Vec<T>,
    /// Events with explicit ordering keys.
    keyed: Vec<Scheduled<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            bulk: Vec::new(),
            keyed: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.bulk.len() + self.keyed.len()
    }
}

/// Ring-buffer event queue over a bounded delay horizon.
///
/// ```
/// use fba_sim::calendar::CalendarQueue;
///
/// let mut q: CalendarQueue<&str> = CalendarQueue::new(3);
/// q.schedule(0, 2, 0, "later");
/// q.schedule(0, 1, 0, "sooner");
/// let mut due = Vec::new();
/// q.drain_due(1, &mut due);
/// assert_eq!(due, ["sooner"]);
/// q.drain_due(2, &mut due);
/// assert_eq!(due, ["later"]);
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct CalendarQueue<T> {
    /// `max_delay + 1` slots; an event with delay `d ∈ [1, max_delay]`
    /// scheduled at step `s` lives in slot `(s + d) % slots.len()`, which
    /// cannot collide with the slot currently being drained.
    slots: Vec<Slot<T>>,
    len: usize,
    seq: u64,
}

impl<T> CalendarQueue<T> {
    /// Creates a queue accepting delays in `[1, max_delay]`.
    ///
    /// # Panics
    ///
    /// Panics if `max_delay == 0`.
    #[must_use]
    pub fn new(max_delay: Step) -> Self {
        assert!(max_delay >= 1, "calendar queue requires max_delay >= 1");
        let horizon = usize::try_from(max_delay).expect("max_delay fits usize") + 1;
        CalendarQueue {
            slots: (0..horizon).map(|_| Slot::new()).collect(),
            len: 0,
            seq: 0,
        }
    }

    /// Starts a fresh scheduling epoch: drops every pending event and
    /// rewinds the sequence counter, adjusting the horizon to `max_delay`
    /// while keeping already-allocated slot capacity wherever possible.
    ///
    /// This is the instance boundary of service (chained agreement) runs:
    /// a reset queue is observationally identical to a newly constructed
    /// one — absolute sequence numbers never influence drain order between
    /// epochs because ordering only compares sequences within one slot.
    ///
    /// # Panics
    ///
    /// Panics if `max_delay == 0`.
    pub fn reset(&mut self, max_delay: Step) {
        assert!(max_delay >= 1, "calendar queue requires max_delay >= 1");
        let horizon = usize::try_from(max_delay).expect("max_delay fits usize") + 1;
        for slot in &mut self.slots {
            slot.bulk.clear();
            slot.keyed.clear();
        }
        self.slots.resize_with(horizon, Slot::new);
        self.len = 0;
        self.seq = 0;
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest accepted delay.
    #[must_use]
    pub fn max_delay(&self) -> Step {
        self.slots.len() as Step - 1
    }

    fn slot_index(&self, now: Step, delay: Step) -> usize {
        assert!(
            delay >= 1 && delay <= self.max_delay(),
            "delay {delay} outside [1, {}]",
            self.max_delay()
        );
        ((now + delay) % self.slots.len() as Step) as usize
    }

    /// Schedules `item` for step `now + delay` with an explicit priority.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is outside `[1, max_delay]` — the engine clamps
    /// delays before scheduling, so an out-of-range delay is a bug.
    pub fn schedule(&mut self, now: Step, delay: Step, priority: i64, item: T) {
        let slot = self.slot_index(now, delay);
        self.seq += 1;
        self.slots[slot].keyed.push(Scheduled {
            priority,
            seq: self.seq,
            item,
        });
        self.len += 1;
    }

    /// Moves a whole batch of priority-0 events (already in insertion
    /// order) to step `now + delay`, leaving `items` empty but with its
    /// capacity intact.
    ///
    /// When the target slot is untouched this is a vector swap — no
    /// per-event work at all. Batches land *behind* any bulk events
    /// already in the slot (scheduled at an earlier step, hence earlier
    /// sequences) and refuse slots holding keyed events, falling back to
    /// keyed pushes there so cross-lane ordering stays exact.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is outside `[1, max_delay]`.
    pub fn schedule_bulk(&mut self, now: Step, delay: Step, items: &mut Vec<T>) {
        let slot = self.slot_index(now, delay);
        let slot = &mut self.slots[slot];
        self.len += items.len();
        if slot.keyed.is_empty() {
            self.seq += items.len() as u64;
            if slot.bulk.is_empty() {
                std::mem::swap(&mut slot.bulk, items);
            } else {
                slot.bulk.append(items);
            }
        } else {
            // Keyed events are present with earlier sequences; keep the
            // interleaving explicit.
            for item in items.drain(..) {
                self.seq += 1;
                slot.keyed.push(Scheduled {
                    priority: 0,
                    seq: self.seq,
                    item,
                });
            }
        }
    }

    /// Moves every event due at `step` into `due` (cleared first), in
    /// `(priority, insertion order)` order.
    ///
    /// Bulk-only slots are handed over by a vector swap; mixed slots merge
    /// the two lanes (bulk events sort as priority 0 with
    /// earlier-than-keyed sequence numbers).
    pub fn drain_due(&mut self, step: Step, due: &mut Vec<T>) {
        due.clear();
        let idx = (step % self.slots.len() as Step) as usize;
        let slot = &mut self.slots[idx];
        self.len -= slot.len();
        if slot.keyed.is_empty() {
            std::mem::swap(&mut slot.bulk, due);
            return;
        }
        // Keys are unique (seq strictly increases), so an unstable sort is
        // deterministic here.
        slot.keyed.sort_unstable_by_key(|d| (d.priority, d.seq));
        // Bulk events: priority 0, sequenced before every keyed event in
        // this slot — merge the two ordered lanes.
        due.reserve(slot.len());
        let mut bulk = slot.bulk.drain(..);
        for keyed in slot.keyed.drain(..) {
            if keyed.priority < 0 {
                due.push(keyed.item);
            } else {
                // priority >= 0: all remaining bulk (priority 0, earlier
                // seq) goes first.
                due.extend(&mut bulk);
                due.push(keyed.item);
            }
        }
        due.extend(bulk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut CalendarQueue<T>, step: Step) -> Vec<T> {
        let mut buf = Vec::new();
        q.drain_due(step, &mut buf);
        buf
    }

    #[test]
    fn events_come_out_at_their_step() {
        let mut q = CalendarQueue::new(4);
        q.schedule(0, 1, 0, "a");
        q.schedule(0, 3, 0, "b");
        q.schedule(1, 1, 0, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(drain(&mut q, 1), vec!["a"]);
        assert_eq!(drain(&mut q, 2), vec!["c"]);
        assert_eq!(drain(&mut q, 3), vec!["b"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_step_orders_by_priority_then_insertion() {
        let mut q = CalendarQueue::new(2);
        q.schedule(0, 1, 5, "late-prio");
        q.schedule(0, 1, -1, "first");
        q.schedule(0, 1, 5, "late-prio-2");
        q.schedule(0, 1, 0, "middle");
        assert_eq!(
            drain(&mut q, 1),
            vec!["first", "middle", "late-prio", "late-prio-2"]
        );
    }

    #[test]
    fn bulk_swap_preserves_order_and_capacity() {
        let mut q = CalendarQueue::new(1);
        let mut batch: Vec<u32> = (0..100).collect();
        let cap = batch.capacity();
        q.schedule_bulk(0, 1, &mut batch);
        assert!(batch.is_empty());
        assert_eq!(q.len(), 100);
        let mut out = Vec::new();
        q.drain_due(1, &mut out);
        assert_eq!(out, (0..100).collect::<Vec<u32>>());
        assert!(out.capacity() >= cap);
    }

    #[test]
    fn bulk_after_bulk_appends_in_step_order() {
        let mut q = CalendarQueue::new(3);
        let mut a = vec![1u32, 2];
        let mut b = vec![3u32, 4];
        q.schedule_bulk(0, 2, &mut a); // due at 2
        q.schedule_bulk(1, 1, &mut b); // also due at 2, scheduled later
        assert_eq!(drain(&mut q, 2), vec![1, 2, 3, 4]);
    }

    #[test]
    fn bulk_then_keyed_interleaves_by_priority() {
        let mut q = CalendarQueue::new(2);
        let mut batch = vec![10u32, 11];
        q.schedule_bulk(0, 1, &mut batch); // priority 0, earliest seqs
        q.schedule(0, 1, -1, 1u32); // before the bulk (lower priority)
        q.schedule(0, 1, 0, 12); // priority 0, after the bulk (later seq)
        q.schedule(0, 1, 3, 99); // last
        assert_eq!(drain(&mut q, 1), vec![1, 10, 11, 12, 99]);
    }

    #[test]
    fn keyed_then_bulk_falls_back_to_keyed_lane() {
        let mut q = CalendarQueue::new(2);
        q.schedule(0, 1, 1, 50u32);
        let mut batch = vec![10u32, 11];
        q.schedule_bulk(0, 1, &mut batch); // slot has keyed events already
        assert!(batch.is_empty());
        // Bulk items carry priority 0 < 1, so they still drain first.
        assert_eq!(drain(&mut q, 1), vec![10, 11, 50]);
        assert!(q.is_empty());
    }

    #[test]
    fn horizon_wraps_without_collisions() {
        let mut q = CalendarQueue::new(2);
        for step in 0..100u64 {
            q.schedule(step, 1, 0, step);
            if step >= 1 {
                q.schedule(step - 1, 2, 0, 1000 + step);
            }
            if step >= 1 {
                let due = drain(&mut q, step);
                assert!(due.contains(&(step - 1)));
            }
        }
    }

    #[test]
    fn capacity_is_recycled() {
        let mut q = CalendarQueue::new(1);
        let mut buf = Vec::new();
        for step in 0..50u64 {
            for i in 0..64 {
                q.schedule(step, 1, i, i);
            }
            q.drain_due(step + 1, &mut buf);
            assert_eq!(buf.len(), 64);
            assert!(buf.capacity() >= 64);
        }
    }

    #[test]
    fn reset_clears_pending_and_restarts_the_epoch() {
        let mut q = CalendarQueue::new(3);
        q.schedule(0, 2, 1, 7u32);
        let mut bulk = vec![8u32, 9];
        q.schedule_bulk(0, 1, &mut bulk);
        assert_eq!(q.len(), 3);
        q.reset(3);
        assert!(q.is_empty());
        assert_eq!(q.max_delay(), 3);
        // Post-reset behaviour matches a freshly constructed queue.
        q.schedule(0, 1, 5, 20);
        q.schedule(0, 1, -1, 10);
        assert_eq!(drain(&mut q, 1), vec![10, 20]);
    }

    #[test]
    fn reset_can_change_the_horizon() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(1);
        q.reset(4);
        assert_eq!(q.max_delay(), 4);
        q.schedule(0, 4, 0, 1);
        assert_eq!(drain(&mut q, 4), vec![1]);
        q.reset(2);
        assert_eq!(q.max_delay(), 2);
    }

    #[test]
    #[should_panic(expected = "max_delay >= 1")]
    fn reset_rejects_zero_horizon() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new(2);
        q.reset(0);
    }

    #[test]
    #[should_panic(expected = "outside [1, 3]")]
    fn rejects_out_of_horizon_delay() {
        let mut q = CalendarQueue::new(3);
        q.schedule(0, 4, 0, ());
    }

    #[test]
    #[should_panic(expected = "outside [1, 3]")]
    fn rejects_zero_delay() {
        let mut q = CalendarQueue::new(3);
        q.schedule(0, 0, 0, ());
    }

    #[test]
    #[should_panic(expected = "max_delay >= 1")]
    fn rejects_zero_horizon() {
        let _: CalendarQueue<()> = CalendarQueue::new(0);
    }
}
