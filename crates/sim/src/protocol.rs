//! The node-side protocol interface.
//!
//! A protocol implementation is a deterministic state machine driven by the
//! engine through three callbacks: [`Protocol::on_start`] (once, step 0),
//! [`Protocol::on_step`] (each subsequent step, before deliveries), and
//! [`Protocol::on_message`] (per delivered message). All interaction with
//! the network happens through the [`Context`] handed to each callback.

use std::fmt;

use rand_chacha::ChaCha12Rng;

use crate::ids::{NodeId, Step};
use crate::message::WireSize;

/// A per-node protocol state machine.
///
/// One value of the implementing type exists per *correct* node; Byzantine
/// nodes are played by the run's [`Adversary`](crate::Adversary) instead.
///
/// Determinism contract: implementations must derive all randomness from
/// [`Context::rng`] (the node's private RNG in the paper's model) so that
/// runs replay exactly from a master seed.
pub trait Protocol {
    /// Payload type of the messages this protocol exchanges. `PartialEq`
    /// lets the engine run-length-encode identical payloads when it
    /// coalesces a callback's sends into a batched delivery.
    type Msg: Clone + PartialEq + WireSize + fmt::Debug;
    /// The value a node returns when it terminates.
    type Output: Clone + Eq + fmt::Debug;

    /// Called exactly once, during step 0, before any message flows.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called at the beginning of every step `≥ 1`, before that step's
    /// deliveries. Useful for round-structured protocols; event-driven
    /// protocols can ignore it.
    fn on_step(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called once per message delivered to this node.
    ///
    /// `from` is the authenticated sender identity stamped by the network.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<'_, Self::Msg>);

    /// Called when the engine crashes this node at the start of `step`
    /// (crash–restart fault family, [`crate::CrashPlan`]): the node goes
    /// dark — no callbacks, no deliveries in either direction — until its
    /// restart. A crashing node cannot send, so no [`Context`] is handed
    /// in. Implementations that keep durable state (a checkpoint log) use
    /// this to mark transient state as lost; the default does nothing.
    fn on_crash(&mut self, step: Step) {
        let _ = step;
    }

    /// Called when the engine restarts this node at the end of its dark
    /// window, before that step's regular callbacks. Implementations
    /// restore from durable state and may immediately send catch-up
    /// traffic via `ctx`; the default does nothing, which models a naive
    /// resume with the (stale) in-memory state the node crashed with.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// The node's final output, once it has decided. The engine polls this
    /// after each step; returning `Some` is irreversible as far as metrics
    /// are concerned (the first step at which it is observed is recorded as
    /// the node's decision step).
    fn output(&self) -> Option<Self::Output>;
}

/// Per-callback handle giving a protocol access to its environment: its
/// identity, the system size, the current step, its private RNG, and the
/// network send primitive.
pub struct Context<'a, M> {
    id: NodeId,
    n: usize,
    step: Step,
    rng: &'a mut ChaCha12Rng,
    outbox: &'a mut Vec<(NodeId, M)>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context. Used by the engine; exposed for protocol unit
    /// tests that want to drive state machines directly.
    #[must_use]
    pub fn new(
        id: NodeId,
        n: usize,
        step: Step,
        rng: &'a mut ChaCha12Rng,
        outbox: &'a mut Vec<(NodeId, M)>,
    ) -> Self {
        Context {
            id,
            n,
            step,
            rng,
            outbox,
        }
    }

    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// System size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current step.
    #[must_use]
    pub fn step(&self) -> Step {
        self.step
    }

    /// The node's private random number generator.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }

    /// Sends `msg` to `to`. Delivery happens at a later step chosen by the
    /// network (exactly the next step in synchronous mode).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range — that is a protocol bug, not a
    /// runtime condition.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            to.index() < self.n,
            "send target {to} out of range (n={})",
            self.n
        );
        self.outbox.push((to, msg));
    }

    /// Sends clones of `msg` to every node in `targets`.
    pub fn send_many<I>(&mut self, targets: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Clone,
    {
        for to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Number of messages queued so far in this callback (mostly useful in
    /// tests).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.outbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::node_rng;

    #[test]
    fn context_send_collects_messages() {
        let mut rng = node_rng(1, 0);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut ctx = Context::new(NodeId::from_index(0), 4, 2, &mut rng, &mut outbox);
        assert_eq!(ctx.id(), NodeId::from_index(0));
        assert_eq!(ctx.n(), 4);
        assert_eq!(ctx.step(), 2);
        ctx.send(NodeId::from_index(3), 9);
        ctx.send_many([NodeId::from_index(1), NodeId::from_index(2)], 5);
        assert_eq!(ctx.queued(), 3);
        #[allow(clippy::drop_non_drop)] // release the outbox borrow
        drop(ctx);
        assert_eq!(
            outbox,
            vec![
                (NodeId::from_index(3), 9),
                (NodeId::from_index(1), 5),
                (NodeId::from_index(2), 5)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn context_send_rejects_out_of_range() {
        let mut rng = node_rng(1, 0);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut ctx = Context::new(NodeId::from_index(0), 4, 0, &mut rng, &mut outbox);
        ctx.send(NodeId::from_index(4), 1);
    }

    #[test]
    fn context_rng_is_usable() {
        use rand::RngCore;
        let mut rng = node_rng(1, 0);
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut ctx = Context::new(NodeId::from_index(0), 4, 0, &mut rng, &mut outbox);
        let a = ctx.rng().next_u64();
        let b = ctx.rng().next_u64();
        assert_ne!(a, b);
    }
}
