//! Read-only run instrumentation: the [`Observer`] trait and stock sinks.
//!
//! Observers unify the two instrumentation styles the experiments
//! previously wired by hand — end-of-run state inspection closures
//! (`run_inspect`) and transcript recording for `fba_core::trace`-style
//! analysis — behind one composable interface with three hooks:
//!
//! * [`Observer::on_step`] — once per engine step, with every envelope
//!   sent during it (the same view a full-information adversary gets);
//! * [`Observer::on_decision`] — the first time each correct node
//!   produces an output;
//! * [`Observer::on_final`] — once per surviving correct node when the
//!   run ends (the old `run_inspect` hook).
//!
//! Observers are strictly read-only: they cannot send messages, touch
//! node state, or consume randomness, so attaching any combination of
//! them never changes a run's outcome (the determinism contract in the
//! crate docs). Compose sinks with tuples: `(&mut a, &mut b)` is itself
//! an observer driving both.

use crate::ids::{NodeId, Step};
use crate::message::Envelope;
use crate::protocol::Protocol;

/// A read-only hook set driven by [`run_observed`](crate::run_observed).
///
/// All methods default to no-ops, so sinks implement only what they
/// watch.
pub trait Observer<P: Protocol> {
    /// Called once per step after all of the step's sends (correct and
    /// corrupt alike) are known, before they are handed to the network.
    fn on_step(&mut self, step: Step, sends: &[Envelope<P::Msg>]) {
        let _ = (step, sends);
    }

    /// Called when correct node `id` first produces an output, during the
    /// step it is observed deciding.
    fn on_decision(&mut self, id: NodeId, step: Step, output: &P::Output) {
        let _ = (id, step, output);
    }

    /// Called once per surviving correct node after the run's last step —
    /// the state-inspection hook experiments use to read protocol
    /// internals (e.g. candidate-list sizes for Lemma 4).
    fn on_final(&mut self, id: NodeId, node: &P) {
        let _ = (id, node);
    }

    /// Whether the engine must call [`Observer::on_step`] each step.
    /// Defaults to `true` (always correct); observers whose `on_step` is
    /// the default no-op may return `false` so the engine can skip
    /// materialising the per-envelope send view on batched fast paths.
    /// Must return `true` whenever `on_step` is overridden.
    fn wants_step_sends(&self) -> bool {
        true
    }
}

/// The do-nothing observer (used by plain [`run`](crate::run)).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl<P: Protocol> Observer<P> for NullObserver {
    fn wants_step_sends(&self) -> bool {
        false
    }
}

impl<P: Protocol, O: Observer<P> + ?Sized> Observer<P> for &mut O {
    fn on_step(&mut self, step: Step, sends: &[Envelope<P::Msg>]) {
        (**self).on_step(step, sends);
    }
    fn on_decision(&mut self, id: NodeId, step: Step, output: &P::Output) {
        (**self).on_decision(id, step, output);
    }
    fn on_final(&mut self, id: NodeId, node: &P) {
        (**self).on_final(id, node);
    }
    fn wants_step_sends(&self) -> bool {
        (**self).wants_step_sends()
    }
}

impl<P: Protocol, A: Observer<P>, B: Observer<P>> Observer<P> for (A, B) {
    fn on_step(&mut self, step: Step, sends: &[Envelope<P::Msg>]) {
        self.0.on_step(step, sends);
        self.1.on_step(step, sends);
    }
    fn on_decision(&mut self, id: NodeId, step: Step, output: &P::Output) {
        self.0.on_decision(id, step, output);
        self.1.on_decision(id, step, output);
    }
    fn on_final(&mut self, id: NodeId, node: &P) {
        self.0.on_final(id, node);
        self.1.on_final(id, node);
    }
    fn wants_step_sends(&self) -> bool {
        self.0.wants_step_sends() || self.1.wants_step_sends()
    }
}

/// Adapts a `FnMut(NodeId, &P)` closure into an end-of-run inspector —
/// exactly the old `run_inspect` contract.
#[derive(Clone, Debug)]
pub struct FinalInspect<F>(pub F);

impl<P: Protocol, F: FnMut(NodeId, &P)> Observer<P> for FinalInspect<F> {
    fn on_final(&mut self, id: NodeId, node: &P) {
        (self.0)(id, node);
    }
    fn wants_step_sends(&self) -> bool {
        false
    }
}

/// Collects every envelope sent during the run — the observer-side
/// equivalent of `EngineConfig::record_transcript`, feeding the same
/// trace analyses (`fba_core::trace`) without an engine flag.
#[derive(Clone, Debug)]
pub struct TranscriptSink<M> {
    /// Every envelope sent, in send order.
    pub transcript: Vec<Envelope<M>>,
}

impl<M> Default for TranscriptSink<M> {
    fn default() -> Self {
        TranscriptSink {
            transcript: Vec::new(),
        }
    }
}

impl<M> TranscriptSink<M> {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<P: Protocol> Observer<P> for TranscriptSink<P::Msg> {
    fn on_step(&mut self, _step: Step, sends: &[Envelope<P::Msg>]) {
        self.transcript.extend(sends.iter().cloned());
    }
}

/// Records `(node, step)` decision events in the order the engine
/// observed them.
#[derive(Clone, Debug, Default)]
pub struct DecisionLog {
    /// `(node, step)` pairs, in observation order.
    pub decisions: Vec<(NodeId, Step)>,
}

impl DecisionLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<P: Protocol> Observer<P> for DecisionLog {
    fn on_decision(&mut self, id: NodeId, step: Step, _output: &P::Output) {
        self.decisions.push((id, step));
    }
    fn wants_step_sends(&self) -> bool {
        false
    }
}
