//! Data-driven run descriptions: adversary and network specifications.
//!
//! A [`AdversarySpec`] names a Byzantine strategy as *data* — parseable
//! from the command line (`silent`, `flood`, `corner:512`, …), printable
//! back to the same grammar, and hashable into sweep grids — instead of a
//! concrete adversary struct wired by hand. The protocol crates register
//! constructors that turn a spec into a live adversary (see
//! `fba_core::adversary::AerAdversary::from_spec` for the AER registry);
//! this module owns only the specification language plus the two
//! protocol-independent strategies ([`NoAdversary`] and
//! [`SilentAdversary`]) every phase supports.
//!
//! [`NetworkSpec`] does the same for the timing model: `sync` or
//! `async:<max_delay>`.
//!
//! Grammar (round-trips through [`std::fmt::Display`] /
//! [`std::str::FromStr`]):
//!
//! | spec | strategy | parameters |
//! |---|---|---|
//! | `none` | no corruption | — |
//! | `silent` | fail-stop silence | `silent:<t>` overrides the fault budget |
//! | `random-flood` | blind push spraying | `random-flood:<rate>,<steps>` |
//! | `flood` | coherent push flooding of one bogus string | — |
//! | `equivocate` | per-victim fabrications | `equivocate:<strings>` |
//! | `pull-flood` | pull-request spraying | `pull-flood:<rate>,<steps>` |
//! | `bad-string` | full Lemma 7 campaign | — |
//! | `corner` | Lemma 6 cornering/overload | `corner:<label_scan>` |
//! | `sched` | composed fault schedule | `sched:[a..b]spec;[b..c]spec;…` |
//!
//! A **composed fault schedule** assigns a different strategy to each
//! step window: `sched:[0..5]silent:9;[5..12]flood;[12..]corner:512`
//! runs the silent adversary for steps 0–4, the push flood for steps
//! 5–11, and the cornering attack from step 12 on. Windows are
//! half-open `[start..end)`, must be non-empty, strictly ordered and
//! non-overlapping (gaps are fine: no strategy acts there), and only
//! the last window may be open-ended (`[12..]`). Schedules cannot nest.
//! See [`ScheduleSpec`] for the data-level form and the validation
//! rules; protocol registries dispatch the active window's strategy at
//! each step (e.g. `fba_core::adversary::Composed` for AER).

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use rand_chacha::ChaCha12Rng;

use crate::adversary::{Adversary, NoAdversary, Outbox, SilentAdversary};
use crate::ids::{NodeId, Step};
use crate::message::Envelope;

/// A step window of a composed fault schedule: half-open `[start..end)`,
/// or open-ended `[start..]` when `end` is `None`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Window {
    /// First step (inclusive) the window covers.
    pub start: Step,
    /// First step past the window (exclusive); `None` = to the end of
    /// the run.
    pub end: Option<Step>,
}

impl Window {
    /// A bounded window `[start..end)`.
    #[must_use]
    pub fn bounded(start: Step, end: Step) -> Self {
        Window {
            start,
            end: Some(end),
        }
    }

    /// An open-ended window `[start..]`.
    #[must_use]
    pub fn open(start: Step) -> Self {
        Window { start, end: None }
    }

    /// Whether `step` falls inside the window.
    #[must_use]
    pub fn contains(&self, step: Step) -> bool {
        step >= self.start && self.end.is_none_or(|end| step < end)
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(end) => write!(f, "[{}..{}]", self.start, end),
            None => write!(f, "[{}..]", self.start),
        }
    }
}

/// A composed fault schedule: one strategy per step window (see the
/// module docs for the grammar and `sched:` syntax).
///
/// Construction validates the window structure, so every value of this
/// type is well-formed: at least one window, every window non-empty,
/// windows strictly ordered and non-overlapping, only the last window
/// open-ended, and no nested schedules.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScheduleSpec {
    windows: Vec<(Window, AdversarySpec)>,
}

/// Why a [`ScheduleSpec`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The schedule has no windows.
    Empty,
    /// A window's strategy is itself a schedule.
    Nested,
    /// A bounded window covers no steps (`end <= start`).
    EmptyWindow(Window),
    /// A window starts before the previous window ends (overlapping or
    /// out of order).
    Unordered(Window),
    /// A window follows an open-ended window (which must be last).
    OpenNotLast(Window),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Empty => write!(f, "schedule has no windows"),
            ScheduleError::Nested => write!(f, "schedules cannot nest"),
            ScheduleError::EmptyWindow(w) => write!(f, "window {w} covers no steps"),
            ScheduleError::Unordered(w) => {
                write!(f, "window {w} overlaps or precedes an earlier window")
            }
            ScheduleError::OpenNotLast(w) => {
                write!(f, "window {w} follows an open-ended window")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

impl ScheduleSpec {
    /// Builds a schedule from `(window, strategy)` pairs.
    ///
    /// # Errors
    ///
    /// Rejects empty schedules, nested schedules, empty windows, and
    /// overlapping / unordered / non-final open windows.
    pub fn new(windows: Vec<(Window, AdversarySpec)>) -> Result<Self, ScheduleError> {
        if windows.is_empty() {
            return Err(ScheduleError::Empty);
        }
        // `prev_end`: exclusive end of the previous window; `None` once an
        // open-ended window has been seen (nothing may follow it).
        let mut prev_end: Option<Step> = Some(0);
        for (i, (w, spec)) in windows.iter().enumerate() {
            if matches!(spec, AdversarySpec::Sched(_)) {
                return Err(ScheduleError::Nested);
            }
            let Some(end) = prev_end else {
                return Err(ScheduleError::OpenNotLast(*w));
            };
            if i > 0 && w.start < end {
                return Err(ScheduleError::Unordered(*w));
            }
            if let Some(end) = w.end {
                if end <= w.start {
                    return Err(ScheduleError::EmptyWindow(*w));
                }
            }
            prev_end = w.end;
        }
        Ok(ScheduleSpec { windows })
    }

    /// The `(window, strategy)` pairs, in step order.
    #[must_use]
    pub fn windows(&self) -> &[(Window, AdversarySpec)] {
        &self.windows
    }

    /// The strategy active at `step`, if any window covers it.
    #[must_use]
    pub fn active_at(&self, step: Step) -> Option<(&Window, &AdversarySpec)> {
        self.windows
            .iter()
            .find(|(w, _)| w.contains(step))
            .map(|(w, s)| (w, s))
    }
}

impl fmt::Display for ScheduleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sched:")?;
        for (i, (w, spec)) in self.windows.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{w}{spec}")?;
        }
        Ok(())
    }
}

/// A Byzantine strategy named as data (see the module docs for the
/// grammar). Protocol crates map specs to concrete adversaries; the
/// simulator itself can instantiate the protocol-independent subset via
/// [`AdversarySpec::generic`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AdversarySpec {
    /// No node is corrupted (`none`).
    None,
    /// `t` corrupted nodes stay silent (`silent` / `silent:<t>`); `None`
    /// uses the scenario's fault budget.
    Silent {
        /// Explicit corruption count, overriding the scenario default.
        t: Option<usize>,
    },
    /// Blind flooding with fresh random strings
    /// (`random-flood:<rate>,<steps>`).
    RandomFlood {
        /// Pushes per corrupt node per step.
        rate: usize,
        /// Steps to keep flooding.
        steps: Step,
    },
    /// Coherent push flooding of one bogus string through legitimate
    /// quorum slots (`flood`).
    PushFlood,
    /// Equivocation: several fabricated strings per corrupt node
    /// (`equivocate:<strings>`).
    Equivocate {
        /// Distinct fabrications per corrupt node.
        strings: usize,
    },
    /// Pull-request spraying against the forward-once filter
    /// (`pull-flood:<rate>,<steps>`).
    PullFlood {
        /// Requests per corrupt node per step.
        rate: u64,
        /// Steps to keep flooding.
        steps: Step,
    },
    /// The full bad-string campaign: push, route, relay and answer for a
    /// coherent bogus string, rushing (`bad-string`).
    BadString,
    /// The cornering/overload attack under adversarial scheduling
    /// (`corner:<label_scan>`).
    Corner {
        /// Labels scanned per corrupt node when aiming poll lists.
        label_scan: u64,
    },
    /// A composed fault schedule: a different strategy per step window
    /// (`sched:[0..5]silent:9;[5..12]flood;[12..]corner:512`).
    Sched(ScheduleSpec),
}

/// Default rate for `random-flood` when no parameters are given.
pub const DEFAULT_FLOOD_RATE: usize = 16;
/// Default duration (steps) for `random-flood` / `pull-flood`.
pub const DEFAULT_FLOOD_STEPS: Step = 4;
/// Default fabrications per corrupt node for `equivocate`.
pub const DEFAULT_EQUIVOCATE_STRINGS: usize = 8;
/// Default per-node request rate for `pull-flood`.
pub const DEFAULT_PULL_FLOOD_RATE: u64 = 16;
/// Default label-scan budget for `corner`.
pub const DEFAULT_CORNER_SCAN: u64 = 256;

impl AdversarySpec {
    /// Every spec name with its parameter grammar and a one-line
    /// description — the registry backing CLI usage messages.
    pub const CATALOGUE: &'static [(&'static str, &'static str)] = &[
        ("none", "no corruption"),
        ("silent[:t]", "t corrupted nodes stay silent"),
        ("random-flood[:rate,steps]", "blind random-string pushing"),
        ("flood", "coherent push flooding of one bogus string"),
        ("equivocate[:strings]", "distinct fabrications per victim"),
        ("pull-flood[:rate,steps]", "pull-request spraying"),
        ("bad-string", "full campaign for a bogus string (rushing)"),
        ("corner[:label_scan]", "cornering/overload attack (rushing)"),
        (
            "sched:[a..b]spec;[b..]spec",
            "composed fault schedule: one strategy per step window",
        ),
    ];

    /// The spec's bare name (no parameters).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AdversarySpec::None => "none",
            AdversarySpec::Silent { .. } => "silent",
            AdversarySpec::RandomFlood { .. } => "random-flood",
            AdversarySpec::PushFlood => "flood",
            AdversarySpec::Equivocate { .. } => "equivocate",
            AdversarySpec::PullFlood { .. } => "pull-flood",
            AdversarySpec::BadString => "bad-string",
            AdversarySpec::Corner { .. } => "corner",
            AdversarySpec::Sched(_) => "sched",
        }
    }

    /// Whether the strategy is protocol-independent (instantiable for any
    /// message type via [`AdversarySpec::generic`]).
    #[must_use]
    pub fn is_generic(&self) -> bool {
        matches!(self, AdversarySpec::None | AdversarySpec::Silent { .. })
    }

    /// Instantiates the protocol-independent subset (`none` / `silent`),
    /// or `None` for protocol-specific strategies. `default_t` is the
    /// corruption count used when the spec does not carry its own.
    #[must_use]
    pub fn generic(&self, default_t: usize) -> Option<GenericAdversary> {
        match self {
            AdversarySpec::None => Some(GenericAdversary::None(NoAdversary)),
            AdversarySpec::Silent { t } => Some(GenericAdversary::Silent(SilentAdversary::new(
                t.unwrap_or(default_t),
            ))),
            _ => None,
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::None => write!(f, "none"),
            AdversarySpec::Silent { t: None } => write!(f, "silent"),
            AdversarySpec::Silent { t: Some(t) } => write!(f, "silent:{t}"),
            AdversarySpec::RandomFlood { rate, steps } => {
                write!(f, "random-flood:{rate},{steps}")
            }
            AdversarySpec::PushFlood => write!(f, "flood"),
            AdversarySpec::Equivocate { strings } => write!(f, "equivocate:{strings}"),
            AdversarySpec::PullFlood { rate, steps } => write!(f, "pull-flood:{rate},{steps}"),
            AdversarySpec::BadString => write!(f, "bad-string"),
            AdversarySpec::Corner { label_scan } => write!(f, "corner:{label_scan}"),
            AdversarySpec::Sched(schedule) => write!(f, "{schedule}"),
        }
    }
}

/// A malformed [`AdversarySpec`] / [`NetworkSpec`] string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    /// The offending input.
    pub input: String,
    /// What a valid spec looks like.
    pub expected: &'static str,
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown spec `{}` (expected {})",
            self.input, self.expected
        )
    }
}

impl std::error::Error for ParseSpecError {}

fn spec_error(input: &str, expected: &'static str) -> ParseSpecError {
    ParseSpecError {
        input: input.to_string(),
        expected,
    }
}

/// Splits `name[:params]`, then `params` on commas.
///
/// Rejects (returns `None` for) malformed shapes the grammar must not
/// silently accept: a trailing colon with no parameters (`silent:`), a
/// trailing or doubled comma yielding an empty parameter (`silent:9,`),
/// and embedded whitespace anywhere in the spec (`silent: 9`). Callers
/// turn `None` into the usual usage error.
fn split_spec(s: &str) -> Option<(&str, Vec<&str>)> {
    if s.is_empty() || s.chars().any(char::is_whitespace) {
        return None;
    }
    match s.split_once(':') {
        Some((name, params)) => {
            let params: Vec<&str> = params.split(',').collect();
            if params.iter().any(|p| p.is_empty()) {
                return None;
            }
            Some((name, params))
        }
        None => Some((s, Vec::new())),
    }
}

const ADVERSARY_EXPECTED: &str =
    "none | silent[:t] | random-flood[:rate,steps] | flood | equivocate[:strings] | \
     pull-flood[:rate,steps] | bad-string | corner[:label_scan] | \
     sched:[a..b]spec;[b..]spec (windows ordered, non-overlapping, only the last open)";

/// Parses one schedule window `[a..b]spec` / `[a..]spec`.
fn parse_window(part: &str) -> Option<(Window, AdversarySpec)> {
    let body = part.strip_prefix('[')?;
    let (range, spec) = body.split_once(']')?;
    let (start, end) = range.split_once("..")?;
    let start: Step = start.parse().ok()?;
    let end: Option<Step> = if end.is_empty() {
        None
    } else {
        Some(end.parse().ok()?)
    };
    // Inner specs parse through the full grammar; nesting is rejected by
    // `ScheduleSpec::new`.
    let spec: AdversarySpec = spec.parse().ok()?;
    Some((Window { start, end }, spec))
}

impl FromStr for AdversarySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || spec_error(s, ADVERSARY_EXPECTED);
        // `sched:` bodies contain colons and commas of their inner specs,
        // so they bypass the name/params split.
        if let Some(body) = s.strip_prefix("sched:") {
            if body.chars().any(char::is_whitespace) {
                return Err(err());
            }
            let windows = body
                .split(';')
                .map(parse_window)
                .collect::<Option<Vec<_>>>()
                .ok_or_else(err)?;
            return ScheduleSpec::new(windows)
                .map(AdversarySpec::Sched)
                .map_err(|_| err());
        }
        let (name, params) = split_spec(s).ok_or_else(err)?;
        let parse_one = |params: &[&str]| -> Result<u64, ParseSpecError> {
            match params {
                [v] => v.parse().map_err(|_| err()),
                _ => Err(err()),
            }
        };
        let parse_two = |params: &[&str]| -> Result<(u64, u64), ParseSpecError> {
            match params {
                [a, b] => Ok((a.parse().map_err(|_| err())?, b.parse().map_err(|_| err())?)),
                _ => Err(err()),
            }
        };
        match (name, params.as_slice()) {
            ("none", []) => Ok(AdversarySpec::None),
            ("silent", []) => Ok(AdversarySpec::Silent { t: None }),
            ("silent", p) => Ok(AdversarySpec::Silent {
                t: Some(parse_one(p)? as usize),
            }),
            ("random-flood", []) => Ok(AdversarySpec::RandomFlood {
                rate: DEFAULT_FLOOD_RATE,
                steps: DEFAULT_FLOOD_STEPS,
            }),
            ("random-flood", p) => {
                let (rate, steps) = parse_two(p)?;
                Ok(AdversarySpec::RandomFlood {
                    rate: rate as usize,
                    steps,
                })
            }
            ("flood" | "push-flood", []) => Ok(AdversarySpec::PushFlood),
            ("equivocate", []) => Ok(AdversarySpec::Equivocate {
                strings: DEFAULT_EQUIVOCATE_STRINGS,
            }),
            ("equivocate", p) => Ok(AdversarySpec::Equivocate {
                strings: parse_one(p)? as usize,
            }),
            ("pull-flood", []) => Ok(AdversarySpec::PullFlood {
                rate: DEFAULT_PULL_FLOOD_RATE,
                steps: DEFAULT_FLOOD_STEPS,
            }),
            ("pull-flood", p) => {
                let (rate, steps) = parse_two(p)?;
                Ok(AdversarySpec::PullFlood { rate, steps })
            }
            ("bad-string", []) => Ok(AdversarySpec::BadString),
            ("corner", []) => Ok(AdversarySpec::Corner {
                label_scan: DEFAULT_CORNER_SCAN,
            }),
            ("corner", p) => Ok(AdversarySpec::Corner {
                label_scan: parse_one(p)?,
            }),
            _ => Err(err()),
        }
    }
}

/// The timing model of a run, as data: `sync` or `async:<max_delay>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NetworkSpec {
    /// Synchronous timing: every message is delivered the next step.
    Sync,
    /// Asynchronous timing: the adversary may delay deliveries up to
    /// `max_delay` steps and reorder within steps.
    Async {
        /// The reliability bound on adversarial delay (≥ 1).
        max_delay: Step,
    },
}

impl NetworkSpec {
    /// The delay bound: 1 for synchronous timing.
    #[must_use]
    pub fn max_delay(&self) -> Step {
        match self {
            NetworkSpec::Sync => 1,
            NetworkSpec::Async { max_delay } => (*max_delay).max(1),
        }
    }

    /// Whether the spec is asynchronous.
    #[must_use]
    pub fn is_async(&self) -> bool {
        matches!(self, NetworkSpec::Async { .. })
    }
}

impl fmt::Display for NetworkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkSpec::Sync => write!(f, "sync"),
            NetworkSpec::Async { max_delay } => write!(f, "async:{max_delay}"),
        }
    }
}

impl FromStr for NetworkSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let expected = "sync | async[:max_delay]";
        let (name, params) = split_spec(s).ok_or_else(|| spec_error(s, expected))?;
        match (name, params.as_slice()) {
            ("sync", []) => Ok(NetworkSpec::Sync),
            ("async", []) => Ok(NetworkSpec::Async { max_delay: 1 }),
            ("async", [d]) => {
                let max_delay: Step = d.parse().map_err(|_| spec_error(s, expected))?;
                if max_delay == 0 {
                    return Err(spec_error(s, expected));
                }
                Ok(NetworkSpec::Async { max_delay })
            }
            _ => Err(spec_error(s, expected)),
        }
    }
}

/// The protocol-independent adversaries, instantiable for any message
/// type (see [`AdversarySpec::generic`]). Used by phases whose corrupt
/// behaviour is limited to silence — the almost-everywhere substrate and
/// the baseline protocols.
#[derive(Clone, Copy, Debug)]
pub enum GenericAdversary {
    /// No corruption.
    None(NoAdversary),
    /// Fail-stop silence.
    Silent(SilentAdversary),
}

impl<M: Clone> Adversary<M> for GenericAdversary {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        match self {
            GenericAdversary::None(a) => Adversary::<M>::corrupt(a, n, rng),
            GenericAdversary::Silent(a) => Adversary::<M>::corrupt(a, n, rng),
        }
    }

    fn act(&mut self, step: Step, view: Option<&[Envelope<M>]>, out: &mut Outbox<'_, M>) {
        match self {
            GenericAdversary::None(a) => a.act(step, view, out),
            GenericAdversary::Silent(a) => a.act(step, view, out),
        }
    }

    fn schedules(&self) -> bool {
        match self {
            GenericAdversary::None(a) => Adversary::<M>::schedules(a),
            GenericAdversary::Silent(a) => Adversary::<M>::schedules(a),
        }
    }

    fn observes(&self) -> bool {
        match self {
            GenericAdversary::None(a) => Adversary::<M>::observes(a),
            GenericAdversary::Silent(a) => Adversary::<M>::observes(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_specs_round_trip_display_and_parse() {
        let specs = [
            AdversarySpec::None,
            AdversarySpec::Silent { t: None },
            AdversarySpec::Silent { t: Some(12) },
            AdversarySpec::RandomFlood { rate: 8, steps: 3 },
            AdversarySpec::PushFlood,
            AdversarySpec::Equivocate { strings: 6 },
            AdversarySpec::PullFlood { rate: 50, steps: 1 },
            AdversarySpec::BadString,
            AdversarySpec::Corner { label_scan: 512 },
        ];
        for spec in specs {
            let shown = spec.to_string();
            assert_eq!(shown.parse::<AdversarySpec>().unwrap(), spec, "{shown}");
        }
    }

    #[test]
    fn bare_names_parse_with_defaults() {
        assert_eq!(
            "random-flood".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::RandomFlood {
                rate: DEFAULT_FLOOD_RATE,
                steps: DEFAULT_FLOOD_STEPS
            }
        );
        assert_eq!(
            "corner".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::Corner {
                label_scan: DEFAULT_CORNER_SCAN
            }
        );
        assert_eq!(
            "push-flood".parse::<AdversarySpec>().unwrap(),
            AdversarySpec::PushFlood,
            "flood alias"
        );
    }

    #[test]
    fn malformed_adversaries_are_rejected() {
        for bad in ["martian", "silent:x", "random-flood:1", "corner:1,2", ""] {
            assert!(bad.parse::<AdversarySpec>().is_err(), "{bad}");
        }
        let err = "martian".parse::<AdversarySpec>().unwrap_err();
        assert!(err.to_string().contains("martian"));
        assert!(err.to_string().contains("corner"));
    }

    #[test]
    fn trailing_and_empty_params_are_rejected() {
        // The split_spec hardening: these used to reach the per-name
        // parameter matchers (or worse, pass an empty parameter through);
        // all must fail with the usage error now.
        for bad in [
            "silent:",
            "silent:9,",
            "silent:,9",
            "silent: 9",
            " silent",
            "silent ",
            "silent\t:9",
            "random-flood:16,,4",
            "pull-flood:16,4,",
            "corner:",
            "none:",
            "flood:",
        ] {
            assert!(bad.parse::<AdversarySpec>().is_err(), "{bad:?} must fail");
        }
        for bad in ["async:", "async:2,", "sync ", " sync", "async: 2"] {
            assert!(bad.parse::<NetworkSpec>().is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn schedules_round_trip_display_and_parse() {
        let sched = AdversarySpec::Sched(
            ScheduleSpec::new(vec![
                (Window::bounded(0, 5), AdversarySpec::Silent { t: Some(9) }),
                (Window::bounded(5, 12), AdversarySpec::PushFlood),
                (Window::open(12), AdversarySpec::Corner { label_scan: 512 }),
            ])
            .expect("valid schedule"),
        );
        let shown = sched.to_string();
        assert_eq!(shown, "sched:[0..5]silent:9;[5..12]flood;[12..]corner:512");
        assert_eq!(shown.parse::<AdversarySpec>().unwrap(), sched);
        assert_eq!(sched.name(), "sched");

        // Single open window, parameterless inner spec.
        let single = "sched:[0..]bad-string".parse::<AdversarySpec>().unwrap();
        let AdversarySpec::Sched(schedule) = &single else {
            panic!("expected a schedule");
        };
        assert_eq!(schedule.windows().len(), 1);
        assert_eq!(schedule.windows()[0].1, AdversarySpec::BadString);
        assert_eq!(single.to_string().parse::<AdversarySpec>().unwrap(), single);

        // Gaps between windows are allowed (no strategy acts there).
        let gapped = "sched:[0..2]flood;[7..9]silent".parse::<AdversarySpec>();
        assert!(gapped.is_ok(), "gaps are valid: {gapped:?}");
    }

    #[test]
    fn schedule_windows_report_the_active_strategy() {
        let schedule = ScheduleSpec::new(vec![
            (Window::bounded(0, 3), AdversarySpec::Silent { t: None }),
            (Window::open(5), AdversarySpec::PushFlood),
        ])
        .expect("valid");
        assert_eq!(
            schedule.active_at(0).map(|(_, s)| s),
            Some(&AdversarySpec::Silent { t: None })
        );
        assert_eq!(
            schedule.active_at(2).map(|(_, s)| s),
            Some(&AdversarySpec::Silent { t: None })
        );
        assert!(schedule.active_at(3).is_none(), "gap step");
        assert!(schedule.active_at(4).is_none(), "gap step");
        assert_eq!(
            schedule.active_at(100).map(|(_, s)| s),
            Some(&AdversarySpec::PushFlood)
        );
        assert!(Window::bounded(2, 4).contains(2));
        assert!(!Window::bounded(2, 4).contains(4), "half-open");
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        // Structural errors via the constructor…
        assert_eq!(
            ScheduleSpec::new(Vec::new()).unwrap_err(),
            ScheduleError::Empty
        );
        assert_eq!(
            ScheduleSpec::new(vec![(Window::bounded(3, 3), AdversarySpec::None)]).unwrap_err(),
            ScheduleError::EmptyWindow(Window::bounded(3, 3))
        );
        assert_eq!(
            ScheduleSpec::new(vec![
                (Window::bounded(0, 5), AdversarySpec::None),
                (Window::bounded(3, 8), AdversarySpec::PushFlood),
            ])
            .unwrap_err(),
            ScheduleError::Unordered(Window::bounded(3, 8))
        );
        assert_eq!(
            ScheduleSpec::new(vec![
                (Window::open(0), AdversarySpec::None),
                (Window::bounded(5, 8), AdversarySpec::PushFlood),
            ])
            .unwrap_err(),
            ScheduleError::OpenNotLast(Window::bounded(5, 8))
        );
        let inner = ScheduleSpec::new(vec![(Window::open(0), AdversarySpec::None)]).unwrap();
        assert_eq!(
            ScheduleSpec::new(vec![(Window::open(0), AdversarySpec::Sched(inner))]).unwrap_err(),
            ScheduleError::Nested
        );

        // …and the same shapes (plus syntax noise) through the parser.
        for bad in [
            "sched:",
            "sched:[0..5]",
            "sched:[0..5]martian",
            "sched:[5..5]silent",
            "sched:[0..5]silent;[3..8]flood", // overlapping
            "sched:[5..9]silent;[0..3]flood", // unordered
            "sched:[0..]silent;[9..12]flood", // open window not last
            "sched:[0..5]silent:;[5..]flood", // inner trailing colon
            "sched:[0..5]sched:[0..2]silent", // nested
            "sched:[0..5] silent",            // whitespace
            "sched:[a..5]silent",             // non-numeric bound
            "sched:0..5silent",               // missing brackets
            "sched:[0..5]silent;;[5..]flood", // empty window entry
        ] {
            assert!(bad.parse::<AdversarySpec>().is_err(), "{bad:?} must fail");
        }
        let err = "sched:[0..5]silent;[3..8]flood"
            .parse::<AdversarySpec>()
            .unwrap_err();
        assert!(err.to_string().contains("sched"), "{err}");
    }

    #[test]
    fn network_specs_round_trip() {
        for spec in [
            NetworkSpec::Sync,
            NetworkSpec::Async { max_delay: 1 },
            NetworkSpec::Async { max_delay: 3 },
        ] {
            assert_eq!(spec.to_string().parse::<NetworkSpec>().unwrap(), spec);
        }
        assert_eq!(
            "async".parse::<NetworkSpec>().unwrap(),
            NetworkSpec::Async { max_delay: 1 }
        );
        assert!("async:0".parse::<NetworkSpec>().is_err());
        assert!("bluetooth".parse::<NetworkSpec>().is_err());
        assert_eq!(NetworkSpec::Sync.max_delay(), 1);
        assert_eq!(NetworkSpec::Async { max_delay: 4 }.max_delay(), 4);
        assert!(NetworkSpec::Async { max_delay: 4 }.is_async());
        assert!(!NetworkSpec::Sync.is_async());
    }

    #[test]
    fn generic_covers_exactly_the_protocol_independent_specs() {
        assert!(AdversarySpec::None.generic(3).is_some());
        assert!(AdversarySpec::Silent { t: None }.generic(3).is_some());
        assert!(AdversarySpec::PushFlood.generic(3).is_none());
        assert!(AdversarySpec::BadString.generic(3).is_none());
        let silent = AdversarySpec::Silent { t: Some(5) }.generic(3).unwrap();
        match silent {
            GenericAdversary::Silent(s) => assert_eq!(s.t, 5),
            GenericAdversary::None(_) => panic!("expected silent"),
        }
        let defaulted = AdversarySpec::Silent { t: None }.generic(3).unwrap();
        match defaulted {
            GenericAdversary::Silent(s) => assert_eq!(s.t, 3),
            GenericAdversary::None(_) => panic!("expected silent"),
        }
    }

    #[test]
    fn catalogue_names_match_parse() {
        for (grammar, _) in AdversarySpec::CATALOGUE {
            let bare = grammar.split('[').next().unwrap().trim_end_matches(':');
            // Schedules have no bare form (windows are mandatory); a
            // representative schedule stands in for the catalogue row.
            let text = if *bare == *"sched" {
                "sched:[0..]none".to_string()
            } else {
                bare.to_string()
            };
            let spec = text.parse::<AdversarySpec>().unwrap();
            assert!(grammar.starts_with(spec.name()));
        }
    }
}
