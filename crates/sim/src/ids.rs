//! Node identifiers and discrete simulation time.

use std::fmt;

/// Identifier of a node in the simulated network.
///
/// Nodes are indexed `0..n` where `n` is the system size; the paper writes
/// this set as `[n]`. `NodeId` is a thin newtype over the index so that node
/// identities cannot be confused with other integers (quorum sizes, labels,
/// counters) at compile time.
///
/// ```
/// use fba_sim::NodeId;
///
/// let x = NodeId::from_index(7);
/// assert_eq!(x.index(), 7);
/// assert_eq!(format!("{x}"), "n7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a `0..n` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (systems larger than
    /// 2³² nodes are far beyond anything this simulator targets).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// Returns the `0..n` index of this node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value, useful as an RNG stream tag.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// Discrete simulation time.
///
/// In synchronous executions a step is exactly one round of the paper's
/// model: a message sent during step `r` is delivered during step `r + 1`.
/// In asynchronous executions the adversary may stretch delivery up to the
/// engine's `max_delay`, and steps measure normalized asynchronous time.
pub type Step = u64;

/// Iterates over all node ids of a system of size `n`, in index order.
///
/// ```
/// use fba_sim::all_nodes;
/// let ids: Vec<_> = all_nodes(3).map(|id| id.index()).collect();
/// assert_eq!(ids, vec![0, 1, 2]);
/// ```
pub fn all_nodes(n: usize) -> impl Iterator<Item = NodeId> {
    (0..n).map(NodeId::from_index)
}

/// `⌈log₂ n⌉` for `n ≥ 1`; returns 0 for `n ≤ 1`.
///
/// Used for header sizes (a node id costs `⌈log₂ n⌉` bits on the wire) and
/// for the paper's `log n`-sized quorums.
///
/// ```
/// use fba_sim::ceil_log2;
/// assert_eq!(ceil_log2(1), 0);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(1000), 10);
/// ```
#[must_use]
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Natural logarithm of `n`, clamped below by 1.0.
///
/// Quorum sizes in the paper are `Θ(log n)`; this helper keeps them positive
/// at tiny test scales.
#[must_use]
pub fn ln_at_least_one(n: usize) -> f64 {
    (n.max(2) as f64).ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 17, 65_535, 1 << 20] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn node_id_ordering_matches_index_ordering() {
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(10);
        assert!(a < b);
        assert_eq!(a, NodeId::from_index(3));
    }

    #[test]
    fn node_id_display_and_debug() {
        let x = NodeId::from_index(42);
        assert_eq!(format!("{x}"), "n42");
        assert_eq!(format!("{x:?}"), "n42");
    }

    #[test]
    fn all_nodes_covers_range() {
        assert_eq!(all_nodes(0).count(), 0);
        assert_eq!(all_nodes(5).count(), 5);
        assert_eq!(all_nodes(5).last(), Some(NodeId::from_index(4)));
    }

    #[test]
    fn ceil_log2_edge_cases() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn ln_at_least_one_is_monotone_and_clamped() {
        assert!(ln_at_least_one(0) >= 1.0);
        assert!(ln_at_least_one(2) >= ln_at_least_one(0));
        assert!(ln_at_least_one(1_000_000) > ln_at_least_one(1_000));
    }

    #[test]
    fn usize_from_node_id() {
        let id = NodeId::from_index(9);
        let as_usize: usize = id.into();
        assert_eq!(as_usize, 9);
    }
}
