//! Wire-level message envelopes and bit accounting.
//!
//! The paper's communication-complexity metric counts *bits exchanged*, so
//! every protocol message type must report its payload size via [`WireSize`].
//! The engine adds a per-envelope header of `2·⌈log₂ n⌉` bits (sender and
//! recipient identity) on top of the payload, matching the model where
//! channels are authenticated and point-to-point.

use crate::ids::{NodeId, Step};

/// Size of a message payload on the wire, in bits.
///
/// Implementations should approximate the information-theoretic content of
/// the message the way the paper counts it: a `c·log n`-bit candidate string
/// costs `c·log n` bits, a label from a polynomial-cardinality domain `R`
/// costs `O(log n)` bits, and so on. Sub-bit bookkeeping is not needed.
pub trait WireSize {
    /// The number of payload bits this message occupies on the wire.
    fn wire_bits(&self) -> u64;
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        0
    }
}

impl WireSize for bool {
    fn wire_bits(&self) -> u64 {
        1
    }
}

impl WireSize for u8 {
    fn wire_bits(&self) -> u64 {
        8
    }
}

impl WireSize for u32 {
    fn wire_bits(&self) -> u64 {
        32
    }
}

impl WireSize for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bits)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bits(&self) -> u64 {
        self.iter().map(WireSize::wire_bits).sum()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

/// A message in flight: payload plus authenticated routing metadata.
///
/// The simulator stamps `from` itself, which is how the model's
/// "communication channels are authenticated — the identity of the sender is
/// known to the recipient" assumption is enforced structurally: Byzantine
/// nodes can send arbitrary payloads but can never forge `from`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// True sender (never forgeable).
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Step during which the message was sent.
    pub sent_at: Step,
    /// Protocol payload.
    pub msg: M,
}

impl<M: WireSize> Envelope<M> {
    /// Total bits of this envelope given a fixed per-message header size.
    #[must_use]
    pub fn total_bits(&self, header_bits: u64) -> u64 {
        header_bits + self.msg.wire_bits()
    }
}

/// A coalesced group of messages one node sent during one step.
///
/// The AER fan-out paths send the same payload to dozens of recipients per
/// callback (`d` committee members × `d` forwarding targets), so the engine
/// stores each callback's outbox as one batch — a single routing header
/// (`from`, `sent_at`) plus run-length-encoded payloads and a flat recipient
/// list — instead of one [`Envelope`] per message. A batch of `k` messages
/// is purely a wire-level framing optimisation: it still *counts* as `k`
/// logical messages and `k × (header + payload)` bits, and recipients
/// receive the payloads in exactly the order [`Batch::push`] recorded them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Batch<M> {
    /// True sender of every message in the batch (never forgeable).
    pub from: NodeId,
    /// Step during which every message in the batch was sent.
    pub sent_at: Step,
    /// `(copies, payload)` runs; consecutive identical payloads share a run.
    runs: Vec<(u32, M)>,
    /// Recipients of every message, in send order, across all runs.
    to: Vec<NodeId>,
}

impl<M> Batch<M> {
    /// An empty batch stamped with its sender and send step.
    #[must_use]
    pub fn new(from: NodeId, sent_at: Step) -> Self {
        Batch {
            from,
            sent_at,
            runs: Vec::new(),
            to: Vec::new(),
        }
    }

    /// Builds an empty batch on top of recycled backing buffers (cleared
    /// here), so the engine's per-step hot loop reuses allocations.
    #[must_use]
    pub fn from_buffers(from: NodeId, sent_at: Step, buffers: BatchBuffers<M>) -> Self {
        let (mut runs, mut to) = buffers;
        runs.clear();
        to.clear();
        Batch {
            from,
            sent_at,
            runs,
            to,
        }
    }

    /// Tears the batch down to its backing buffers for reuse.
    #[must_use]
    pub fn into_buffers(self) -> BatchBuffers<M> {
        (self.runs, self.to)
    }

    /// Number of logical messages in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.to.len()
    }

    /// Whether the batch carries no messages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.to.is_empty()
    }

    /// Appends one message. Consecutive pushes of equal payloads extend the
    /// current run instead of storing another copy.
    pub fn push(&mut self, to: NodeId, msg: M)
    where
        M: PartialEq,
    {
        match self.runs.last_mut() {
            Some((count, last)) if *last == msg => *count += 1,
            _ => self.runs.push((1, msg)),
        }
        self.to.push(to);
    }

    /// Iterates the payload runs as `(payload, recipients)` pairs, in send
    /// order; `recipients.len()` is the run's copy count.
    pub fn runs(&self) -> impl Iterator<Item = (&M, &[NodeId])> + '_ {
        let mut offset = 0usize;
        self.runs.iter().map(move |(count, msg)| {
            let start = offset;
            offset += *count as usize;
            (msg, &self.to[start..offset])
        })
    }

    /// Expands the batch into the per-message [`Envelope`] view, in send
    /// order — the representation observers, transcripts, and rushing
    /// adversaries are shown.
    pub fn envelopes(&self) -> impl Iterator<Item = Envelope<M>> + '_
    where
        M: Clone,
    {
        self.runs().flat_map(move |(msg, tos)| {
            tos.iter().map(move |&to| Envelope {
                from: self.from,
                to,
                sent_at: self.sent_at,
                msg: msg.clone(),
            })
        })
    }
}

impl<M: WireSize> Batch<M> {
    /// Total *logical* bits of the batch: every message counts its own
    /// header and payload, exactly as if sent as independent envelopes.
    #[must_use]
    pub fn total_bits(&self, header_bits: u64) -> u64 {
        self.runs
            .iter()
            .map(|(count, msg)| u64::from(*count) * (header_bits + msg.wire_bits()))
            .sum()
    }
}

/// Recycled backing storage of a [`Batch`]: its run and recipient vectors.
pub type BatchBuffers<M> = (Vec<(u32, M)>, Vec<NodeId>);

/// One unit of network traffic in the engine's queue: either a single
/// envelope or a coalesced [`Batch`]. Batching never changes a run —
/// deliveries expand to the same logical messages in the same order — so
/// which variant the engine picks is invisible to protocols, adversaries,
/// and observers (see the crate-level determinism contract).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delivery<M> {
    /// A single message.
    One(Envelope<M>),
    /// A coalesced same-sender, same-step group of messages.
    Batch(Batch<M>),
}

impl<M> Delivery<M> {
    /// Number of logical messages this delivery carries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Delivery::One(_) => 1,
            Delivery::Batch(b) => b.len(),
        }
    }

    /// Whether the delivery carries no messages (only possible for an empty
    /// batch, which the engine never enqueues).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_wire_sizes() {
        assert_eq!(().wire_bits(), 0);
        assert_eq!(true.wire_bits(), 1);
        assert_eq!(0u8.wire_bits(), 8);
        assert_eq!(0u32.wire_bits(), 32);
        assert_eq!(0u64.wire_bits(), 64);
    }

    #[test]
    fn option_wire_size_includes_presence_bit() {
        let none: Option<u64> = None;
        assert_eq!(none.wire_bits(), 1);
        assert_eq!(Some(1u64).wire_bits(), 65);
    }

    #[test]
    fn vec_wire_size_sums_elements() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.wire_bits(), 96);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.wire_bits(), 0);
    }

    #[test]
    fn tuple_wire_size() {
        assert_eq!((1u32, 2u64).wire_bits(), 96);
    }

    #[test]
    fn batch_run_length_encodes_consecutive_equal_payloads() {
        let mut b: Batch<u32> = Batch::new(NodeId::from_index(0), 2);
        assert!(b.is_empty());
        b.push(NodeId::from_index(1), 7);
        b.push(NodeId::from_index(2), 7);
        b.push(NodeId::from_index(3), 9);
        b.push(NodeId::from_index(1), 7);
        assert_eq!(b.len(), 4);
        let runs: Vec<(u32, Vec<NodeId>)> = b.runs().map(|(m, tos)| (*m, tos.to_vec())).collect();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].0, 7);
        assert_eq!(runs[0].1.len(), 2);
        assert_eq!(runs[1], (9, vec![NodeId::from_index(3)]));
        assert_eq!(runs[2], (7, vec![NodeId::from_index(1)]));
    }

    #[test]
    fn batch_of_k_counts_k_messages_and_k_times_bits() {
        // The metrics contract: a batch of k envelopes is k logical
        // messages and k × (header + payload) bits — framing is free.
        let mut b: Batch<u32> = Batch::new(NodeId::from_index(0), 0);
        for i in 1..=5 {
            b.push(NodeId::from_index(i), 7);
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.total_bits(20), 5 * (20 + 32));
        let loose: u64 = b.envelopes().map(|e| e.total_bits(20)).sum();
        assert_eq!(b.total_bits(20), loose);
    }

    #[test]
    fn batch_envelopes_expand_in_send_order() {
        let mut b: Batch<u32> = Batch::new(NodeId::from_index(9), 4);
        b.push(NodeId::from_index(1), 5);
        b.push(NodeId::from_index(0), 5);
        b.push(NodeId::from_index(2), 6);
        let envs: Vec<Envelope<u32>> = b.envelopes().collect();
        assert_eq!(
            envs,
            vec![
                Envelope {
                    from: NodeId::from_index(9),
                    to: NodeId::from_index(1),
                    sent_at: 4,
                    msg: 5
                },
                Envelope {
                    from: NodeId::from_index(9),
                    to: NodeId::from_index(0),
                    sent_at: 4,
                    msg: 5
                },
                Envelope {
                    from: NodeId::from_index(9),
                    to: NodeId::from_index(2),
                    sent_at: 4,
                    msg: 6
                },
            ]
        );
    }

    #[test]
    fn batch_buffer_recycling_round_trips() {
        let mut b: Batch<u32> = Batch::new(NodeId::from_index(0), 0);
        b.push(NodeId::from_index(1), 3);
        let buffers = b.into_buffers();
        let b2: Batch<u32> = Batch::from_buffers(NodeId::from_index(2), 1, buffers);
        assert!(b2.is_empty());
        assert_eq!(b2.from, NodeId::from_index(2));
        assert_eq!(b2.sent_at, 1);
    }

    #[test]
    fn delivery_len_counts_logical_messages() {
        let one: Delivery<u32> = Delivery::One(Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 0,
            msg: 1,
        });
        assert_eq!(one.len(), 1);
        assert!(!one.is_empty());
        let mut b: Batch<u32> = Batch::new(NodeId::from_index(0), 0);
        b.push(NodeId::from_index(1), 1);
        b.push(NodeId::from_index(2), 1);
        assert_eq!(Delivery::Batch(b).len(), 2);
    }

    #[test]
    fn envelope_total_bits_adds_header() {
        let env = Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 3,
            msg: 7u64,
        };
        assert_eq!(env.total_bits(20), 84);
    }
}
