//! Wire-level message envelopes and bit accounting.
//!
//! The paper's communication-complexity metric counts *bits exchanged*, so
//! every protocol message type must report its payload size via [`WireSize`].
//! The engine adds a per-envelope header of `2·⌈log₂ n⌉` bits (sender and
//! recipient identity) on top of the payload, matching the model where
//! channels are authenticated and point-to-point.

use crate::ids::{NodeId, Step};

/// Size of a message payload on the wire, in bits.
///
/// Implementations should approximate the information-theoretic content of
/// the message the way the paper counts it: a `c·log n`-bit candidate string
/// costs `c·log n` bits, a label from a polynomial-cardinality domain `R`
/// costs `O(log n)` bits, and so on. Sub-bit bookkeeping is not needed.
pub trait WireSize {
    /// The number of payload bits this message occupies on the wire.
    fn wire_bits(&self) -> u64;
}

impl WireSize for () {
    fn wire_bits(&self) -> u64 {
        0
    }
}

impl WireSize for bool {
    fn wire_bits(&self) -> u64 {
        1
    }
}

impl WireSize for u8 {
    fn wire_bits(&self) -> u64 {
        8
    }
}

impl WireSize for u32 {
    fn wire_bits(&self) -> u64 {
        32
    }
}

impl WireSize for u64 {
    fn wire_bits(&self) -> u64 {
        64
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bits(&self) -> u64 {
        1 + self.as_ref().map_or(0, WireSize::wire_bits)
    }
}

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bits(&self) -> u64 {
        self.iter().map(WireSize::wire_bits).sum()
    }
}

impl<A: WireSize, B: WireSize> WireSize for (A, B) {
    fn wire_bits(&self) -> u64 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

/// A message in flight: payload plus authenticated routing metadata.
///
/// The simulator stamps `from` itself, which is how the model's
/// "communication channels are authenticated — the identity of the sender is
/// known to the recipient" assumption is enforced structurally: Byzantine
/// nodes can send arbitrary payloads but can never forge `from`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// True sender (never forgeable).
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Step during which the message was sent.
    pub sent_at: Step,
    /// Protocol payload.
    pub msg: M,
}

impl<M: WireSize> Envelope<M> {
    /// Total bits of this envelope given a fixed per-message header size.
    #[must_use]
    pub fn total_bits(&self, header_bits: u64) -> u64 {
        header_bits + self.msg.wire_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_wire_sizes() {
        assert_eq!(().wire_bits(), 0);
        assert_eq!(true.wire_bits(), 1);
        assert_eq!(0u8.wire_bits(), 8);
        assert_eq!(0u32.wire_bits(), 32);
        assert_eq!(0u64.wire_bits(), 64);
    }

    #[test]
    fn option_wire_size_includes_presence_bit() {
        let none: Option<u64> = None;
        assert_eq!(none.wire_bits(), 1);
        assert_eq!(Some(1u64).wire_bits(), 65);
    }

    #[test]
    fn vec_wire_size_sums_elements() {
        let v = vec![1u32, 2, 3];
        assert_eq!(v.wire_bits(), 96);
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.wire_bits(), 0);
    }

    #[test]
    fn tuple_wire_size() {
        assert_eq!((1u32, 2u64).wire_bits(), 96);
    }

    #[test]
    fn envelope_total_bits_adds_header() {
        let env = Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 3,
            msg: 7u64,
        };
        assert_eq!(env.total_bits(20), 84);
    }
}
