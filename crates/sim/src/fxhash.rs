//! A fast, non-cryptographic hasher for hot-path maps and sets.
//!
//! `std`'s default SipHash-1-3 is DoS-resistant but costs tens of cycles
//! per small key; the simulator's maps are keyed by values derived from
//! seeded executions (node ids, 64-bit string keys), where flood-resistance
//! buys nothing and the per-message map lookups in the push/pull phases are
//! squarely on the hot path. [`FxHasher`] implements the multiply-xor
//! scheme popularized by rustc's `FxHashMap`: one rotate, one xor and one
//! multiply per 8-byte chunk.
//!
//! Determinism: the hasher is keyless, so iteration-order-independent uses
//! (lookups, membership) are reproducible across runs and platforms of the
//! same pointer width. Code that *iterates* a map must still iterate in a
//! sorted or insertion order if the iteration feeds protocol decisions —
//! the same rule that already applied under SipHash's random keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-xor hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u64, 2u32)), hash_of(&(1u64, 2u32)));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn nearby_keys_spread() {
        let hashes: std::collections::BTreeSet<u64> = (0..1000u64).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1000, "dense u64 keys must not collide");
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u64)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn byte_slices_of_all_lengths_hash() {
        let mut seen = std::collections::BTreeSet::new();
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            seen.insert(hash_of(&bytes));
        }
        assert!(seen.len() >= 31, "length must influence the hash");
    }
}
