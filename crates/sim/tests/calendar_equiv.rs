//! Randomized equivalence of the calendar ring-buffer queue against the
//! `BTreeMap<Step, Vec<_>>` pending-delivery queue it replaced in the
//! engine: same events in, same drain order out, over arbitrary
//! delay/priority schedules within the bounded horizon — including the
//! bulk fast lane the engine uses for uniform-delay priority-0 steps.

use std::collections::BTreeMap;

use fba_sim::calendar::CalendarQueue;
use fba_sim::Step;
use proptest::prelude::*;

/// The old engine's queue semantics, verbatim: events bucketed by due
/// step, stable-sorted by `(priority, seq)` at drain time.
struct ReferenceQueue {
    pending: BTreeMap<Step, Vec<(i64, u64, u32)>>,
    seq: u64,
}

impl ReferenceQueue {
    fn new() -> Self {
        ReferenceQueue {
            pending: BTreeMap::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, now: Step, delay: Step, priority: i64, item: u32) {
        self.seq += 1;
        self.pending
            .entry(now + delay)
            .or_default()
            .push((priority, self.seq, item));
    }

    fn drain_due(&mut self, step: Step) -> Vec<u32> {
        let Some(mut due) = self.pending.remove(&step) else {
            return Vec::new();
        };
        due.sort_by_key(|&(priority, seq, _)| (priority, seq));
        due.into_iter().map(|(_, _, item)| item).collect()
    }

    fn is_empty(&self) -> bool {
        self.pending.values().all(Vec::is_empty)
    }
}

fn run_schedule(max_delay: u64, schedule: &[(usize, u64, u64)], bulk_mode: impl Fn(usize) -> bool) {
    let mut ring: CalendarQueue<u32> = CalendarQueue::new(max_delay);
    let mut reference = ReferenceQueue::new();
    let mut buf: Vec<u32> = Vec::new();
    let mut batch: Vec<u32> = Vec::new();
    let mut next_item: u32 = 0;

    for (step_idx, &(count, delay_salt, prio_salt)) in schedule.iter().enumerate() {
        let step = step_idx as Step;

        // Drain first, as the engine does, and compare order exactly.
        ring.drain_due(step, &mut buf);
        let want = reference.drain_due(step);
        prop_assert_eq!(&buf, &want, "divergent drain at step {}", step);

        if bulk_mode(step_idx) {
            // Engine fast path: uniform delay, priority 0, one batch.
            let delay = 1 + fba_sim::rng::splitmix64(delay_salt) % max_delay;
            for _ in 0..count {
                batch.push(next_item);
                reference.schedule(step, delay, 0, next_item);
                next_item += 1;
            }
            ring.schedule_bulk(step, delay, &mut batch);
            prop_assert!(batch.is_empty());
        } else {
            // Keyed path: content-derived delays and priorities
            // (deterministic, covers duplicate priorities).
            for k in 0..count {
                let h = fba_sim::rng::splitmix64(delay_salt ^ ((k as u64) << 17));
                let delay = 1 + h % max_delay;
                let priority = (fba_sim::rng::splitmix64(prio_salt ^ k as u64) % 5) as i64 - 2;
                ring.schedule(step, delay, priority, next_item);
                reference.schedule(step, delay, priority, next_item);
                next_item += 1;
            }
        }
        prop_assert_eq!(ring.is_empty(), reference.is_empty());
    }

    // Flush everything still in flight and compare the tail.
    let horizon_end = schedule.len() as Step + max_delay + 1;
    for step in schedule.len() as Step..horizon_end {
        ring.drain_due(step, &mut buf);
        let want = reference.drain_due(step);
        prop_assert_eq!(&buf, &want, "divergent tail drain at step {}", step);
    }
    prop_assert!(ring.is_empty());
    prop_assert!(reference.is_empty());
    prop_assert_eq!(ring.len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn keyed_lane_matches_btreemap_reference(
        max_delay in 1u64..8,
        schedule in collection::vec((0usize..12, any::<u64>(), any::<u64>()), 1..40),
    ) {
        run_schedule(max_delay, &schedule, |_| false);
    }

    #[test]
    fn bulk_lane_matches_btreemap_reference(
        max_delay in 1u64..8,
        schedule in collection::vec((0usize..12, any::<u64>(), any::<u64>()), 1..40),
    ) {
        run_schedule(max_delay, &schedule, |_| true);
    }

    #[test]
    fn mixed_lanes_match_btreemap_reference(
        max_delay in 1u64..8,
        schedule in collection::vec((0usize..12, any::<u64>(), any::<u64>()), 1..40),
        mode_salt in any::<u64>(),
    ) {
        run_schedule(max_delay, &schedule, |step| {
            fba_sim::rng::splitmix64(mode_salt ^ step as u64).is_multiple_of(2)
        });
    }
}
