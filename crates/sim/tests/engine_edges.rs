//! Engine edge-case tests: step caps, drain bounds, header-size
//! overrides, and adversary lifecycle details.

use std::collections::BTreeSet;

use fba_sim::{run, Adversary, Context, EngineConfig, Envelope, NodeId, Outbox, Protocol, Step};
use rand_chacha::ChaCha12Rng;

/// Protocol that never decides and keeps chattering every step.
struct Chatter;

impl Protocol for Chatter {
    type Msg = ();
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.send(NodeId::from_index((ctx.id().index() + 1) % ctx.n()), ());
    }
    fn on_step(&mut self, ctx: &mut Context<'_, ()>) {
        ctx.send(NodeId::from_index((ctx.id().index() + 1) % ctx.n()), ());
    }
    fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {}
    fn output(&self) -> Option<()> {
        None
    }
}

#[test]
fn max_steps_caps_non_terminating_protocols() {
    let cfg = EngineConfig {
        max_steps: 25,
        ..EngineConfig::sync(4)
    };
    let out = run::<Chatter, _, _>(&cfg, 1, &mut fba_sim::NoAdversary, |_| Chatter);
    assert!(out.all_decided_at.is_none());
    assert!(!out.quiescent);
    assert_eq!(out.metrics.steps, 25);
    // 4 nodes × 26 activations (steps 0..=25).
    assert_eq!(out.metrics.total_msgs_sent(), 4 * 26);
}

/// Decides instantly but keeps replying to every delivery — exercises the
/// drain bound.
struct EchoForever;

impl Protocol for EchoForever {
    type Msg = u32;
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.send(NodeId::from_index((ctx.id().index() + 1) % ctx.n()), 0);
    }
    fn on_message(&mut self, from: NodeId, v: u32, ctx: &mut Context<'_, u32>) {
        ctx.send(from, v + 1);
    }
    fn output(&self) -> Option<()> {
        Some(())
    }
}

#[test]
fn drain_steps_bound_post_decision_chatter() {
    let cfg = EngineConfig {
        drain_steps: 10,
        ..EngineConfig::sync(4)
    };
    let out = run::<EchoForever, _, _>(&cfg, 1, &mut fba_sim::NoAdversary, |_| EchoForever);
    assert_eq!(out.all_decided_at, Some(0));
    assert!(!out.quiescent, "echo ping-pong never quiesces");
    assert!(
        out.metrics.steps <= 11,
        "drain must stop after drain_steps: ran {}",
        out.metrics.steps
    );
}

#[test]
fn header_bits_override_changes_accounting_only() {
    let base = EngineConfig::sync(4);
    let fat = EngineConfig {
        header_bits: Some(1000),
        ..EngineConfig::sync(4)
    };
    let a = run::<EchoForever, _, _>(&base, 2, &mut fba_sim::NoAdversary, |_| EchoForever);
    let b = run::<EchoForever, _, _>(&fat, 2, &mut fba_sim::NoAdversary, |_| EchoForever);
    assert_eq!(a.metrics.total_msgs_sent(), b.metrics.total_msgs_sent());
    assert!(b.metrics.total_bits_sent() > a.metrics.total_bits_sent());
    assert_eq!(base.effective_header_bits(), 2 * 2); // 2·⌈log₂ 4⌉
    assert_eq!(fat.effective_header_bits(), 1000);
}

/// Adversary that records the step at which `act` was last called —
/// verifies the engine stops consulting it once all correct nodes decided.
struct ActTracker {
    last_act: Step,
}

impl Adversary<u32> for ActTracker {
    fn corrupt(&mut self, _n: usize, _rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        BTreeSet::new()
    }
    fn act(&mut self, step: Step, _v: Option<&[Envelope<u32>]>, _o: &mut Outbox<'_, u32>) {
        self.last_act = step;
    }
}

#[test]
fn adversary_stops_acting_once_all_decided() {
    let cfg = EngineConfig {
        drain_steps: 10,
        ..EngineConfig::sync(4)
    };
    let mut adv = ActTracker { last_act: 0 };
    let out = run::<EchoForever, _, _>(&cfg, 3, &mut adv, |_| EchoForever);
    // All decide at step 0; the adversary must never act after it.
    assert_eq!(out.all_decided_at, Some(0));
    assert_eq!(adv.last_act, 0);
}

/// Nodes whose ids are even decide at start; odd ones on first message.
struct Staggered {
    id: NodeId,
    decided: bool,
}

impl Protocol for Staggered {
    type Msg = ();
    type Output = u32;
    fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
        if self.id.index().is_multiple_of(2) {
            self.decided = true;
            // Tell the odd neighbour.
            let next = NodeId::from_index((self.id.index() + 1) % ctx.n());
            ctx.send(next, ());
        }
    }
    fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<'_, ()>) {
        self.decided = true;
    }
    fn output(&self) -> Option<u32> {
        self.decided.then_some(1)
    }
}

#[test]
fn decision_steps_are_recorded_per_node() {
    let cfg = EngineConfig::sync(4);
    let out = run::<Staggered, _, _>(&cfg, 4, &mut fba_sim::NoAdversary, |id| Staggered {
        id,
        decided: false,
    });
    assert_eq!(out.all_decided_at, Some(1));
    assert_eq!(out.metrics.decided_at(NodeId::from_index(0)), Some(0));
    assert_eq!(out.metrics.decided_at(NodeId::from_index(1)), Some(1));
    assert_eq!(out.metrics.decided_at(NodeId::from_index(2)), Some(0));
    assert_eq!(out.metrics.decided_at(NodeId::from_index(3)), Some(1));
    assert_eq!(out.metrics.decided_quantile(0.5), Some(0));
    assert_eq!(out.metrics.decided_quantile(1.0), Some(1));
}
