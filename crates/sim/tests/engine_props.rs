//! Property tests for the engine's delivery semantics: exactly-once
//! delivery, bounded delay (reliability), determinism, and accounting
//! conservation under randomized adversarial scheduling.

use std::collections::BTreeSet;

use fba_sim::{run, Adversary, Context, EngineConfig, Envelope, NodeId, Outbox, Protocol, Step};
use proptest::prelude::*;
use rand_chacha::ChaCha12Rng;

/// Gossip protocol: every node sends `fanout` tagged messages at start;
/// receivers record (sender, tag) pairs. Decides immediately.
#[derive(Clone)]
struct Gossip {
    id: NodeId,
    n: usize,
    fanout: usize,
    received: Vec<(NodeId, u64)>,
}

impl Protocol for Gossip {
    type Msg = u64;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        for k in 0..self.fanout {
            let to = NodeId::from_index((self.id.index() + k + 1) % self.n);
            ctx.send(to, (self.id.index() as u64) << 32 | k as u64);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: u64, _ctx: &mut Context<'_, u64>) {
        self.received.push((from, msg));
    }

    fn output(&self) -> Option<u64> {
        Some(self.received.len() as u64)
    }
}

/// Adversary that randomizes delays (within the engine bound) and
/// priorities, deterministically from each envelope's content.
struct JitterScheduler {
    salt: u64,
}

impl Adversary<u64> for JitterScheduler {
    fn corrupt(&mut self, _n: usize, _rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        BTreeSet::new()
    }
    fn act(&mut self, _s: Step, _v: Option<&[Envelope<u64>]>, _o: &mut Outbox<'_, u64>) {}
    fn delay(&mut self, env: &Envelope<u64>) -> Step {
        1 + (fba_sim::rng::splitmix64(env.msg ^ self.salt) % 7)
    }
    fn priority(&mut self, env: &Envelope<u64>) -> i64 {
        (fba_sim::rng::splitmix64(env.msg.wrapping_add(self.salt)) % 5) as i64 - 2
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_message_is_delivered_exactly_once_under_jitter(
        n in 3usize..24,
        fanout in 1usize..5,
        salt in any::<u64>(),
        max_delay in 1u64..5,
    ) {
        let cfg = EngineConfig {
            max_steps: 200,
            ..EngineConfig::asynchronous(n, max_delay)
        };
        let mut adv = JitterScheduler { salt };
        let out = run::<Gossip, _, _>(&cfg, salt, &mut adv, |id| Gossip {
            id,
            n,
            fanout,
            received: Vec::new(),
        });
        prop_assert!(out.quiescent, "network must quiesce");
        // Exactly-once: total received messages equals total sent.
        // (Outputs snapshot at decision time — step 0 here — so the
        // engine's receive counters are the ground truth.)
        let total_received: u64 = (0..n)
            .map(|i| out.metrics.msgs_recv_by(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(total_received, (n * fanout) as u64);
        prop_assert_eq!(out.metrics.total_msgs_sent(), (n * fanout) as u64);
    }

    #[test]
    fn delivery_respects_the_reliability_bound(
        n in 3usize..16,
        salt in any::<u64>(),
        max_delay in 1u64..6,
    ) {
        // All messages are sent at step 0; with clamped delays the run
        // must quiesce by step max_delay (+drain bookkeeping).
        let cfg = EngineConfig {
            max_steps: 100,
            ..EngineConfig::asynchronous(n, max_delay)
        };
        let mut adv = JitterScheduler { salt };
        let out = run::<Gossip, _, _>(&cfg, salt, &mut adv, |id| Gossip {
            id,
            n,
            fanout: 2,
            received: Vec::new(),
        });
        prop_assert!(
            out.metrics.steps <= max_delay + 2,
            "run took {} steps with max_delay {}",
            out.metrics.steps,
            max_delay
        );
    }

    #[test]
    fn runs_replay_bit_for_bit(
        n in 3usize..16,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let cfg = EngineConfig::asynchronous(n, 3);
        let mut a1 = JitterScheduler { salt };
        let mut a2 = JitterScheduler { salt };
        let r1 = run::<Gossip, _, _>(&cfg, seed, &mut a1, |id| Gossip {
            id, n, fanout: 3, received: Vec::new(),
        });
        let r2 = run::<Gossip, _, _>(&cfg, seed, &mut a2, |id| Gossip {
            id, n, fanout: 3, received: Vec::new(),
        });
        prop_assert_eq!(r1.outputs, r2.outputs);
        prop_assert_eq!(r1.metrics.total_bits_sent(), r2.metrics.total_bits_sent());
        prop_assert_eq!(r1.all_decided_at, r2.all_decided_at);
    }

    #[test]
    fn bits_sent_equals_bits_received_at_quiescence(
        n in 3usize..16,
        seed in any::<u64>(),
    ) {
        let cfg = EngineConfig::sync(n);
        let out = run::<Gossip, _, _>(&cfg, seed, &mut fba_sim::NoAdversary, |id| Gossip {
            id, n, fanout: 2, received: Vec::new(),
        });
        prop_assert!(out.quiescent);
        let received: u64 = (0..n)
            .map(|i| out.metrics.bits_recv_by(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(out.metrics.total_bits_sent(), received);
    }
}
