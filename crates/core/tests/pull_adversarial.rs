//! Adversarial unit tests for the pull phase: hand-crafted Byzantine
//! message sequences against a single [`PullPhase`] state machine,
//! checking that each filter of Algorithms 1–3 holds individually.

use fba_core::pull::{PullPhase, RetryPolicy};
use fba_core::AerMsg;
use fba_samplers::{GString, Label, PollSampler, QuorumScheme};
use fba_sim::rng::{derive_rng, node_rng};
use fba_sim::NodeId;

const N: usize = 96;
const D: usize = 9;
const CAP: u64 = 100;

fn setup() -> (QuorumScheme, PollSampler, GString, GString) {
    let scheme = QuorumScheme::new(11, N, D);
    let poll = PollSampler::new(11, N, D, PollSampler::default_cardinality(N));
    let mut rng = derive_rng(42, &[]);
    let g = GString::random(40, &mut rng);
    let bad = GString::random(40, &mut rng);
    (scheme, poll, g, bad)
}

fn phase(x: usize, own: GString) -> PullPhase {
    let (scheme, poll, _, _) = setup();
    PullPhase::new(
        NodeId::from_index(x),
        own,
        scheme,
        poll,
        CAP,
        RetryPolicy::strict(),
    )
}

/// Finds a label whose poll list for `origin` contains `member`.
fn label_hitting(poll: &PollSampler, origin: NodeId, member: NodeId) -> Label {
    for raw in 0..poll.label_cardinality() {
        if poll.contains(origin, Label(raw), member) {
            return Label(raw);
        }
    }
    panic!("domain exhausted");
}

#[test]
fn router_ignores_pulls_for_strings_it_does_not_believe() {
    let (scheme, _, g, bad) = setup();
    let origin = NodeId::from_index(5);
    let router = scheme.pull.quorum(bad.key(), origin)[0];
    let mut p = phase(router.index(), g);
    // Router believes g; a pull for `bad` (whose quorum it belongs to)
    // must not be routed.
    assert!(p.on_pull(origin, bad, Label(1)).is_empty());
}

#[test]
fn relay_requires_sender_in_requesters_quorum() {
    let (scheme, poll, g, _) = setup();
    let origin = NodeId::from_index(5);
    let r = Label(3);
    let w = poll.poll_list(origin, r)[0];
    let z = scheme.pull.quorum(g.key(), w)[0];
    let mut p = phase(z.index(), g);
    // Sender y must be in H(g, origin); pick one that is not.
    let h_origin = scheme.pull.quorum(g.key(), origin);
    let intruder = (0..N)
        .map(NodeId::from_index)
        .find(|y| !h_origin.contains(y))
        .unwrap();
    for _ in 0..3 * D {
        assert!(p.on_fw1(intruder, origin, g, r, w).is_empty());
    }
}

#[test]
fn relay_requires_w_in_the_poll_list() {
    let (scheme, poll, g, _) = setup();
    let origin = NodeId::from_index(5);
    let r = Label(3);
    // Pick a w NOT in J(origin, r).
    let list = poll.poll_list(origin, r);
    let w = (0..N)
        .map(NodeId::from_index)
        .find(|w| !list.contains(w))
        .unwrap();
    let z = scheme.pull.quorum(g.key(), w)[0];
    let mut p = phase(z.index(), g);
    let h_origin = scheme.pull.quorum(g.key(), origin);
    for y in h_origin {
        assert!(
            p.on_fw1(y, origin, g, r, w).is_empty(),
            "relayed for a w outside J(origin, r)"
        );
    }
}

#[test]
fn byzantine_cannot_fake_fw1_majority_with_one_identity() {
    let (scheme, poll, g, _) = setup();
    let origin = NodeId::from_index(5);
    let r = Label(3);
    let w = poll.poll_list(origin, r)[0];
    let z = scheme.pull.quorum(g.key(), w)[0];
    let mut p = phase(z.index(), g);
    let y = scheme.pull.quorum(g.key(), origin)[0];
    // One valid router spamming Fw1 many times counts once.
    for _ in 0..10 * D {
        assert!(p.on_fw1(y, origin, g, r, w).is_empty());
    }
}

#[test]
fn answer_requires_fresh_poll_per_requester() {
    let (scheme, poll, g, _) = setup();
    let origin_a = NodeId::from_index(5);
    let origin_b = NodeId::from_index(6);
    let w = poll.poll_list(origin_a, Label(3))[0];
    let ra = Label(3);
    let rb = label_hitting(&poll, origin_b, w);
    let mut p = phase(w.index(), g);
    // w is polled by A only.
    let _ = p.on_poll(origin_a, g, ra);
    // Fw2 majority arrives for B (never polled): no answer.
    let h_w = scheme.pull.quorum(g.key(), w);
    for z in &h_w {
        assert!(
            p.on_fw2(*z, origin_b, g, rb).is_empty(),
            "answered an unpolled requester"
        );
    }
    // And for A (polled): answer fires at majority.
    let mut answered = 0;
    for z in &h_w {
        answered += p.on_fw2(*z, origin_a, g, ra).len();
    }
    assert_eq!(answered, 1);
}

#[test]
fn decision_requires_strict_majority_even_with_spam() {
    let (_, poll, g, _) = setup();
    let x = NodeId::from_index(7);
    let mut p = phase(7, g);
    let mut rng = node_rng(5, 7);
    let sends = p.start_poll(g, 0, &mut rng);
    let r = match &sends[0].1 {
        AerMsg::Poll(_, r) => *r,
        _ => unreachable!(),
    };
    let list = poll.poll_list(x, r);
    let majority = poll.majority();
    // majority − 1 distinct answerers, each spamming 5 times: no decision.
    for w in list.iter().take(majority - 1) {
        for _ in 0..5 {
            assert!(p.on_answer(*w, g).is_none());
        }
    }
    assert!(p.decided().is_none());
    // The majority-th distinct answer decides.
    assert_eq!(p.on_answer(list[majority - 1], g), Some(g));
}

#[test]
fn post_decision_node_keeps_serving_but_never_flips() {
    let (scheme, poll, g, bad) = setup();
    let origin = NodeId::from_index(5);
    let w = poll.poll_list(origin, Label(3))[0];
    let mut p = phase(w.index(), g);
    let mut rng = node_rng(6, w.index());
    // Decide via own poll.
    let sends = p.start_poll(g, 0, &mut rng);
    let r_own = match &sends[0].1 {
        AerMsg::Poll(_, r) => *r,
        _ => unreachable!(),
    };
    let own_list = poll.poll_list(w, r_own);
    for member in own_list.iter().take(poll.majority()) {
        let _ = p.on_answer(*member, g);
    }
    assert_eq!(p.decided(), Some(&g));
    let _ = p.on_decided();

    // Spam answers for `bad`: the decision must not change.
    for member in poll.poll_list(w, Label(9)) {
        assert!(p.on_answer(member, bad).is_none());
    }
    assert_eq!(p.decided(), Some(&g));
    assert_eq!(p.believed(), &g);

    // The node still routes gstring pulls (belief = g).
    let origin2 = NodeId::from_index(9);
    let quorum = scheme.pull.quorum(g.key(), origin2);
    if quorum.contains(&w) {
        assert!(!p.on_pull(origin2, g, Label(4)).is_empty());
    }
}

#[test]
fn repair_votes_require_distinct_members_and_matching_string() {
    let retry = RetryPolicy {
        poll_timeout: 1,
        poll_attempts: 1,
        repair_attempts: 1,
        eager_repair: false,
    };
    let (scheme, poll, g, bad) = setup();
    let mut p = PullPhase::new(NodeId::from_index(2), g, scheme, poll, CAP, retry);
    let mut rng = node_rng(7, 2);
    let _ = p.start_poll(g, 0, &mut rng);
    let sends = p.on_step(1, &mut rng);
    let members: Vec<NodeId> = sends.iter().map(|(to, _)| *to).collect();
    assert!(!members.is_empty(), "repair should have fired");
    // Split votes between two strings: neither reaches majority from
    // fewer than `majority` distinct members.
    let maj = poll.majority();
    for (i, w) in members.iter().enumerate() {
        let s = if i % 2 == 0 { g } else { bad };
        let decision = p.on_repair_answer(*w, s);
        if i + 1 < 2 * maj - 1 {
            assert!(decision.is_none(), "decided too early at vote {}", i + 1);
        }
    }
}
