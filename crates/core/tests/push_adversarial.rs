//! Adversarial unit tests for the push phase: §3.1.1's flooding
//! imperviousness, checked filter by filter against hand-crafted
//! Byzantine push sequences.

use fba_core::push::{push_targets, PushPhase};
use fba_samplers::{GString, QuorumScheme};
use fba_sim::rng::derive_rng;
use fba_sim::NodeId;

const N: usize = 96;
const D: usize = 9;

fn setup() -> (QuorumScheme, GString, GString) {
    let scheme = QuorumScheme::new(21, N, D);
    let mut rng = derive_rng(7, &[]);
    (
        scheme,
        GString::random(40, &mut rng),
        GString::random(40, &mut rng),
    )
}

#[test]
fn flooding_many_distinct_strings_from_one_sender_builds_nothing() {
    let (scheme, own, _) = setup();
    let x = NodeId::from_index(3);
    let mut p = PushPhase::new(x, own, scheme);
    let mut rng = derive_rng(9, &[]);
    let flooder = NodeId::from_index(50);
    let mut counted = 0;
    for _ in 0..500 {
        let junk = GString::random(40, &mut rng);
        // A single sender can only ever contribute one vote per string it
        // legitimately belongs to the quorum of; it can never reach a
        // majority alone.
        if p.on_push(flooder, junk).is_some() {
            counted += 1;
        }
    }
    assert_eq!(counted, 0, "single flooder crossed a majority");
    assert_eq!(p.candidates().len(), 1, "only the own candidate remains");
    // Pending counters exist only for strings where the flooder is a
    // legitimate quorum member — expected d/n of the 500 ≈ 47, loosely.
    assert!(
        p.pending() < 120,
        "filter admitted too many counters: {}",
        p.pending()
    );
}

#[test]
fn sybil_style_repeats_cannot_substitute_for_distinct_members() {
    let (scheme, own, s) = setup();
    let x = NodeId::from_index(3);
    let mut p = PushPhase::new(x, own, scheme);
    let quorum = scheme.push.quorum(s.key(), x);
    let majority = scheme.push.majority();
    // Two distinct members repeating endlessly never cross a majority of 5.
    assert!(majority > 2);
    for _ in 0..100 {
        assert!(p.on_push(quorum[0], s).is_none());
        assert!(p.on_push(quorum[1], s).is_none());
    }
    assert!(!p.contains(&s));
}

#[test]
fn acceptance_is_per_receiver_not_global() {
    // A string accepted at one node (whose quorum the coalition controls)
    // must not leak acceptance to another node with an honest quorum.
    let (scheme, own, s) = setup();
    let a = NodeId::from_index(3);
    let b = NodeId::from_index(4);
    let mut pa = PushPhase::new(a, own, scheme);
    let pb = PushPhase::new(b, own, scheme);
    for y in scheme.push.quorum(s.key(), a) {
        let _ = pa.on_push(y, s);
    }
    assert!(pa.contains(&s), "full quorum must accept");
    assert!(!pb.contains(&s), "acceptance must not propagate");
}

#[test]
fn push_targets_reflect_each_nodes_own_string_only() {
    let (scheme, g, bad) = setup();
    // Half the nodes hold g, half hold bad.
    let assignments: Vec<GString> = (0..N).map(|i| if i % 2 == 0 { g } else { bad }).collect();
    let targets = push_targets(&scheme, &assignments);
    for (yi, list) in targets.iter().enumerate() {
        let y = NodeId::from_index(yi);
        let key = assignments[yi].key();
        for &x in list {
            assert!(
                scheme.push.contains(key, x, y),
                "node {y} given a target outside I(own, ·)"
            );
        }
    }
    // Different strings give (generically) different target lists for the
    // same node index parity.
    assert_ne!(targets[0], targets[1]);
}

#[test]
fn acceptance_threshold_is_independent_of_send_order() {
    let (scheme, own, s) = setup();
    let x = NodeId::from_index(7);
    let quorum = scheme.push.quorum(s.key(), x);
    let majority = scheme.push.majority();

    let mut forward = PushPhase::new(x, own, scheme);
    for (i, &y) in quorum.iter().enumerate() {
        let accepted = forward.on_push(y, s).is_some();
        assert_eq!(accepted, i + 1 == majority);
    }

    let mut backward = PushPhase::new(x, own, scheme);
    let mut accepted_at = None;
    for (i, &y) in quorum.iter().rev().enumerate() {
        if backward.on_push(y, s).is_some() {
            accepted_at = Some(i + 1);
        }
    }
    assert_eq!(accepted_at, Some(majority), "order must not matter");
}
