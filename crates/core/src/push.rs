//! The push phase (§3.1.1).
//!
//! Each node `y` diffuses its initial candidate `s_y` to every node `x`
//! with `y ∈ I(s_y, x)`. A receiving node `x` adds a string `s` to its
//! candidate list `L_x` iff *more than half* of the push quorum `I(s, x)`
//! pushed `s` to it. Because nodes never react to pushes by sending
//! messages, the phase is impervious to flooding: Byzantine pushes can add
//! work only through quorums they already control (Lemma 4 bounds the
//! total damage to `O(n)` candidate-list entries system-wide).

use fba_sim::fxhash::{FxHashMap, FxHashSet};

use fba_samplers::{GString, QuorumScheme, SetSlot, SharedQuorumCache, SlotMasks, StringKey};
use fba_sim::NodeId;

/// Per-node push-phase state: counts distinct valid pushers per candidate
/// string and maintains the accepted list `L_x`.
///
/// Vote counting lives in a run-shared [`SlotMasks`] arena keyed by the
/// interned quorum slot of `I(s, x)` — one contiguous `u128`-per-quorum
/// vector for the whole run instead of a hash map of sender sets per
/// node. Slots are unique per `(s, x)`, so nodes never alias each other's
/// masks even though the storage is shared.
#[derive(Clone, Debug)]
pub struct PushPhase {
    x: NodeId,
    /// Memoized push-quorum sampler `I`, shared across the run's nodes
    /// (determinism: pure-function cache).
    push_quorums: SharedQuorumCache,
    /// Run-shared vote-mask arena; this node writes only the slots of its
    /// own quorums `I(·, x)`.
    votes: SlotMasks,
    /// Candidate strings currently being counted but not (yet) accepted.
    pending: usize,
    /// Accepted candidates, in acceptance order; position 0 is `s_x`.
    accepted: Vec<GString>,
    accepted_keys: FxHashSet<StringKey>,
}

impl PushPhase {
    /// Creates the push state for node `x` with initial candidate `own`.
    /// `L_x` starts as `{own}` (§3.1.1, Figure 2a).
    #[must_use]
    pub fn new(x: NodeId, own: GString, scheme: QuorumScheme) -> Self {
        Self::with_cache(x, own, scheme.shared_push())
    }

    /// Like [`PushPhase::new`], but sharing a run-wide quorum cache with
    /// the other nodes (see [`SharedQuorumCache`]). The vote arena stays
    /// private to this node; use [`PushPhase::with_votes`] to share both.
    #[must_use]
    pub fn with_cache(x: NodeId, own: GString, push_quorums: SharedQuorumCache) -> Self {
        Self::with_votes(x, own, push_quorums, SlotMasks::new())
    }

    /// Like [`PushPhase::with_cache`], but also placing this node's vote
    /// masks in a run-shared [`SlotMasks`] arena — the engine-owned
    /// struct-of-arrays layout used by full AER runs.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's quorum size `d` exceeds 128 (mask width).
    #[must_use]
    pub fn with_votes(
        x: NodeId,
        own: GString,
        push_quorums: SharedQuorumCache,
        votes: SlotMasks,
    ) -> Self {
        assert!(
            push_quorums.sampler().d() <= 128,
            "push quorum size d = {} exceeds the 128-bit vote masks",
            push_quorums.sampler().d()
        );
        let mut accepted_keys = FxHashSet::default();
        accepted_keys.insert(own.key());
        PushPhase {
            x,
            push_quorums,
            votes,
            pending: 0,
            accepted: vec![own],
            accepted_keys,
        }
    }

    /// This node's own initial candidate.
    #[must_use]
    pub fn own_candidate(&self) -> &GString {
        &self.accepted[0]
    }

    /// Handles a `Push(s)` from `from`. Returns `Some(s)` if this push
    /// crossed the majority threshold and `s` was *newly* accepted into
    /// `L_x`.
    ///
    /// Pushes from nodes outside `I(s, x)` are ignored (the sampler-based
    /// filter that makes flooding ineffective), as are duplicates from the
    /// same sender.
    pub fn on_push(&mut self, from: NodeId, s: GString) -> Option<GString> {
        let key = s.key();
        if self.accepted_keys.contains(&key) {
            return None;
        }
        let slot: SetSlot = self.push_quorums.slot(key, self.x);
        // Non-members of I(s, x) never reach the vote mask: flooding from
        // outside the quorum leaves no per-string state behind.
        let position = self.push_quorums.position_at(slot, from)?;
        let (newly, votes) = self.votes.vote(slot, position as u32);
        if !newly {
            return None; // duplicate sender
        }
        if votes == 1 {
            self.pending += 1;
        }
        if votes as usize >= self.push_quorums.majority() {
            self.pending -= 1;
            self.accepted_keys.insert(key);
            self.accepted.push(s);
            Some(s)
        } else {
            None
        }
    }

    /// The current candidate list `L_x`.
    #[must_use]
    pub fn candidates(&self) -> &[GString] {
        &self.accepted
    }

    /// Whether `s` has been accepted into `L_x`.
    #[must_use]
    pub fn contains(&self, s: &GString) -> bool {
        self.accepted_keys.contains(&s.key())
    }

    /// Number of candidate strings currently being counted but not (yet)
    /// accepted — exposure for flood-resistance experiments.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Crash-recovery: rebuilds `L_x` from a checkpointed accepted list
    /// (position 0 is `s_x`, as logged by the WAL's first record).
    ///
    /// The run-shared vote arena is left untouched: votes counted before
    /// the crash model pushes already received, and `pending` stays in
    /// lockstep with the arena's partially-filled masks — zeroing either
    /// without the other would desynchronise the majority accounting.
    pub fn restore_accepted(&mut self, accepted: &[GString]) {
        self.accepted.clear();
        self.accepted_keys.clear();
        for &s in accepted {
            if self.accepted_keys.insert(s.key()) {
                self.accepted.push(s);
            }
        }
    }
}

/// Computes, for every node `y`, the push target list
/// `{x : y ∈ I(s_y, x)}` given all nodes' initial candidates.
///
/// Each node could compute its own list locally by scanning `x ∈ [n]`
/// (the sampler is public); this helper deduplicates that work across
/// nodes sharing a candidate — one `O(n·d)` quorum sweep per *distinct*
/// string. A run with mostly-unique candidates (the unknowing fraction of
/// a synthetic precondition draws a fresh random string per node) makes
/// this the dominant setup cost at large `n`, so the sweep enumerates
/// quorum members through one reusable scratch bitmap and filters against
/// a holder bitmap — no per-string inverse materialisation. Per Lemma 3,
/// each returned list has expected length `d`.
///
/// # Panics
///
/// Panics if `assignments.len() != scheme.n()`.
#[must_use]
pub fn push_targets(scheme: &QuorumScheme, assignments: &[GString]) -> Vec<Vec<NodeId>> {
    let n = scheme.n();
    assert_eq!(
        assignments.len(),
        n,
        "one initial candidate per node required"
    );
    let mut by_key: FxHashMap<StringKey, Vec<usize>> = FxHashMap::default();
    for (i, s) in assignments.iter().enumerate() {
        by_key.entry(s.key()).or_default().push(i);
    }
    let mut targets: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let words = n.div_ceil(64);
    let mut holder = vec![0u64; words];
    let mut seen = vec![0u64; words];
    let mut members: Vec<NodeId> = Vec::with_capacity(scheme.push.d());
    for (key, holders) in &by_key {
        for &yi in holders {
            holder[yi >> 6] |= 1u64 << (yi & 63);
        }
        // One pass over receivers: append `x` to every holder of `key`
        // that sits in `I(key, x)`. Receivers are visited in ascending
        // order, so each target list comes out sorted by construction.
        for xi in 0..n {
            let x = NodeId::from_index(xi);
            members.clear();
            scheme.push.quorum_into(*key, x, &mut seen, &mut members);
            for y in &members {
                let yi = y.index();
                if holder[yi >> 6] & (1u64 << (yi & 63)) != 0 {
                    targets[yi].push(x);
                }
            }
        }
        for &yi in holders {
            holder[yi >> 6] &= !(1u64 << (yi & 63));
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_samplers::QuorumScheme;
    use std::collections::BTreeSet;

    fn scheme(n: usize, d: usize) -> QuorumScheme {
        QuorumScheme::new(7, n, d)
    }

    fn gs(tag: u8, len: usize) -> GString {
        GString::from_bits(
            &(0..len)
                .map(|i| (i as u8 + tag).is_multiple_of(3))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn own_candidate_is_preaccepted() {
        let sc = scheme(32, 5);
        let own = gs(1, 16);
        let p = PushPhase::new(NodeId::from_index(0), own, sc);
        assert!(p.contains(&own));
        assert_eq!(p.candidates(), &[own]);
        assert_eq!(p.own_candidate(), &own);
    }

    #[test]
    fn acceptance_requires_quorum_majority_of_distinct_members() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum = sc.push.quorum(s.key(), x);
        assert_eq!(quorum.len(), 5);
        let maj = sc.push.majority(); // 3

        // First two pushes: below threshold.
        assert!(p.on_push(quorum[0], s).is_none());
        assert!(p.on_push(quorum[1], s).is_none());
        // Duplicate sender does not advance the counter.
        assert!(p.on_push(quorum[1], s).is_none());
        assert!(!p.contains(&s));
        // Third distinct member crosses the majority.
        let newly = p.on_push(quorum[maj - 1], s);
        assert_eq!(newly, Some(s));
        assert!(p.contains(&s));
        // Further pushes for an accepted string are no-ops.
        assert!(p.on_push(quorum[3], s).is_none());
        assert_eq!(p.candidates().len(), 2);
    }

    #[test]
    fn pushes_from_non_members_are_filtered() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum: BTreeSet<_> = sc.push.quorum(s.key(), x).into_iter().collect();
        let outsiders: Vec<_> = (0..32)
            .map(NodeId::from_index)
            .filter(|y| !quorum.contains(y))
            .collect();
        for y in outsiders {
            assert!(p.on_push(y, s).is_none());
        }
        assert!(!p.contains(&s));
        assert_eq!(
            p.pending(),
            0,
            "non-member pushes must not allocate counters"
        );
    }

    #[test]
    fn pending_counts_in_flight_strings() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum = sc.push.quorum(s.key(), x);
        let _ = p.on_push(quorum[0], s);
        assert_eq!(p.pending(), 1);
    }

    #[test]
    fn push_targets_match_quorum_membership() {
        let n = 24;
        let sc = scheme(n, 5);
        let assignments: Vec<GString> = (0..n).map(|i| gs((i % 3) as u8, 16)).collect();
        let targets = push_targets(&sc, &assignments);
        for yi in 0..n {
            let y = NodeId::from_index(yi);
            let key = assignments[yi].key();
            // Forward check: every listed target's quorum contains y.
            for &x in &targets[yi] {
                assert!(sc.push.contains(key, x, y));
            }
            // Reverse check: every x whose quorum contains y is listed.
            for xi in 0..n {
                let x = NodeId::from_index(xi);
                if sc.push.contains(key, x, y) {
                    assert!(targets[yi].contains(&x), "missing target {x} for {y}");
                }
            }
        }
    }

    #[test]
    fn push_targets_have_logarithmic_expected_size() {
        let n = 256;
        let d = 10;
        let sc = scheme(n, d);
        // Everyone shares one string: per-node expected target count is d.
        let assignments: Vec<GString> = (0..n).map(|_| gs(0, 16)).collect();
        let targets = push_targets(&sc, &assignments);
        let total: usize = targets.iter().map(Vec::len).sum();
        assert_eq!(total, n * d, "every quorum slot maps to one push edge");
    }

    #[test]
    #[should_panic(expected = "one initial candidate per node")]
    fn push_targets_rejects_wrong_length() {
        let sc = scheme(8, 3);
        let _ = push_targets(&sc, &[gs(0, 16)]);
    }
}
