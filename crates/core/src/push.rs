//! The push phase (§3.1.1).
//!
//! Each node `y` diffuses its initial candidate `s_y` to every node `x`
//! with `y ∈ I(s_y, x)`. A receiving node `x` adds a string `s` to its
//! candidate list `L_x` iff *more than half* of the push quorum `I(s, x)`
//! pushed `s` to it. Because nodes never react to pushes by sending
//! messages, the phase is impervious to flooding: Byzantine pushes can add
//! work only through quorums they already control (Lemma 4 bounds the
//! total damage to `O(n)` candidate-list entries system-wide).

use std::collections::{BTreeSet, HashMap};

use fba_sim::fxhash::{FxHashMap, FxHashSet};

use fba_samplers::{GString, QuorumScheme, SharedQuorumCache, StringKey};
use fba_sim::NodeId;

/// Per-node push-phase state: counts distinct valid pushers per candidate
/// string and maintains the accepted list `L_x`.
#[derive(Clone, Debug)]
pub struct PushPhase {
    x: NodeId,
    /// Memoized push-quorum sampler `I`, shared across the run's nodes
    /// (determinism: pure-function cache).
    push_quorums: SharedQuorumCache,
    /// Distinct valid senders seen per candidate string.
    counters: FxHashMap<StringKey, Counter>,
    /// Accepted candidates, in acceptance order; position 0 is `s_x`.
    accepted: Vec<GString>,
    accepted_keys: FxHashSet<StringKey>,
}

#[derive(Clone, Debug)]
struct Counter {
    string: GString,
    senders: BTreeSet<NodeId>,
}

impl PushPhase {
    /// Creates the push state for node `x` with initial candidate `own`.
    /// `L_x` starts as `{own}` (§3.1.1, Figure 2a).
    #[must_use]
    pub fn new(x: NodeId, own: GString, scheme: QuorumScheme) -> Self {
        Self::with_cache(x, own, scheme.shared_push())
    }

    /// Like [`PushPhase::new`], but sharing a run-wide quorum cache with
    /// the other nodes (see [`SharedQuorumCache`]).
    #[must_use]
    pub fn with_cache(x: NodeId, own: GString, push_quorums: SharedQuorumCache) -> Self {
        let mut accepted_keys = FxHashSet::default();
        accepted_keys.insert(own.key());
        PushPhase {
            x,
            push_quorums,
            counters: FxHashMap::default(),
            accepted: vec![own],
            accepted_keys,
        }
    }

    /// This node's own initial candidate.
    #[must_use]
    pub fn own_candidate(&self) -> &GString {
        &self.accepted[0]
    }

    /// Handles a `Push(s)` from `from`. Returns `Some(s)` if this push
    /// crossed the majority threshold and `s` was *newly* accepted into
    /// `L_x`.
    ///
    /// Pushes from nodes outside `I(s, x)` are ignored (the sampler-based
    /// filter that makes flooding ineffective), as are duplicates from the
    /// same sender.
    pub fn on_push(&mut self, from: NodeId, s: GString) -> Option<GString> {
        let key = s.key();
        if self.accepted_keys.contains(&key) {
            return None;
        }
        if !self.push_quorums.contains(key, self.x, from) {
            return None;
        }
        let counter = self.counters.entry(key).or_insert_with(|| Counter {
            string: s,
            senders: BTreeSet::new(),
        });
        counter.senders.insert(from);
        if counter.senders.len() >= self.push_quorums.majority() {
            let accepted = counter.string;
            self.counters.remove(&key);
            self.accepted_keys.insert(key);
            self.accepted.push(accepted);
            Some(accepted)
        } else {
            None
        }
    }

    /// The current candidate list `L_x`.
    #[must_use]
    pub fn candidates(&self) -> &[GString] {
        &self.accepted
    }

    /// Whether `s` has been accepted into `L_x`.
    #[must_use]
    pub fn contains(&self, s: &GString) -> bool {
        self.accepted_keys.contains(&s.key())
    }

    /// Number of candidate strings currently being counted but not (yet)
    /// accepted — exposure for flood-resistance experiments.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.counters.len()
    }
}

/// Computes, for every node `y`, the push target list
/// `{x : y ∈ I(s_y, x)}` given all nodes' initial candidates.
///
/// Each node could compute its own list locally by scanning `x ∈ [n]`
/// (the sampler is public); this helper just deduplicates that work across
/// nodes sharing a candidate — one `O(n·d)` inverse pass per *distinct*
/// string. Per Lemma 3, each returned list has expected length `d`.
///
/// # Panics
///
/// Panics if `assignments.len() != scheme.n()`.
#[must_use]
pub fn push_targets(scheme: &QuorumScheme, assignments: &[GString]) -> Vec<Vec<NodeId>> {
    assert_eq!(
        assignments.len(),
        scheme.n(),
        "one initial candidate per node required"
    );
    let mut by_key: HashMap<StringKey, Vec<usize>> = HashMap::new();
    for (i, s) in assignments.iter().enumerate() {
        by_key.entry(s.key()).or_default().push(i);
    }
    let mut targets: Vec<Vec<NodeId>> = vec![Vec::new(); assignments.len()];
    for (key, holders) in by_key {
        let inverse = scheme.push.inverse_for_string(key);
        for yi in holders {
            targets[yi] = inverse[yi].clone();
        }
    }
    targets
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_samplers::QuorumScheme;

    fn scheme(n: usize, d: usize) -> QuorumScheme {
        QuorumScheme::new(7, n, d)
    }

    fn gs(tag: u8, len: usize) -> GString {
        GString::from_bits(
            &(0..len)
                .map(|i| (i as u8 + tag).is_multiple_of(3))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn own_candidate_is_preaccepted() {
        let sc = scheme(32, 5);
        let own = gs(1, 16);
        let p = PushPhase::new(NodeId::from_index(0), own, sc);
        assert!(p.contains(&own));
        assert_eq!(p.candidates(), &[own]);
        assert_eq!(p.own_candidate(), &own);
    }

    #[test]
    fn acceptance_requires_quorum_majority_of_distinct_members() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum = sc.push.quorum(s.key(), x);
        assert_eq!(quorum.len(), 5);
        let maj = sc.push.majority(); // 3

        // First two pushes: below threshold.
        assert!(p.on_push(quorum[0], s).is_none());
        assert!(p.on_push(quorum[1], s).is_none());
        // Duplicate sender does not advance the counter.
        assert!(p.on_push(quorum[1], s).is_none());
        assert!(!p.contains(&s));
        // Third distinct member crosses the majority.
        let newly = p.on_push(quorum[maj - 1], s);
        assert_eq!(newly, Some(s));
        assert!(p.contains(&s));
        // Further pushes for an accepted string are no-ops.
        assert!(p.on_push(quorum[3], s).is_none());
        assert_eq!(p.candidates().len(), 2);
    }

    #[test]
    fn pushes_from_non_members_are_filtered() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum: BTreeSet<_> = sc.push.quorum(s.key(), x).into_iter().collect();
        let outsiders: Vec<_> = (0..32)
            .map(NodeId::from_index)
            .filter(|y| !quorum.contains(y))
            .collect();
        for y in outsiders {
            assert!(p.on_push(y, s).is_none());
        }
        assert!(!p.contains(&s));
        assert_eq!(
            p.pending(),
            0,
            "non-member pushes must not allocate counters"
        );
    }

    #[test]
    fn pending_counts_in_flight_strings() {
        let sc = scheme(32, 5);
        let x = NodeId::from_index(3);
        let mut p = PushPhase::new(x, gs(1, 16), sc);
        let s = gs(2, 16);
        let quorum = sc.push.quorum(s.key(), x);
        let _ = p.on_push(quorum[0], s);
        assert_eq!(p.pending(), 1);
    }

    #[test]
    fn push_targets_match_quorum_membership() {
        let n = 24;
        let sc = scheme(n, 5);
        let assignments: Vec<GString> = (0..n).map(|i| gs((i % 3) as u8, 16)).collect();
        let targets = push_targets(&sc, &assignments);
        for yi in 0..n {
            let y = NodeId::from_index(yi);
            let key = assignments[yi].key();
            // Forward check: every listed target's quorum contains y.
            for &x in &targets[yi] {
                assert!(sc.push.contains(key, x, y));
            }
            // Reverse check: every x whose quorum contains y is listed.
            for xi in 0..n {
                let x = NodeId::from_index(xi);
                if sc.push.contains(key, x, y) {
                    assert!(targets[yi].contains(&x), "missing target {x} for {y}");
                }
            }
        }
    }

    #[test]
    fn push_targets_have_logarithmic_expected_size() {
        let n = 256;
        let d = 10;
        let sc = scheme(n, d);
        // Everyone shares one string: per-node expected target count is d.
        let assignments: Vec<GString> = (0..n).map(|_| gs(0, 16)).collect();
        let targets = push_targets(&sc, &assignments);
        let total: usize = targets.iter().map(Vec::len).sum();
        assert_eq!(total, n * d, "every quorum slot maps to one push edge");
    }

    #[test]
    #[should_panic(expected = "one initial candidate per node")]
    fn push_targets_rejects_wrong_length() {
        let sc = scheme(8, 3);
        let _ = push_targets(&sc, &[gs(0, 16)]);
    }
}
