//! AER configuration and validation.

use std::error::Error;
use std::fmt;

use fba_samplers::{default_quorum_size, gstring_len, PollSampler, QuorumScheme};
use fba_sim::ceil_log2;

/// Parameters of one AER deployment.
///
/// The paper's asymptotic choices are concretised here with explicit
/// constants; [`AerConfig::recommended`] reproduces the defaults used by
/// every experiment (`d = ⌈3·ln n⌉`, `|gstring| = 4·log₂ n`,
/// `cap = ⌈log₂ n⌉²`, `|R| = n²`), and EXPERIMENTS.md records deviations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AerConfig {
    /// System size `n`.
    pub n: usize,
    /// Number of Byzantine nodes the run is expected to tolerate; must
    /// satisfy `t < (1/3 − ε)·n`.
    pub t: usize,
    /// The slack `ε > 0` of the paper's resilience bound.
    pub epsilon: f64,
    /// Quorum and poll-list size `d = Θ(log n)`.
    pub d: usize,
    /// Length of candidate strings in bits (`c·log n`).
    pub string_len: usize,
    /// Overload cap: a poll-list member defers answering a string's pull
    /// requests once it has answered this many, until it decides
    /// (Algorithm 3's `log² n` filter).
    pub overload_cap: u64,
    /// Cardinality of the label domain `R` (polynomial in `n`).
    pub label_cardinality: u64,
    /// Public seed from which the shared samplers `I`, `H`, `J` derive.
    pub sampler_seed: u64,
    /// Steps a node waits for a poll to complete before redrawing its
    /// label (liveness extension beyond the paper; see DESIGN.md §8).
    /// Ignored when `poll_attempts ≤ 1` and `repair_attempts = 0`.
    ///
    /// The scale-aware default is [`AerConfig::sync_poll_horizon`]: one
    /// full fault-free delivery horizon, which is a property of the
    /// *pipeline depth* (a constant number of hops), not of `n`. Earlier
    /// revisions used an oversized fixed timeout here; at n ≥ 2048, where
    /// a few stragglers per run are statistically expected, that stacked
    /// `poll_attempts × timeout` idle steps in front of every repair and
    /// produced the ~26-step "retry wave" tail the ROADMAP recorded.
    pub poll_timeout: u64,
    /// Total poll attempts per candidate string (1 = the paper's single
    /// poll, no retries).
    pub poll_attempts: u32,
    /// Number of last-resort repair queries an undecided node may issue
    /// after exhausting its polls (0 = disabled / strict paper mode).
    /// Repair queries ask a fresh poll list for its members' decisions and
    /// adopt a strict-majority value — the same safety argument as
    /// Lemma 7.
    pub repair_attempts: u32,
    /// Escalate to the first repair query as soon as every poll has run a
    /// full `poll_timeout` without receiving a single answer, concurrently
    /// with the remaining retries, instead of serializing all
    /// `poll_attempts` first. Zero answers after a full delivery horizon
    /// is the signature of an unverifiable candidate (typically a push
    /// majority that never crossed), which label redraws cannot fix; this
    /// knob is what makes fault-free decision latency O(1) retry waves at
    /// every `n`. Ignored when `repair_attempts = 0`.
    pub eager_repair: bool,
}

impl AerConfig {
    /// The defaults used throughout the reproduction for system size `n`:
    /// `t = ⌊0.15·n⌋`, `ε = 1/12`, `d = ⌈3·ln n⌉`, `|s| = 4·log₂ n`,
    /// `cap = ⌈log₂ n⌉²`, `|R| = n²`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8` (the protocol is degenerate below that).
    #[must_use]
    pub fn recommended(n: usize) -> Self {
        assert!(n >= 8, "AER needs n ≥ 8, got {n}");
        let cfg = AerConfig {
            n,
            t: (n as f64 * 0.15) as usize,
            epsilon: 1.0 / 12.0,
            d: default_quorum_size(n, 3.0),
            string_len: gstring_len(n, 4),
            overload_cap: {
                let l = u64::from(ceil_log2(n));
                (l * l).max(4)
            },
            label_cardinality: PollSampler::default_cardinality(n),
            sampler_seed: 0x5eed,
            poll_timeout: Self::sync_poll_horizon(),
            poll_attempts: 3,
            repair_attempts: 4,
            eager_repair: true,
        };
        cfg.validate().expect("recommended config must be valid");
        cfg
    }

    /// The fault-free synchronous delivery horizon of one poll: the
    /// longest message chain a successful verification traverses —
    /// `Poll`/`Pull` → `Fw1` → `Fw2` → `Answer`, four hops — plus one
    /// step of slack for the push acceptance that may precede the poll.
    ///
    /// This is the natural unit for `poll_timeout`: it depends only on
    /// the pipeline's hop count, so it is *constant in `n`* — a poll that
    /// produced nothing within one horizon will not produce anything by
    /// waiting longer. Asynchronous engines multiply hop latency by their
    /// delay bound; retries and repair there fire early and harmlessly
    /// (every handler is idempotent and answer-majority gated).
    #[must_use]
    pub const fn sync_poll_horizon() -> u64 {
        5
    }

    /// Strict paper mode: one poll per candidate, no retries, no repair.
    /// Used by the timing experiments (Lemmas 6/8) where the liveness
    /// extensions would mask the adversary's delay chains.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.poll_attempts = 1;
        self.repair_attempts = 0;
        self.eager_repair = false;
        self
    }

    /// Returns a copy with a different Byzantine budget `t`.
    #[must_use]
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Returns a copy with a different sampler seed.
    #[must_use]
    pub fn with_sampler_seed(mut self, seed: u64) -> Self {
        self.sampler_seed = seed;
        self
    }

    /// Returns a copy with a different overload cap.
    #[must_use]
    pub fn with_overload_cap(mut self, cap: u64) -> Self {
        self.overload_cap = cap;
        self
    }

    /// Returns a copy with a different quorum size `d`.
    #[must_use]
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Checks the paper's parameter constraints.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n < 8 {
            return Err(ConfigError::SystemTooSmall { n: self.n });
        }
        if self.epsilon <= 0.0 || self.epsilon.is_nan() {
            return Err(ConfigError::NonPositiveEpsilon {
                epsilon: self.epsilon,
            });
        }
        let bound = (1.0 / 3.0 - self.epsilon) * self.n as f64;
        if (self.t as f64) >= bound {
            return Err(ConfigError::TooManyFaults {
                t: self.t,
                bound: bound.ceil() as usize,
            });
        }
        if self.d < 3 || self.d > self.n {
            return Err(ConfigError::BadQuorumSize {
                d: self.d,
                n: self.n,
            });
        }
        if self.string_len < 8 {
            return Err(ConfigError::StringTooShort {
                len: self.string_len,
            });
        }
        if self.overload_cap == 0 {
            return Err(ConfigError::ZeroOverloadCap);
        }
        if self.label_cardinality < 2 {
            return Err(ConfigError::LabelDomainTooSmall {
                cardinality: self.label_cardinality,
            });
        }
        if self.poll_attempts == 0 || (self.poll_attempts > 1 && self.poll_timeout == 0) {
            return Err(ConfigError::BadRetryPolicy {
                attempts: self.poll_attempts,
                timeout: self.poll_timeout,
            });
        }
        Ok(())
    }

    /// The shared push/pull quorum scheme (`I` and `H`).
    #[must_use]
    pub fn scheme(&self) -> QuorumScheme {
        QuorumScheme::new(self.sampler_seed, self.n, self.d)
    }

    /// The shared poll-list sampler (`J`).
    #[must_use]
    pub fn poll_sampler(&self) -> PollSampler {
        PollSampler::new(self.sampler_seed, self.n, self.d, self.label_cardinality)
    }

    /// Strict-majority threshold for quorums and poll lists
    /// (`⌊d/2⌋ + 1`).
    #[must_use]
    pub fn majority(&self) -> usize {
        self.d / 2 + 1
    }

    /// Default synchronous engine configuration for this deployment:
    /// enough steps for the retry/repair schedule to play out. The one
    /// source of the default — the harness and the scenario builder both
    /// delegate here.
    #[must_use]
    pub fn engine_sync(&self) -> fba_sim::EngineConfig {
        let budget = self.poll_timeout
            * (u64::from(self.poll_attempts) + u64::from(self.repair_attempts) + 2);
        fba_sim::EngineConfig {
            max_steps: budget.max(60),
            ..fba_sim::EngineConfig::sync(self.n)
        }
    }

    /// Default asynchronous engine configuration (`max_delay` steps of
    /// adversarial delay). The one source of the default — see
    /// [`AerConfig::engine_sync`].
    #[must_use]
    pub fn engine_async(&self, max_delay: fba_sim::Step) -> fba_sim::EngineConfig {
        fba_sim::EngineConfig {
            max_steps: 400,
            ..fba_sim::EngineConfig::asynchronous(self.n, max_delay)
        }
    }
}

/// A violated [`AerConfig`] constraint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `n` is too small for quorum logic to be meaningful.
    SystemTooSmall {
        /// Offending system size.
        n: usize,
    },
    /// `ε` must be strictly positive.
    NonPositiveEpsilon {
        /// Offending epsilon.
        epsilon: f64,
    },
    /// `t ≥ (1/3 − ε)·n`.
    TooManyFaults {
        /// Requested fault budget.
        t: usize,
        /// Exclusive upper bound implied by `n` and `ε`.
        bound: usize,
    },
    /// Quorum size out of `[3, n]`.
    BadQuorumSize {
        /// Requested quorum size.
        d: usize,
        /// System size.
        n: usize,
    },
    /// Candidate strings shorter than 8 bits.
    StringTooShort {
        /// Requested length.
        len: usize,
    },
    /// The overload cap must be at least 1.
    ZeroOverloadCap,
    /// The label domain must contain at least two labels.
    LabelDomainTooSmall {
        /// Requested cardinality.
        cardinality: u64,
    },
    /// `poll_attempts` must be at least 1, and retries need a non-zero
    /// timeout.
    BadRetryPolicy {
        /// Requested attempts.
        attempts: u32,
        /// Requested timeout.
        timeout: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SystemTooSmall { n } => write!(f, "system size {n} is below 8"),
            ConfigError::NonPositiveEpsilon { epsilon } => {
                write!(f, "epsilon must be positive, got {epsilon}")
            }
            ConfigError::TooManyFaults { t, bound } => {
                write!(f, "fault budget {t} reaches the (1/3 - eps) bound {bound}")
            }
            ConfigError::BadQuorumSize { d, n } => {
                write!(f, "quorum size {d} outside [3, {n}]")
            }
            ConfigError::StringTooShort { len } => {
                write!(
                    f,
                    "candidate strings of {len} bits are below the 8-bit floor"
                )
            }
            ConfigError::ZeroOverloadCap => write!(f, "overload cap must be at least 1"),
            ConfigError::LabelDomainTooSmall { cardinality } => {
                write!(f, "label domain of cardinality {cardinality} is too small")
            }
            ConfigError::BadRetryPolicy { attempts, timeout } => {
                write!(
                    f,
                    "retry policy of {attempts} attempts with timeout {timeout} is degenerate"
                )
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommended_is_valid_across_sizes() {
        for n in [8, 16, 64, 256, 1024, 4096] {
            let cfg = AerConfig::recommended(n);
            assert!(cfg.validate().is_ok(), "n={n}");
            assert!(cfg.d >= 3 && cfg.d <= n);
            assert!((cfg.t as f64) < (1.0 / 3.0 - cfg.epsilon) * n as f64);
        }
    }

    #[test]
    fn recommended_scales_logarithmically() {
        let small = AerConfig::recommended(64);
        let large = AerConfig::recommended(4096);
        assert!(large.d > small.d);
        assert!(large.d < 4 * small.d);
        assert!(large.string_len > small.string_len);
    }

    #[test]
    #[should_panic(expected = "n ≥ 8")]
    fn recommended_rejects_tiny_systems() {
        let _ = AerConfig::recommended(4);
    }

    #[test]
    fn validate_rejects_too_many_faults() {
        let cfg = AerConfig::recommended(100).with_t(40);
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TooManyFaults { t: 40, bound: 25 })
        );
    }

    #[test]
    fn validate_rejects_bad_quorum() {
        let cfg = AerConfig::recommended(64).with_d(2);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadQuorumSize { .. })
        ));
        let cfg = AerConfig::recommended(64).with_d(65);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadQuorumSize { .. })
        ));
    }

    #[test]
    fn validate_rejects_degenerate_fields() {
        let mut cfg = AerConfig::recommended(64);
        cfg.epsilon = 0.0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::NonPositiveEpsilon { .. })
        ));

        let mut cfg = AerConfig::recommended(64);
        cfg.string_len = 4;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::StringTooShort { .. })
        ));

        let cfg = AerConfig::recommended(64).with_overload_cap(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroOverloadCap));

        let mut cfg = AerConfig::recommended(64);
        cfg.label_cardinality = 1;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LabelDomainTooSmall { .. })
        ));

        let mut cfg = AerConfig::recommended(64);
        cfg.poll_attempts = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadRetryPolicy { .. })
        ));

        let mut cfg = AerConfig::recommended(64);
        cfg.poll_timeout = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadRetryPolicy { .. })
        ));
    }

    #[test]
    fn strict_mode_disables_liveness_extensions() {
        let cfg = AerConfig::recommended(64).strict();
        assert_eq!(cfg.poll_attempts, 1);
        assert_eq!(cfg.repair_attempts, 0);
        assert!(!cfg.eager_repair);
        assert!(cfg.validate().is_ok(), "strict mode must stay valid");
    }

    #[test]
    fn recommended_timeout_is_the_delivery_horizon_at_every_scale() {
        // The retry-wave fix: the poll timeout tracks pipeline depth, not
        // n, so the retry/repair schedule is identical at every scale.
        for n in [8, 64, 1024, 4096, 16384] {
            let cfg = AerConfig::recommended(n);
            assert_eq!(cfg.poll_timeout, AerConfig::sync_poll_horizon(), "n={n}");
            assert!(cfg.eager_repair, "n={n}");
        }
    }

    #[test]
    fn builders_override_fields() {
        let cfg = AerConfig::recommended(64)
            .with_t(5)
            .with_sampler_seed(9)
            .with_overload_cap(77)
            .with_d(11);
        assert_eq!(cfg.t, 5);
        assert_eq!(cfg.sampler_seed, 9);
        assert_eq!(cfg.overload_cap, 77);
        assert_eq!(cfg.d, 11);
    }

    #[test]
    fn derived_samplers_share_seed_and_size() {
        let cfg = AerConfig::recommended(128);
        let scheme = cfg.scheme();
        let poll = cfg.poll_sampler();
        assert_eq!(scheme.n(), 128);
        assert_eq!(scheme.d(), cfg.d);
        assert_eq!(poll.n(), 128);
        assert_eq!(poll.d(), cfg.d);
        assert_eq!(poll.label_cardinality(), cfg.label_cardinality);
    }

    #[test]
    fn majority_is_strict() {
        let cfg = AerConfig::recommended(64).with_d(12);
        assert_eq!(cfg.majority(), 7);
        let cfg = cfg.with_d(13);
        assert_eq!(cfg.majority(), 7);
    }

    #[test]
    fn errors_display_is_informative() {
        let err = ConfigError::TooManyFaults { t: 40, bound: 25 };
        let shown = err.to_string();
        assert!(shown.contains("40") && shown.contains("25"));
    }
}
