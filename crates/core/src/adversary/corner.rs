//! The Lemma 6 cornering/overload attack.
//!
//! In asynchronous (or synchronous rushing) executions the adversary can
//! see where each node sent its pull requests and react in the same step.
//! The attack (§4.3, proof of Lemma 6):
//!
//! 1. observe the `Poll(gstring, r)` messages of victim requesters,
//!    revealing their poll lists `J(x, r)`;
//! 2. issue the adversary's own *legitimate-looking* pull requests for
//!    `gstring` — each corrupt node gets exactly one forwarded request
//!    (the routers' forward-once filter caps the rest) — choosing poll
//!    labels so the requests land on chosen *overload targets*;
//! 3. once a target has answered `log² n` requests it defers further
//!    answers until it has decided (Algorithm 3), so the victims that
//!    depend on it must wait for the target's own decision: a dependency
//!    chain;
//! 4. intra-step scheduling (asynchrony) delivers the adversary's
//!    forwards first, so its requests exhaust the cap before the victims'
//!    arrive.
//!
//! The chain is grown breadth-first: block the root victim by overloading
//! just enough of its knowing poll-list members that the remainder is one
//! short of a majority, then block those members the same way, and so on
//! until the overload budget runs out. Lemma 2's expansion property is
//! what bounds the achievable depth at `O(log n / log log n)`; the `l6`
//! experiment measures the depth this attacker actually achieves.

use std::collections::{BTreeMap, BTreeSet};

use fba_samplers::Label;
use fba_sim::{choose_corrupt, Adversary, Envelope, NodeId, Outbox, Step};
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

use super::AttackContext;

/// What the attack planned and achieved — exposed for the `l6`
/// experiment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CornerReport {
    /// Victim requesters the plan tried to block.
    pub blocked_victims: usize,
    /// Distinct overload targets chosen.
    pub overload_targets: usize,
    /// Planned BFS depth of the dependency chain.
    pub planned_depth: usize,
    /// Overload units actually covered by label assignment (each unit is
    /// one corrupt pull landing on one target).
    pub covered_units: usize,
    /// Units the plan needed (`(cap + 1)` per target).
    pub needed_units: usize,
}

/// The cornering attacker.
#[derive(Clone, Debug)]
pub struct Corner {
    ctx: AttackContext,
    /// Labels scanned per corrupt node when aiming its poll list.
    pub label_scan: u64,
    corrupt: Vec<NodeId>,
    corrupt_set: BTreeSet<NodeId>,
    launched: bool,
    report: CornerReport,
}

impl Corner {
    /// Creates the attacker; `label_scan` bounds the per-corrupt-node
    /// label search (larger = better aim, slower).
    #[must_use]
    pub fn new(ctx: AttackContext, label_scan: u64) -> Self {
        Corner {
            ctx,
            label_scan,
            corrupt: Vec::new(),
            corrupt_set: BTreeSet::new(),
            launched: false,
            report: CornerReport::default(),
        }
    }

    /// The plan/coverage report (valid once the attack launched).
    #[must_use]
    pub fn report(&self) -> &CornerReport {
        &self.report
    }

    /// Whether a node is correct and initially knows gstring (will answer
    /// gstring polls).
    fn is_knowing(&self, id: NodeId) -> bool {
        !self.corrupt_set.contains(&id)
            && self.ctx.assignments[id.index()].key() == self.ctx.gstring.key()
    }

    /// Plans the overload target set from the observed victim polls.
    fn plan_targets(&mut self, victims: &BTreeMap<NodeId, Label>) -> BTreeSet<NodeId> {
        let majority = self.ctx.poll.majority();
        let cap_units = (self.ctx.overload_cap + 1) as usize;
        // Effective per-pull coverage is limited by label aiming; assume a
        // conservative 4 hits per corrupt pull when sizing the plan.
        let budget_units = self.corrupt.len() * 4;
        let max_targets = (budget_units / cap_units).max(1);

        let mut targets: BTreeSet<NodeId> = BTreeSet::new();
        let mut queue: Vec<(NodeId, usize)> = Vec::new();
        let mut blocked: BTreeSet<NodeId> = BTreeSet::new();
        let mut depth_reached = 0;

        // Roots: the first victims in id order.
        for (&x, _) in victims.iter().take(2) {
            queue.push((x, 0));
        }
        let mut qi = 0;
        while qi < queue.len() && targets.len() < max_targets {
            let (x, depth) = queue[qi];
            qi += 1;
            let Some(&r) = victims.get(&x) else { continue };
            if !blocked.insert(x) {
                continue;
            }
            depth_reached = depth_reached.max(depth);
            let members = self.ctx.poll.poll_list(x, r);
            let knowing: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|&w| self.is_knowing(w))
                .collect();
            if knowing.len() < majority {
                continue; // already blocked by sampling luck
            }
            let need = knowing.len() - majority + 1;
            // Prefer overloading members that are themselves observable
            // victims, extending the chain.
            let mut picks: Vec<NodeId> = knowing
                .iter()
                .copied()
                .filter(|w| victims.contains_key(w) && !blocked.contains(w))
                .take(need)
                .collect();
            for &w in &knowing {
                if picks.len() >= need {
                    break;
                }
                if !picks.contains(&w) {
                    picks.push(w);
                }
            }
            for w in picks {
                targets.insert(w);
                if victims.contains_key(&w) && !blocked.contains(&w) {
                    queue.push((w, depth + 1));
                }
                if targets.len() >= max_targets {
                    break;
                }
            }
        }
        self.report.blocked_victims = blocked.len();
        self.report.overload_targets = targets.len();
        self.report.planned_depth = depth_reached + 1;
        self.report.needed_units = targets.len() * cap_units;
        targets
    }

    /// Aims each corrupt node's single forwarded pull at the target set.
    fn launch(&mut self, targets: &BTreeSet<NodeId>, out: &mut Outbox<'_, AerMsg>) {
        let g = self.ctx.gstring;
        let key = g.key();
        let cap_units = (self.ctx.overload_cap + 1) as usize;
        let mut coverage: BTreeMap<NodeId, usize> = targets.iter().map(|&w| (w, 0)).collect();
        for &z in &self.corrupt.clone() {
            // Scan labels for the one whose poll list hits the most
            // still-needy targets.
            let mut best: (usize, Label) = (0, Label(0));
            let scan = self.label_scan.min(self.ctx.poll.label_cardinality());
            for raw in 0..scan {
                let r = Label(raw);
                let hits = self
                    .ctx
                    .poll
                    .poll_list(z, r)
                    .iter()
                    .filter(|w| coverage.get(w).is_some_and(|&c| c < cap_units))
                    .count();
                if hits > best.0 {
                    best = (hits, r);
                }
            }
            let r = best.1;
            for w in self.ctx.poll.poll_list(z, r) {
                if let Some(c) = coverage.get_mut(&w) {
                    *c += 1;
                    self.report.covered_units += 1;
                }
            }
            // The legitimate-looking request: Poll to J(z, r), Pull to
            // H(gstring, z). Routers forward it once; three hops later the
            // Fw2 majorities make every polled target do answering work.
            for w in self.ctx.poll.poll_list(z, r) {
                out.send_as(z, w, AerMsg::Poll(g, r));
            }
            for y in self.ctx.scheme.pull.quorum(key, z) {
                out.send_as(z, y, AerMsg::Pull(g, r));
            }
        }
    }
}

impl Adversary<AerMsg> for Corner {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.iter().copied().collect();
        self.corrupt_set = set.clone();
        set
    }

    fn rushing(&self) -> bool {
        true
    }

    fn act(
        &mut self,
        _step: Step,
        view: Option<&[Envelope<AerMsg>]>,
        out: &mut Outbox<'_, AerMsg>,
    ) {
        if self.launched {
            return;
        }
        let Some(view) = view else { return };
        // Collect victims: requesters polling for gstring this step.
        let gkey = self.ctx.gstring.key();
        let mut victims: BTreeMap<NodeId, Label> = BTreeMap::new();
        for env in view {
            if let AerMsg::Poll(s, r) = &env.msg {
                if s.key() == gkey && !self.corrupt_set.contains(&env.from) {
                    victims.entry(env.from).or_insert(*r);
                }
            }
        }
        if victims.is_empty() {
            return;
        }
        self.launched = true;
        let targets = self.plan_targets(&victims);
        self.launch(&targets, out);
    }

    fn delay(&mut self, env: &Envelope<AerMsg>) -> Step {
        // Asynchrony: stall honest traffic to the reliability bound (the
        // engine clamps to `max_delay`, so this is a no-op in the
        // synchronous and `max_delay = 1` regimes every pinned experiment
        // runs), while traffic serving corrupt requesters — and the
        // corrupt nodes' own sends — rides the fast lane. This is the
        // worst-case scheduler of §2.1: victims' verification pipelines
        // run `max_delay×` slower than the attack's.
        if self.corrupt_set.contains(&env.from) {
            return 1;
        }
        match &env.msg {
            AerMsg::Fw2 { origin, .. } | AerMsg::Fw1 { origin, .. }
                if self.corrupt_set.contains(origin) =>
            {
                1
            }
            _ => Step::MAX,
        }
    }

    fn priority(&mut self, env: &Envelope<AerMsg>) -> i64 {
        // Asynchrony: within a step, deliver forwards serving corrupt
        // requesters first so they exhaust the overload cap before the
        // victims' forwards are processed.
        match &env.msg {
            AerMsg::Fw2 { origin, .. } | AerMsg::Fw1 { origin, .. } => {
                if self.corrupt_set.contains(origin) {
                    -1
                } else {
                    1
                }
            }
            _ => 0,
        }
    }

    // `schedules` stays at the default `true`: `delay` and `priority` are
    // both overridden.

    fn observes(&self) -> bool {
        false // `observe` is the default no-op (reactions use the rushing view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AttackContext;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;

    fn setup(n: usize, cap: u64) -> (AerHarness, AttackContext) {
        let cfg = AerConfig::recommended(n).with_overload_cap(cap).strict();
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.85,
            UnknowingAssignment::RandomPerNode,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let ctx = AttackContext::new(&h, pre.gstring);
        (h, ctx)
    }

    #[test]
    fn attack_launches_once_on_observing_polls() {
        let (h, ctx) = setup(64, 3);
        let g = ctx.gstring;
        let mut adv = Corner::new(ctx, 64);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);

        // Fabricate a rushing view: two victims poll gstring.
        let poll = h.poll_sampler();
        let victims: Vec<NodeId> = (0..64)
            .map(NodeId::from_index)
            .filter(|id| !corrupt.contains(id))
            .take(2)
            .collect();
        let mut view = Vec::new();
        for (i, &x) in victims.iter().enumerate() {
            let r = Label(i as u64);
            for w in poll.poll_list(x, r) {
                view.push(Envelope {
                    from: x,
                    to: w,
                    sent_at: 0,
                    msg: AerMsg::Poll(g, r),
                });
            }
        }
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, Some(&view), &mut out);
        assert!(!out.is_empty(), "attack must launch");
        let report = adv.report().clone();
        assert!(report.overload_targets > 0);
        assert!(report.planned_depth >= 1);
        assert!(report.covered_units > 0);

        // Second act is a no-op (single volley per run).
        let mut out2 = Outbox::new(&corrupt, 64);
        adv.act(1, Some(&view), &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn corrupt_pulls_look_legitimate() {
        let (h, ctx) = setup(64, 3);
        let g = ctx.gstring;
        let mut adv = Corner::new(ctx, 32);
        let mut rng = derive_rng(2, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let poll = h.poll_sampler();
        let scheme = h.scheme();

        let x = (0..64)
            .map(NodeId::from_index)
            .find(|id| !corrupt.contains(id))
            .unwrap();
        let r = Label(9);
        let view: Vec<Envelope<AerMsg>> = poll
            .poll_list(x, r)
            .into_iter()
            .map(|w| Envelope {
                from: x,
                to: w,
                sent_at: 0,
                msg: AerMsg::Poll(g, r),
            })
            .collect();
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, Some(&view), &mut out);
        for (from, to, msg) in out.into_sends() {
            match msg {
                AerMsg::Poll(s, r) => {
                    assert_eq!(s, g);
                    assert!(poll.contains(from, r, to), "poll outside J({from}, r)");
                }
                AerMsg::Pull(s, _) => {
                    assert_eq!(s, g);
                    assert!(
                        scheme.pull.contains(s.key(), from, to),
                        "pull outside H(g, {from})"
                    );
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn priorities_favor_corrupt_origins() {
        let (_, ctx) = setup(64, 3);
        let g = ctx.gstring;
        let mut adv = Corner::new(ctx, 8);
        let mut rng = derive_rng(3, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let z = *corrupt.iter().next().unwrap();
        let x = (0..64)
            .map(NodeId::from_index)
            .find(|id| !corrupt.contains(id))
            .unwrap();
        let mk = |origin: NodeId| Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 0,
            msg: AerMsg::Fw2 {
                origin,
                s: g,
                r: Label(0),
            },
        };
        assert!(adv.priority(&mk(z)) < adv.priority(&mk(x)));
    }
}
