//! Byzantine strategies against AER.
//!
//! §2.1 of the paper: the adversary controls up to `t` nodes, knows the
//! whole network, coordinates all corrupt nodes, and may be *rushing*
//! (sees correct messages of the current step before choosing its own).
//! The strategies here exercise the protocol's defences:
//!
//! * [`RandomStringFlood`] — blind push flooding; the sampler filter of
//!   §3.1.1 must discard it entirely.
//! * [`PushFlood`] — coherent pushing of one adversary-chosen string
//!   through the quorum slots the adversary legitimately occupies; the
//!   attack Lemma 4 bounds.
//! * [`Equivocate`] — each corrupt node pushes several different strings
//!   to different victims (no transferable authentication means nothing
//!   stops equivocation except the quorum majorities).
//! * [`PullFlood`] — pull-request spraying; the forward-once filter of
//!   Algorithm 2 must cap the induced routing work at one verification
//!   per corrupt node (§2.3's "pull requests are filtered" claim).
//! * [`BadString`] — the full safety attack of Lemma 7: corrupt nodes
//!   push, route, relay and answer for a coherent bogus string, rushing
//!   their answers so they outrace honest ones.
//! * [`Corner`] — the Lemma 6 attack: overload the poll-list members of
//!   victim requesters with legitimate-looking pull requests for
//!   `gstring`, forcing answer deferral chains; combined with
//!   adversarial intra-step scheduling this is what stretches AER to
//!   `O(log n / log log n)` time.
//!
//! * [`Composed`] — a windowed composition of the above: a
//!   `sched:[0..5]silent:9;[5..12]flood;[12..]corner:512` fault schedule
//!   swaps the active strategy at step-window boundaries while each
//!   window keeps its own state for the whole run (the mixed-adversary
//!   matrix the paper's adaptive adversary implies).
//!
//! All strategies implement [`fba_sim::Adversary`] and are driven by the
//! same engine as the correct nodes. [`fba_sim::NoAdversary`] and
//! [`fba_sim::SilentAdversary`] cover the benign cases.

mod bad_string;
mod composed;
mod corner;
mod equivocate;
mod flood;
mod pull_flood;
mod registry;

pub use bad_string::BadString;
pub use composed::Composed;
pub use corner::{Corner, CornerReport};
pub use equivocate::Equivocate;
pub use flood::{PushFlood, RandomStringFlood};
pub use pull_flood::PullFlood;
pub use registry::AerAdversary;

use fba_samplers::{GString, PollSampler, QuorumScheme};

use crate::aer::AerHarness;

/// Everything an attack strategy knows about the deployment — the
/// full-information assumption made concrete: configuration, shared
/// samplers, every node's initial candidate, and `gstring` itself.
#[derive(Clone, Debug)]
pub struct AttackContext {
    /// Deployment size.
    pub n: usize,
    /// Fault budget the strategy will use.
    pub t: usize,
    /// Quorum size.
    pub d: usize,
    /// Overload cap of Algorithm 3 (`log² n`).
    pub overload_cap: u64,
    /// The shared push/pull quorum samplers.
    pub scheme: QuorumScheme,
    /// The shared poll-list sampler.
    pub poll: PollSampler,
    /// Initial candidate of every node.
    pub assignments: Vec<GString>,
    /// The global string (full information: the adversary knows it).
    pub gstring: GString,
}

impl AttackContext {
    /// Builds the context from a harness plus the gstring the run is
    /// converging to.
    #[must_use]
    pub fn new(harness: &AerHarness, gstring: GString) -> Self {
        let cfg = harness.config();
        AttackContext {
            n: cfg.n,
            t: cfg.t,
            d: cfg.d,
            overload_cap: cfg.overload_cap,
            scheme: harness.scheme(),
            poll: harness.poll_sampler(),
            assignments: harness.assignments().to_vec(),
            gstring,
        }
    }
}
