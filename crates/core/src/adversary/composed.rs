//! Windowed composition of AER attack strategies.
//!
//! The paper's adversary is adaptive in *behaviour* (it may corrupt the
//! schedule, silence nodes, and flood at different moments of a run) even
//! though the corrupt *set* is fixed up front (§2.1, non-adaptive
//! corruption). [`Composed`] realises exactly that: a
//! [`fba_sim::ScheduleSpec`] assigns one strategy per step window, and the
//! composition dispatches the active window's strategy at every engine
//! hook while each strategy keeps its own state for the whole run — the
//! Lemma 6 [`CornerReport`] of a `corner` window stays inspectable after
//! the run ends, exactly as for a bare `corner` spec.
//!
//! Semantics:
//!
//! * **Corrupt set** — chosen once, before the run (non-adaptive): every
//!   window's strategy draws its corrupt set from an identical clone of
//!   the engine's corruption RNG, so windows that budget the same `t`
//!   draw the *same* coalition (one coalition, several behaviours).
//!   Windows that corrupt nobody (`none`) are exempt; any other budget
//!   disagreement would silently corrupt more than the declared fault
//!   bound, so [`Composed`] treats differing window coalitions as an
//!   invariant violation (the `Scenario` builder rejects mismatched
//!   budgets with a proper error before a run ever starts).
//! * **Step rebasing** — the active strategy sees steps relative to its
//!   window start: a `flood` window `[5..12]` fires its step-0 volley at
//!   absolute step 5. This is what makes `sched:[0..]X` bit-identical to
//!   the bare `X`.
//! * **Rushing** — the composition is rushing iff *any* window's strategy
//!   is (the engine needs the per-step view computed); non-rushing
//!   windows still receive `None`, preserving each strategy's own
//!   observation regime.
//! * **Scheduling power** — delay/priority queries dispatch on the
//!   envelope's send step, so asynchronous scheduling switches over at
//!   window boundaries along with everything else.
//! * **Gaps** — steps no window covers behave like
//!   [`fba_sim::NoAdversary`]: nothing is sent, nothing is delayed.

use std::collections::BTreeSet;

use fba_samplers::GString;
use fba_sim::{Adversary, Envelope, NodeId, Outbox, ScheduleSpec, Step, Window};
use rand_chacha::ChaCha12Rng;

use crate::adversary::{AerAdversary, AttackContext, CornerReport};
use crate::msg::AerMsg;

/// A composed fault schedule over the AER strategy registry: one
/// [`AerAdversary`] per step window (see the module docs for the exact
/// dispatch semantics).
#[derive(Clone, Debug)]
pub struct Composed {
    windows: Vec<(Window, AerAdversary)>,
}

impl Composed {
    /// Instantiates every window's strategy from the schedule.
    ///
    /// `ctx` and `bad` are shared by all windows, exactly as
    /// [`AerAdversary::from_spec`] uses them for a single strategy.
    /// Nested schedules are unrepresentable ([`ScheduleSpec::new`]
    /// rejects them), so construction cannot recurse.
    #[must_use]
    pub fn from_schedule(schedule: &ScheduleSpec, ctx: &AttackContext, bad: GString) -> Self {
        Composed {
            windows: schedule
                .windows()
                .iter()
                .map(|(w, spec)| (*w, AerAdversary::from_spec(spec, ctx.clone(), bad)))
                .collect(),
        }
    }

    /// The strategy whose window covers `step`, with its window start
    /// (for step rebasing).
    fn active(&mut self, step: Step) -> Option<(Step, &mut AerAdversary)> {
        self.windows
            .iter_mut()
            .find(|(w, _)| w.contains(step))
            .map(|(w, a)| (w.start, a))
    }

    /// The `(window, strategy)` pairs, in step order — post-run state of
    /// every window stays inspectable here.
    #[must_use]
    pub fn windows(&self) -> &[(Window, AerAdversary)] {
        &self.windows
    }

    /// The first `corner` window's report, if the schedule fields one.
    #[must_use]
    pub fn corner_report(&self) -> Option<&CornerReport> {
        self.windows.iter().find_map(|(_, a)| a.corner_report())
    }
}

impl Adversary<AerMsg> for Composed {
    /// # Panics
    ///
    /// Panics if two corrupting windows draw different coalitions
    /// (mismatched budgets — e.g. `silent:3` next to a `t`-budget
    /// strategy). Running such a schedule would silently corrupt more
    /// nodes than the declared fault bound; the `Scenario` builder
    /// rejects the mismatch with a typed error before reaching this
    /// invariant check.
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        // Every window draws from an identical RNG state: windows with
        // equal budgets pick identical coalitions, and a single-window
        // schedule consumes exactly the stream the bare strategy would.
        let snapshot = rng.clone();
        let mut coalition: Option<BTreeSet<NodeId>> = None;
        for (window, strategy) in &mut self.windows {
            let mut window_rng = snapshot.clone();
            let set = strategy.corrupt(n, &mut window_rng);
            if set.is_empty() {
                continue; // `none` windows corrupt nobody.
            }
            match &coalition {
                None => coalition = Some(set),
                Some(existing) => assert_eq!(
                    *existing, set,
                    "fault-schedule window {window} drew a different coalition than an \
                     earlier window — align every corrupting window on one budget \
                     (same `silent:<t>` override, or the scenario fault budget)"
                ),
            }
        }
        coalition.unwrap_or_default()
    }

    fn rushing(&self) -> bool {
        self.windows.iter().any(|(_, a)| a.rushing())
    }

    fn act(&mut self, step: Step, view: Option<&[Envelope<AerMsg>]>, out: &mut Outbox<'_, AerMsg>) {
        if let Some((start, strategy)) = self.active(step) {
            let view = if strategy.rushing() { view } else { None };
            strategy.act(step - start, view, out);
        }
    }

    fn observe(&mut self, step: Step, sends: &[Envelope<AerMsg>]) {
        if let Some((start, strategy)) = self.active(step) {
            strategy.observe(step - start, sends);
        }
    }

    fn delay(&mut self, env: &Envelope<AerMsg>) -> Step {
        match self.active(env.sent_at) {
            Some((_, strategy)) => strategy.delay(env),
            None => 1,
        }
    }

    fn priority(&mut self, env: &Envelope<AerMsg>) -> i64 {
        match self.active(env.sent_at) {
            Some((_, strategy)) => strategy.priority(env),
            None => 0,
        }
    }

    fn schedules(&self) -> bool {
        self.windows.iter().any(|(_, a)| a.schedules())
    }

    fn observes(&self) -> bool {
        self.windows.iter().any(|(_, a)| a.observes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::BadString;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_samplers::Label;
    use fba_sim::rng::derive_rng;
    use fba_sim::AdversarySpec;

    fn context(n: usize) -> (AttackContext, GString) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::SharedAdversarial,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let bad = *pre
            .assignments
            .iter()
            .find(|s| **s != pre.gstring)
            .expect("bogus exists");
        (AttackContext::new(&h, pre.gstring), bad)
    }

    fn schedule(windows: Vec<(Window, AdversarySpec)>) -> ScheduleSpec {
        ScheduleSpec::new(windows).expect("valid schedule")
    }

    #[test]
    fn strategies_fire_relative_to_their_window() {
        let (ctx, bad) = context(64);
        // flood's entire volley happens at its window-relative step 0.
        let sched = schedule(vec![
            (Window::bounded(0, 3), AdversarySpec::Silent { t: None }),
            (Window::open(3), AdversarySpec::PushFlood),
        ]);
        let mut adv = Composed::from_schedule(&sched, &ctx, bad);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        assert!(!corrupt.is_empty());

        for step in 0..3 {
            let mut out = Outbox::new(&corrupt, 64);
            adv.act(step, None, &mut out);
            assert!(out.is_empty(), "silent window must stay silent");
        }
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(3, None, &mut out);
        assert!(!out.is_empty(), "flood fires at its window start");
        let mut later = Outbox::new(&corrupt, 64);
        adv.act(4, None, &mut later);
        assert!(later.is_empty(), "flood's volley is one-shot");
    }

    #[test]
    fn gap_steps_act_like_no_adversary() {
        let (ctx, bad) = context(64);
        let sched = schedule(vec![
            (Window::bounded(0, 1), AdversarySpec::PushFlood),
            (Window::bounded(5, 6), AdversarySpec::Silent { t: None }),
        ]);
        let mut adv = Composed::from_schedule(&sched, &ctx, bad);
        let mut rng = derive_rng(2, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(3, None, &mut out);
        assert!(out.is_empty(), "no window covers step 3");
        let env = Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 3,
            msg: AerMsg::Push(bad),
        };
        assert_eq!(adv.delay(&env), 1);
        assert_eq!(adv.priority(&env), 0);
    }

    #[test]
    fn window_state_does_not_leak_across_the_boundary() {
        // Two bad-string windows: the `answered` dedup set of window 1
        // must not suppress the answer of window 2's fresh instance.
        let (ctx, bad) = context(64);
        let sched = schedule(vec![
            (Window::bounded(0, 4), AdversarySpec::BadString),
            (Window::open(4), AdversarySpec::BadString),
        ]);
        let mut adv = Composed::from_schedule(&sched, &ctx, bad);
        let mut rng = derive_rng(3, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);

        // A hand-wired single BadString drawing from the same RNG state
        // picks the same coalition — the union is that one set.
        let mut bare = BadString::new(ctx.clone(), bad);
        let mut bare_rng = derive_rng(3, &[]);
        assert_eq!(
            Adversary::<AerMsg>::corrupt(&mut bare, 64, &mut bare_rng),
            corrupt
        );

        let z = *corrupt.iter().next().unwrap();
        let x = (0..64)
            .map(NodeId::from_index)
            .find(|id| !corrupt.contains(id))
            .unwrap();
        let poll = |step| Envelope {
            from: x,
            to: z,
            sent_at: step,
            msg: AerMsg::Poll(bad, Label(3)),
        };
        let answers = |sends: Vec<(NodeId, NodeId, AerMsg)>| {
            sends
                .iter()
                .filter(|(_, _, m)| matches!(m, AerMsg::Answer(_)))
                .count()
        };

        // Window 1 answers the poll once, then dedups it.
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(1, Some(&[poll(1)]), &mut out);
        assert_eq!(answers(out.into_sends()), 1, "window 1 answers");
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(2, Some(&[poll(2)]), &mut out);
        assert_eq!(answers(out.into_sends()), 0, "window 1 dedups");

        // Window 2 is a fresh instance: it answers the same poll again.
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(5, Some(&[poll(5)]), &mut out);
        assert_eq!(
            answers(out.into_sends()),
            1,
            "window 2 must not inherit window 1's answered set"
        );
    }

    #[test]
    fn non_rushing_windows_never_see_the_rushing_view() {
        // silent (non-rushing) + bad-string (rushing): the composition is
        // rushing, but the silent window receives no view — and sends
        // nothing even when handed one.
        let (ctx, bad) = context(64);
        let sched = schedule(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::BadString),
        ]);
        let mut adv = Composed::from_schedule(&sched, &ctx, bad);
        assert!(Adversary::<AerMsg>::rushing(&adv), "any window rushing");
        let mut rng = derive_rng(4, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let z = *corrupt.iter().next().unwrap();
        let x = (0..64)
            .map(NodeId::from_index)
            .find(|id| !corrupt.contains(id))
            .unwrap();
        let view = [Envelope {
            from: x,
            to: z,
            sent_at: 0,
            msg: AerMsg::Poll(bad, Label(0)),
        }];
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, Some(&view), &mut out);
        assert!(out.is_empty(), "silent window ignores the view");
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(2, Some(&view), &mut out);
        assert!(!out.is_empty(), "bad-string window reacts");
    }

    #[test]
    #[should_panic(expected = "different coalition")]
    fn mismatched_window_budgets_violate_the_coalition_invariant() {
        // silent:3 and a default-budget flood window would draw two
        // different coalitions — corrupting more nodes than either
        // budget declares. The Scenario builder rejects this with a
        // typed error; direct construction trips the invariant.
        let (ctx, bad) = context(64);
        let sched = schedule(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: Some(3) }),
            (Window::open(2), AdversarySpec::PushFlood),
        ]);
        let mut adv = Composed::from_schedule(&sched, &ctx, bad);
        let mut rng = derive_rng(7, &[]);
        let _ = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
    }

    #[test]
    fn corner_report_surfaces_from_its_window() {
        let (ctx, bad) = context(64);
        let sched = schedule(vec![
            (Window::bounded(0, 2), AdversarySpec::Silent { t: None }),
            (Window::open(2), AdversarySpec::Corner { label_scan: 16 }),
        ]);
        let adv = Composed::from_schedule(&sched, &ctx, bad);
        assert!(adv.corner_report().is_some());
        assert_eq!(adv.windows().len(), 2);

        let no_corner = schedule(vec![(Window::open(0), AdversarySpec::Silent { t: None })]);
        let adv = Composed::from_schedule(&no_corner, &ctx, bad);
        assert!(adv.corner_report().is_none());
    }
}
