//! The Lemma 7 safety attack: a coherent campaign for a bogus string.

use std::collections::BTreeSet;

use fba_samplers::{GString, Label};
use fba_sim::{choose_corrupt, Adversary, Envelope, NodeId, Outbox, Step};
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

use super::AttackContext;

/// Corrupt nodes push, route, relay and answer for one adversary-chosen
/// string `bad`, rushing their responses so they arrive *before* honest
/// traffic:
///
/// * push phase: `bad` is pushed through every legitimate quorum slot
///   (`z ∈ I(bad, x)`), maximising its acceptance into candidate lists;
/// * pull phase: whenever a correct node polls for `bad`, every corrupt
///   member of its poll list answers instantly (no `Fw2` majority needed —
///   Byzantine nodes are not bound by Algorithm 3);
/// * corrupt members of pull quorums inject `Fw1`/`Fw2` for `bad`,
///   helping *correct* holders of `bad` (the `SharedAdversarial`
///   precondition's unknowing block) cross their majorities;
/// * repair queries are answered with `bad`.
///
/// Lemma 7 predicts this still fails w.h.p.: deciding requires a strict
/// majority of a freshly random poll list, and the bogus coalition is a
/// minority of the population. The `l7` experiment counts the rare finite-
/// scale exceptions.
#[derive(Clone, Debug)]
pub struct BadString {
    ctx: AttackContext,
    /// The bogus string the campaign promotes.
    pub bad: GString,
    corrupt: BTreeSet<NodeId>,
    push_plan: Vec<(NodeId, NodeId)>,
    answered: BTreeSet<(NodeId, NodeId)>,
    fw2_sent: BTreeSet<(NodeId, NodeId, NodeId)>,
}

impl BadString {
    /// Creates the campaign for `bad`.
    #[must_use]
    pub fn new(ctx: AttackContext, bad: GString) -> Self {
        BadString {
            ctx,
            bad,
            corrupt: BTreeSet::new(),
            push_plan: Vec::new(),
            answered: BTreeSet::new(),
            fw2_sent: BTreeSet::new(),
        }
    }

    fn react_to_poll(&mut self, x: NodeId, w: NodeId, out: &mut Outbox<'_, AerMsg>) {
        // Corrupt poll-list member answers the bogus string immediately.
        if self.corrupt.contains(&w) && self.answered.insert((w, x)) {
            out.send_as(w, x, AerMsg::Answer(self.bad));
        }
    }

    fn react_to_pull(&mut self, x: NodeId, r: Label, out: &mut Outbox<'_, AerMsg>) {
        // Help correct holders of `bad` cross their Fw2 majorities: every
        // corrupt member of H(bad, w) injects Fw2 towards w ∈ J(x, r).
        let key = self.bad.key();
        for w in self.ctx.poll.poll_list(x, r) {
            for z in self.ctx.scheme.pull.quorum(key, w) {
                if self.corrupt.contains(&z) && self.fw2_sent.insert((z, x, w)) {
                    out.send_as(
                        z,
                        w,
                        AerMsg::Fw2 {
                            origin: x,
                            s: self.bad,
                            r,
                        },
                    );
                }
            }
        }
    }
}

impl Adversary<AerMsg> for BadString {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.clone();
        let inverse = self.ctx.scheme.push.inverse_for_string(self.bad.key());
        self.push_plan = self
            .corrupt
            .iter()
            .flat_map(|&z| inverse[z.index()].iter().map(move |&x| (z, x)))
            .collect();
        set
    }

    fn rushing(&self) -> bool {
        true
    }

    fn act(&mut self, step: Step, view: Option<&[Envelope<AerMsg>]>, out: &mut Outbox<'_, AerMsg>) {
        if step == 0 {
            for &(z, x) in &self.push_plan.clone() {
                out.send_as(z, x, AerMsg::Push(self.bad));
            }
        }
        let Some(view) = view else { return };
        let bad_key = self.bad.key();
        let reactions: Vec<Envelope<AerMsg>> = view.to_vec();
        for env in &reactions {
            match &env.msg {
                AerMsg::Poll(s, _) if s.key() == bad_key => {
                    self.react_to_poll(env.from, env.to, out);
                }
                AerMsg::Pull(s, r) if s.key() == bad_key => {
                    self.react_to_pull(env.from, *r, out);
                }
                AerMsg::RepairQuery(_) => {
                    // The queried member is in J(x, r) by construction of
                    // the query; corrupt members push the bogus string.
                    self.react_to_poll(env.from, env.to, out);
                }
                _ => {}
            }
        }
    }

    fn priority(&mut self, env: &Envelope<AerMsg>) -> i64 {
        // Rush bogus answers ahead of honest traffic within each step.
        match &env.msg {
            AerMsg::Answer(s) | AerMsg::RepairAnswer(s) if s.key() == self.bad.key() => -1,
            _ => 0,
        }
    }

    // `schedules` stays at the default `true`: `priority` is overridden.

    fn observes(&self) -> bool {
        false // `observe` is the default no-op (reactions use the rushing view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AttackContext;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;

    fn setup(n: usize) -> (AerHarness, Precondition, AttackContext, GString) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::SharedAdversarial,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        // The shared bogus string the unknowing block already holds.
        let bad = *pre
            .assignments
            .iter()
            .find(|s| **s != pre.gstring)
            .expect("some node is unknowing");
        let ctx = AttackContext::new(&h, pre.gstring);
        (h, pre, ctx, bad)
    }

    #[test]
    fn answers_bogus_polls_from_corrupt_list_members() {
        let (_, _, ctx, bad) = setup(64);
        let mut adv = BadString::new(ctx, bad);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let z = *corrupt.iter().next().unwrap();
        let x = (0..64)
            .map(NodeId::from_index)
            .find(|id| !corrupt.contains(id))
            .unwrap();

        // A poll for `bad` reaching corrupt member z must be answered.
        let view = vec![Envelope {
            from: x,
            to: z,
            sent_at: 1,
            msg: AerMsg::Poll(bad, Label(3)),
        }];
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(1, Some(&view), &mut out);
        let sends = out.into_sends();
        assert!(sends
            .iter()
            .any(|(from, to, m)| *from == z && *to == x && matches!(m, AerMsg::Answer(_))));

        // Duplicate polls are answered once.
        let mut out2 = Outbox::new(&corrupt, 64);
        adv.act(2, Some(&view), &mut out2);
        assert!(out2
            .into_sends()
            .iter()
            .all(|(_, _, m)| !matches!(m, AerMsg::Answer(_))));
    }

    #[test]
    fn ignores_polls_for_other_strings() {
        let (_, pre, ctx, bad) = setup(64);
        let mut adv = BadString::new(ctx, bad);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let z = *corrupt.iter().next().unwrap();
        let view = vec![Envelope {
            from: NodeId::from_index(0),
            to: z,
            sent_at: 1,
            msg: AerMsg::Poll(pre.gstring, Label(3)),
        }];
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(1, Some(&view), &mut out);
        assert!(out.is_empty(), "gstring polls must not be answered");
    }

    #[test]
    fn rushes_bogus_answers() {
        let (_, pre, ctx, bad) = setup(64);
        let mut adv = BadString::new(ctx, bad);
        let bogus = Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 0,
            msg: AerMsg::Answer(bad),
        };
        let honest = Envelope {
            from: NodeId::from_index(0),
            to: NodeId::from_index(1),
            sent_at: 0,
            msg: AerMsg::Answer(pre.gstring),
        };
        assert!(adv.priority(&bogus) < adv.priority(&honest));
    }
}
