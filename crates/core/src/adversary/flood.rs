//! Push-phase flooding strategies.

use std::collections::BTreeSet;

use fba_samplers::GString;
use fba_sim::{choose_corrupt, Adversary, Envelope, NodeId, Outbox, Step};
use rand::Rng;
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

use super::AttackContext;

/// Blind flooding: every corrupt node sprays freshly random strings at
/// random victims during the first steps.
///
/// §3.1.1: "the adversary cannot increase the communication complexity of
/// this phase by sending many candidate strings to all nodes" — receivers
/// check membership in `I(s, x)`, so none of this traffic creates
/// counters, candidates, or responses. Tests assert exactly that.
#[derive(Clone, Debug)]
pub struct RandomStringFlood {
    ctx: AttackContext,
    /// Pushes per corrupt node per step.
    pub rate: usize,
    /// Number of steps to keep flooding.
    pub steps: Step,
    corrupt: Vec<NodeId>,
}

impl RandomStringFlood {
    /// Creates the strategy; `rate` pushes per corrupt node for `steps`
    /// steps.
    #[must_use]
    pub fn new(ctx: AttackContext, rate: usize, steps: Step) -> Self {
        RandomStringFlood {
            ctx,
            rate,
            steps,
            corrupt: Vec::new(),
        }
    }
}

impl Adversary<AerMsg> for RandomStringFlood {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.iter().copied().collect();
        // Private adversary randomness for the flood payloads.
        self.ctx.n = n;
        set
    }

    fn act(
        &mut self,
        step: Step,
        _view: Option<&[Envelope<AerMsg>]>,
        out: &mut Outbox<'_, AerMsg>,
    ) {
        if step >= self.steps {
            return;
        }
        // Deterministic per-step pseudo-randomness derived from the step.
        let mut rng = fba_sim::rng::derive_rng(0xf100d, &[step]);
        let len = self.ctx.gstring.len_bits();
        for &z in &self.corrupt {
            for _ in 0..self.rate {
                let victim = NodeId::from_index(rng.gen_range(0..self.ctx.n));
                let junk = GString::random(len, &mut rng);
                out.send_as(z, victim, AerMsg::Push(junk));
            }
        }
    }

    fn schedules(&self) -> bool {
        false // keeps the default uniform (1, 0) schedule
    }

    fn observes(&self) -> bool {
        false // `observe` is the default no-op
    }
}

/// Coherent push flooding: all corrupt nodes push one shared bogus string
/// through the quorum slots they legitimately occupy (`z ∈ I(bad, x)`).
///
/// This is the strongest admissible push attack — Lemma 4 bounds its
/// damage: the corrupt nodes control a majority in only `O(θ·n)` push
/// quorums, so the bogus string lands in `O(n)` candidate lists at most.
#[derive(Clone, Debug)]
pub struct PushFlood {
    ctx: AttackContext,
    /// The bogus string being pushed.
    pub bad: GString,
    corrupt: Vec<NodeId>,
    targets: Vec<(NodeId, NodeId)>,
}

impl PushFlood {
    /// Creates the strategy pushing `bad`.
    #[must_use]
    pub fn new(ctx: AttackContext, bad: GString) -> Self {
        PushFlood {
            ctx,
            bad,
            corrupt: Vec::new(),
            targets: Vec::new(),
        }
    }
}

impl Adversary<AerMsg> for PushFlood {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.iter().copied().collect();
        // Precompute the legitimate push edges for the bogus string.
        let inverse = self.ctx.scheme.push.inverse_for_string(self.bad.key());
        self.targets = self
            .corrupt
            .iter()
            .flat_map(|&z| inverse[z.index()].iter().map(move |&x| (z, x)))
            .collect();
        set
    }

    fn act(
        &mut self,
        step: Step,
        _view: Option<&[Envelope<AerMsg>]>,
        out: &mut Outbox<'_, AerMsg>,
    ) {
        if step != 0 {
            return;
        }
        for &(z, x) in &self.targets {
            out.send_as(z, x, AerMsg::Push(self.bad));
        }
    }

    fn schedules(&self) -> bool {
        false // keeps the default uniform (1, 0) schedule
    }

    fn observes(&self) -> bool {
        false // `observe` is the default no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AttackContext;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;

    fn setup(n: usize) -> (AerHarness, Precondition, AttackContext) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let ctx = AttackContext::new(&h, pre.gstring);
        (h, pre, ctx)
    }

    #[test]
    fn random_flood_sends_at_requested_rate() {
        let (_, _, ctx) = setup(64);
        let t = ctx.t;
        let mut adv = RandomStringFlood::new(ctx, 3, 2);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        assert_eq!(corrupt.len(), t);
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, None, &mut out);
        assert_eq!(out.len(), t * 3);
        let mut out2 = Outbox::new(&corrupt, 64);
        adv.act(5, None, &mut out2); // past `steps`
        assert!(out2.is_empty());
    }

    #[test]
    fn push_flood_only_uses_legitimate_slots() {
        let (h, _, ctx) = setup(64);
        let bad = GString::random(ctx.gstring.len_bits(), &mut derive_rng(7, &[]));
        let mut adv = PushFlood::new(ctx, bad);
        let mut rng = derive_rng(2, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, None, &mut out);
        let scheme = h.scheme();
        for (from, to, msg) in out.into_sends() {
            assert!(corrupt.contains(&from));
            match msg {
                AerMsg::Push(s) => {
                    assert_eq!(s, bad);
                    assert!(
                        scheme.push.contains(s.key(), to, from),
                        "push outside I(bad, {to}) from {from}"
                    );
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
    }
}
