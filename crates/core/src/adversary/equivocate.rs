//! Equivocation attack: different stories to different victims.

use std::collections::BTreeSet;

use fba_samplers::GString;
use fba_sim::{choose_corrupt, Adversary, Envelope, NodeId, Outbox, Step};
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

use super::AttackContext;

/// Each corrupt node fabricates `k` distinct strings and pushes every one
/// of them through its legitimate quorum slots — possible because the
/// model provides authenticated channels but *no* transferable
/// authentication or non-equivocation (§2.1).
///
/// The defence is Lemma 4: acceptance needs a quorum majority per
/// `(s, x)`, so the total candidate-list inflation stays `O(n)` no matter
/// how many strings the adversary invents. The `l4` experiment measures
/// exactly this.
#[derive(Clone, Debug)]
pub struct Equivocate {
    ctx: AttackContext,
    /// Distinct strings fabricated per corrupt node.
    pub strings_per_node: usize,
    corrupt: Vec<NodeId>,
    /// Precomputed (sender, victim, string) push edges.
    plan: Vec<(NodeId, NodeId, GString)>,
}

impl Equivocate {
    /// Creates the strategy with `strings_per_node` fabrications per
    /// corrupt node.
    #[must_use]
    pub fn new(ctx: AttackContext, strings_per_node: usize) -> Self {
        Equivocate {
            ctx,
            strings_per_node,
            corrupt: Vec::new(),
            plan: Vec::new(),
        }
    }
}

impl Adversary<AerMsg> for Equivocate {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.iter().copied().collect();
        let len = self.ctx.gstring.len_bits();
        // All corrupt nodes share the fabricated string pool so each pool
        // entry gets pushes from many corrupt quorum members (maximising
        // the chance of crossing some acceptance threshold somewhere).
        let pool: Vec<GString> = (0..self.strings_per_node)
            .map(|_| GString::random(len, rng))
            .collect();
        for s in &pool {
            let inverse = self.ctx.scheme.push.inverse_for_string(s.key());
            for &z in &self.corrupt {
                for &x in &inverse[z.index()] {
                    self.plan.push((z, x, *s));
                }
            }
        }
        set
    }

    fn act(
        &mut self,
        step: Step,
        _view: Option<&[Envelope<AerMsg>]>,
        out: &mut Outbox<'_, AerMsg>,
    ) {
        if step != 0 {
            return;
        }
        for (z, x, s) in &self.plan {
            out.send_as(*z, *x, AerMsg::Push(*s));
        }
    }

    fn schedules(&self) -> bool {
        false // keeps the default uniform (1, 0) schedule
    }

    fn observes(&self) -> bool {
        false // `observe` is the default no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AttackContext;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;

    #[test]
    fn equivocate_pushes_multiple_distinct_strings_per_sender() {
        let n = 64;
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let ctx = AttackContext::new(&h, pre.gstring);
        let mut adv = Equivocate::new(ctx, 4);
        let mut rng = derive_rng(3, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, n, &mut rng);
        let mut out = Outbox::new(&corrupt, n);
        adv.act(0, None, &mut out);
        let sends = out.into_sends();
        assert!(!sends.is_empty());
        // Each push must use a legitimate quorum slot.
        let scheme = h.scheme();
        let mut strings = BTreeSet::new();
        for (from, to, msg) in &sends {
            if let AerMsg::Push(s) = msg {
                assert!(scheme.push.contains(s.key(), *to, *from));
                strings.insert(*s);
            }
        }
        assert_eq!(strings.len(), 4, "the fabricated pool has 4 strings");
        // Step 1: silent.
        let mut out2 = Outbox::new(&corrupt, n);
        adv.act(1, None, &mut out2);
        assert!(out2.is_empty());
    }
}
