//! Pull-request flooding: the attack §2.3's filters exist to stop.
//!
//! "As in [KS09], pull requests are filtered to prevent Byzantine nodes
//! from triggering too many replies (poor worst case complexity)." A pull
//! request for `gstring` is forwarded by correct routers — each forward
//! fans out to `d²` relays — so an unfiltered requester could trigger
//! `Θ(d³)` traffic per request, repeatedly. The defence is the
//! forward-once filter in Algorithm 2: a router forwards at most one pull
//! per `(requester, string)` pair, so each corrupt node gets *one*
//! routed verification no matter how many requests it sprays.
//!
//! [`PullFlood`] sprays `requests_per_node` pulls with distinct labels
//! from every corrupt node each step; the amplification tests assert the
//! induced correct-node traffic stays within one routed request per
//! corrupt node.

use std::collections::BTreeSet;

use fba_samplers::Label;
use fba_sim::{choose_corrupt, Adversary, Envelope, NodeId, Outbox, Step};
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

use super::AttackContext;

/// The pull-flooding strategy.
#[derive(Clone, Debug)]
pub struct PullFlood {
    ctx: AttackContext,
    /// Pull requests per corrupt node per step.
    pub requests_per_node: u64,
    /// Steps to keep flooding.
    pub steps: Step,
    corrupt: Vec<NodeId>,
}

impl PullFlood {
    /// Creates the strategy.
    #[must_use]
    pub fn new(ctx: AttackContext, requests_per_node: u64, steps: Step) -> Self {
        PullFlood {
            ctx,
            requests_per_node,
            steps,
            corrupt: Vec::new(),
        }
    }
}

impl Adversary<AerMsg> for PullFlood {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        let set = choose_corrupt(n, self.ctx.t, rng);
        self.corrupt = set.iter().copied().collect();
        set
    }

    fn act(
        &mut self,
        step: Step,
        _view: Option<&[Envelope<AerMsg>]>,
        out: &mut Outbox<'_, AerMsg>,
    ) {
        if step >= self.steps {
            return;
        }
        let g = self.ctx.gstring;
        let key = g.key();
        for &z in &self.corrupt {
            for i in 0..self.requests_per_node {
                // Distinct labels per request: each *could* reach a fresh
                // poll list if the filters were missing.
                let r = Label(
                    (step * self.requests_per_node + i + u64::from(z.raw()) * 7919)
                        % self.ctx.poll.label_cardinality(),
                );
                for w in self.ctx.poll.poll_list(z, r) {
                    out.send_as(z, w, AerMsg::Poll(g, r));
                }
                for y in self.ctx.scheme.pull.quorum(key, z) {
                    out.send_as(z, y, AerMsg::Pull(g, r));
                }
            }
        }
    }

    fn schedules(&self) -> bool {
        false // keeps the default uniform (1, 0) schedule
    }

    fn observes(&self) -> bool {
        false // `observe` is the default no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AttackContext;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;
    use fba_sim::NoAdversary;

    fn setup(n: usize) -> (AerHarness, Precondition) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            5,
        );
        (AerHarness::from_precondition(cfg, &pre), pre)
    }

    #[test]
    fn sprays_the_requested_volume() {
        let (h, pre) = setup(64);
        let ctx = AttackContext::new(&h, pre.gstring);
        let d = h.config().d;
        let t = h.config().t;
        let mut adv = PullFlood::new(ctx, 3, 2);
        let mut rng = derive_rng(1, &[]);
        let corrupt = Adversary::<AerMsg>::corrupt(&mut adv, 64, &mut rng);
        let mut out = Outbox::new(&corrupt, 64);
        adv.act(0, None, &mut out);
        // Each request = d polls + d pulls.
        assert_eq!(out.len(), t * 3 * 2 * d);
        let mut out2 = Outbox::new(&corrupt, 64);
        adv.act(5, None, &mut out2);
        assert!(out2.is_empty(), "flood stops after `steps`");
    }

    #[test]
    fn amplification_is_capped_by_the_forward_once_filter() {
        let n = 96;
        let (h, pre) = setup(n);
        let ctx = AttackContext::new(&h, pre.gstring);
        let d = h.config().d as u64;

        let baseline = h.run(&h.engine_sync(), 7, &mut NoAdversary);
        // Heavy flood: 16 requests per corrupt node per step, 6 steps.
        let mut flood = PullFlood::new(ctx, 16, 6);
        let attacked = h.run(&h.engine_sync(), 7, &mut flood);

        assert_eq!(
            attacked.unanimous(),
            Some(&pre.gstring),
            "flooding must not corrupt agreement"
        );
        // The only extra *correct-node* work the flood can trigger is one
        // routed verification per corrupt node (forward-once), costing
        // ≈ d³ Fw1s + d² Fw2s + answers. Everything beyond that was
        // filtered.
        let t = attacked.corrupt.len() as u64;
        let per_request = d * d * d + 2 * d * d; // generous envelope
        let budget = baseline.metrics.correct_msgs_sent() + t * per_request;
        let measured = attacked.metrics.correct_msgs_sent();
        assert!(
            measured <= budget,
            "amplification exceeded the forward-once envelope: {measured} > {budget}"
        );
    }

    #[test]
    fn repeated_labels_do_not_earn_repeated_routing() {
        // A single corrupt requester sending 50 pulls must trigger at most
        // one Fw1 wave per router.
        let n = 64;
        let (h, pre) = setup(n);
        let ctx = AttackContext::new(&h, pre.gstring);
        let mut engine = h.engine_sync();
        engine.record_transcript = true;
        let mut flood = PullFlood::new(ctx, 50, 1);
        let out = h.run(&engine, 9, &mut flood);
        let corrupt = out.corrupt.clone();
        // Count Fw1 messages whose origin is corrupt, grouped by router.
        use std::collections::BTreeMap;
        let mut per_router: BTreeMap<NodeId, usize> = BTreeMap::new();
        for env in &out.transcript {
            if let AerMsg::Fw1 { origin, .. } = &env.msg {
                if corrupt.contains(origin) && !corrupt.contains(&env.from) {
                    *per_router.entry(env.from).or_default() += 1;
                }
            }
        }
        let d = h.config().d;
        for (router, count) in per_router {
            // One forward per (corrupt requester, gstring): ≤ t requesters
            // × d² fanout; but a single router serves only the requesters
            // whose H(g, x) it belongs to (expected d of them).
            assert!(
                count <= 3 * d * d * d,
                "router {router} forwarded {count} corrupt-origin Fw1s"
            );
        }
    }
}
