//! The AER adversary registry: [`AdversarySpec`] → live strategy.
//!
//! [`AerAdversary`] is the closed set of Byzantine strategies the AER
//! experiments exercise, instantiable from a data-level
//! [`AdversarySpec`] plus an [`AttackContext`] (the full-information
//! view) and the campaign string `bad` used by the coherent attacks.
//! Dispatching through an enum — rather than `Box<dyn Adversary>` —
//! keeps strategy state inspectable after the run (e.g.
//! [`AerAdversary::corner_report`] for the Lemma 6 experiments).

use std::collections::BTreeSet;

use fba_samplers::GString;
use fba_sim::{
    Adversary, AdversarySpec, Envelope, NoAdversary, NodeId, Outbox, SilentAdversary, Step,
};
use rand_chacha::ChaCha12Rng;

use crate::adversary::{
    AttackContext, BadString, Composed, Corner, CornerReport, Equivocate, PullFlood, PushFlood,
    RandomStringFlood,
};
use crate::msg::AerMsg;

/// Every Byzantine strategy the AER suite can field, in one dispatchable
/// value (see the module docs).
#[derive(Clone, Debug)]
pub enum AerAdversary {
    /// No corruption.
    None(NoAdversary),
    /// Fail-stop silence.
    Silent(SilentAdversary),
    /// Blind random-string pushing.
    RandomFlood(RandomStringFlood),
    /// Coherent push flooding of `bad`.
    PushFlood(PushFlood),
    /// Per-victim fabrications.
    Equivocate(Equivocate),
    /// Pull-request spraying.
    PullFlood(PullFlood),
    /// The full bad-string campaign.
    BadString(BadString),
    /// The cornering/overload attack.
    Corner(Corner),
    /// A composed fault schedule: one strategy per step window.
    Composed(Box<Composed>),
}

impl AerAdversary {
    /// Instantiates the strategy `spec` names.
    ///
    /// `ctx.t` is the corruption budget (callers override the config
    /// default before passing it in); `bad` is the campaign string used
    /// by the `flood` and `bad-string` strategies (ignored by the rest).
    #[must_use]
    pub fn from_spec(spec: &AdversarySpec, ctx: AttackContext, bad: GString) -> Self {
        match spec {
            AdversarySpec::None => AerAdversary::None(NoAdversary),
            AdversarySpec::Silent { t } => {
                AerAdversary::Silent(SilentAdversary::new(t.unwrap_or(ctx.t)))
            }
            AdversarySpec::RandomFlood { rate, steps } => {
                AerAdversary::RandomFlood(RandomStringFlood::new(ctx, *rate, *steps))
            }
            AdversarySpec::PushFlood => AerAdversary::PushFlood(PushFlood::new(ctx, bad)),
            AdversarySpec::Equivocate { strings } => {
                AerAdversary::Equivocate(Equivocate::new(ctx, *strings))
            }
            AdversarySpec::PullFlood { rate, steps } => {
                AerAdversary::PullFlood(PullFlood::new(ctx, *rate, *steps))
            }
            AdversarySpec::BadString => AerAdversary::BadString(BadString::new(ctx, bad)),
            AdversarySpec::Corner { label_scan } => {
                AerAdversary::Corner(Corner::new(ctx, *label_scan))
            }
            AdversarySpec::Sched(schedule) => {
                AerAdversary::Composed(Box::new(Composed::from_schedule(schedule, &ctx, bad)))
            }
        }
    }

    /// The cornering attack's plan/coverage report, when the strategy is
    /// [`AerAdversary::Corner`] — or a composed schedule with a `corner`
    /// window (the first such window's report).
    #[must_use]
    pub fn corner_report(&self) -> Option<&CornerReport> {
        match self {
            AerAdversary::Corner(c) => Some(c.report()),
            AerAdversary::Composed(c) => c.corner_report(),
            _ => None,
        }
    }
}

impl Adversary<AerMsg> for AerAdversary {
    fn corrupt(&mut self, n: usize, rng: &mut ChaCha12Rng) -> BTreeSet<NodeId> {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::corrupt(a, n, rng),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::corrupt(a, n, rng),
            AerAdversary::RandomFlood(a) => a.corrupt(n, rng),
            AerAdversary::PushFlood(a) => a.corrupt(n, rng),
            AerAdversary::Equivocate(a) => a.corrupt(n, rng),
            AerAdversary::PullFlood(a) => a.corrupt(n, rng),
            AerAdversary::BadString(a) => a.corrupt(n, rng),
            AerAdversary::Corner(a) => a.corrupt(n, rng),
            AerAdversary::Composed(a) => a.corrupt(n, rng),
        }
    }

    fn rushing(&self) -> bool {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::rushing(a),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::rushing(a),
            AerAdversary::RandomFlood(a) => a.rushing(),
            AerAdversary::PushFlood(a) => a.rushing(),
            AerAdversary::Equivocate(a) => a.rushing(),
            AerAdversary::PullFlood(a) => a.rushing(),
            AerAdversary::BadString(a) => a.rushing(),
            AerAdversary::Corner(a) => a.rushing(),
            AerAdversary::Composed(a) => Adversary::<AerMsg>::rushing(a.as_ref()),
        }
    }

    fn act(&mut self, step: Step, view: Option<&[Envelope<AerMsg>]>, out: &mut Outbox<'_, AerMsg>) {
        match self {
            AerAdversary::None(a) => a.act(step, view, out),
            AerAdversary::Silent(a) => a.act(step, view, out),
            AerAdversary::RandomFlood(a) => a.act(step, view, out),
            AerAdversary::PushFlood(a) => a.act(step, view, out),
            AerAdversary::Equivocate(a) => a.act(step, view, out),
            AerAdversary::PullFlood(a) => a.act(step, view, out),
            AerAdversary::BadString(a) => a.act(step, view, out),
            AerAdversary::Corner(a) => a.act(step, view, out),
            AerAdversary::Composed(a) => a.act(step, view, out),
        }
    }

    fn observe(&mut self, step: Step, sends: &[Envelope<AerMsg>]) {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::observe(a, step, sends),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::observe(a, step, sends),
            AerAdversary::RandomFlood(a) => a.observe(step, sends),
            AerAdversary::PushFlood(a) => a.observe(step, sends),
            AerAdversary::Equivocate(a) => a.observe(step, sends),
            AerAdversary::PullFlood(a) => a.observe(step, sends),
            AerAdversary::BadString(a) => a.observe(step, sends),
            AerAdversary::Corner(a) => a.observe(step, sends),
            AerAdversary::Composed(a) => a.observe(step, sends),
        }
    }

    fn delay(&mut self, env: &Envelope<AerMsg>) -> Step {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::delay(a, env),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::delay(a, env),
            AerAdversary::RandomFlood(a) => a.delay(env),
            AerAdversary::PushFlood(a) => a.delay(env),
            AerAdversary::Equivocate(a) => a.delay(env),
            AerAdversary::PullFlood(a) => a.delay(env),
            AerAdversary::BadString(a) => a.delay(env),
            AerAdversary::Corner(a) => a.delay(env),
            AerAdversary::Composed(a) => a.delay(env),
        }
    }

    fn priority(&mut self, env: &Envelope<AerMsg>) -> i64 {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::priority(a, env),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::priority(a, env),
            AerAdversary::RandomFlood(a) => a.priority(env),
            AerAdversary::PushFlood(a) => a.priority(env),
            AerAdversary::Equivocate(a) => a.priority(env),
            AerAdversary::PullFlood(a) => a.priority(env),
            AerAdversary::BadString(a) => a.priority(env),
            AerAdversary::Corner(a) => a.priority(env),
            AerAdversary::Composed(a) => a.priority(env),
        }
    }

    fn schedules(&self) -> bool {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::schedules(a),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::schedules(a),
            AerAdversary::RandomFlood(a) => a.schedules(),
            AerAdversary::PushFlood(a) => a.schedules(),
            AerAdversary::Equivocate(a) => a.schedules(),
            AerAdversary::PullFlood(a) => a.schedules(),
            AerAdversary::BadString(a) => a.schedules(),
            AerAdversary::Corner(a) => a.schedules(),
            AerAdversary::Composed(a) => a.schedules(),
        }
    }

    fn observes(&self) -> bool {
        match self {
            AerAdversary::None(a) => Adversary::<AerMsg>::observes(a),
            AerAdversary::Silent(a) => Adversary::<AerMsg>::observes(a),
            AerAdversary::RandomFlood(a) => a.observes(),
            AerAdversary::PushFlood(a) => a.observes(),
            AerAdversary::Equivocate(a) => a.observes(),
            AerAdversary::PullFlood(a) => a.observes(),
            AerAdversary::BadString(a) => a.observes(),
            AerAdversary::Corner(a) => a.observes(),
            AerAdversary::Composed(a) => a.observes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::rng::derive_rng;

    fn context(n: usize) -> (AttackContext, GString) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::SharedAdversarial,
            5,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let bad = *pre
            .assignments
            .iter()
            .find(|s| **s != pre.gstring)
            .expect("bogus exists");
        (AttackContext::new(&h, pre.gstring), bad)
    }

    #[test]
    fn every_spec_instantiates_the_matching_strategy() {
        let (ctx, bad) = context(64);
        let cases = [
            (AdversarySpec::None, "none"),
            (AdversarySpec::Silent { t: None }, "silent"),
            (
                AdversarySpec::RandomFlood { rate: 4, steps: 2 },
                "random-flood",
            ),
            (AdversarySpec::PushFlood, "flood"),
            (AdversarySpec::Equivocate { strings: 3 }, "equivocate"),
            (AdversarySpec::PullFlood { rate: 2, steps: 2 }, "pull-flood"),
            (AdversarySpec::BadString, "bad-string"),
            (AdversarySpec::Corner { label_scan: 16 }, "corner"),
            (
                AdversarySpec::Sched(
                    fba_sim::ScheduleSpec::new(vec![
                        (
                            fba_sim::Window::bounded(0, 4),
                            AdversarySpec::Silent { t: None },
                        ),
                        (fba_sim::Window::open(4), AdversarySpec::PushFlood),
                    ])
                    .expect("valid schedule"),
                ),
                "sched",
            ),
        ];
        for (spec, name) in cases {
            let adv = AerAdversary::from_spec(&spec, ctx.clone(), bad);
            let built = match adv {
                AerAdversary::None(_) => "none",
                AerAdversary::Silent(_) => "silent",
                AerAdversary::RandomFlood(_) => "random-flood",
                AerAdversary::PushFlood(_) => "flood",
                AerAdversary::Equivocate(_) => "equivocate",
                AerAdversary::PullFlood(_) => "pull-flood",
                AerAdversary::BadString(_) => "bad-string",
                AerAdversary::Corner(_) => "corner",
                AerAdversary::Composed(_) => "sched",
            };
            assert_eq!(built, name);
            assert_eq!(spec.name(), name);
        }
    }

    #[test]
    fn silent_spec_uses_context_budget_unless_overridden() {
        let (ctx, bad) = context(64);
        let t = ctx.t;
        let mut defaulted =
            AerAdversary::from_spec(&AdversarySpec::Silent { t: None }, ctx.clone(), bad);
        let mut rng = derive_rng(1, &[]);
        assert_eq!(defaulted.corrupt(64, &mut rng).len(), t);
        let mut explicit = AerAdversary::from_spec(&AdversarySpec::Silent { t: Some(3) }, ctx, bad);
        let mut rng = derive_rng(1, &[]);
        assert_eq!(explicit.corrupt(64, &mut rng).len(), 3);
    }

    #[test]
    fn rushing_matches_the_underlying_strategy() {
        let (ctx, bad) = context(64);
        let rushing = [
            AdversarySpec::BadString,
            AdversarySpec::Corner { label_scan: 8 },
        ];
        let non_rushing = [
            AdversarySpec::None,
            AdversarySpec::Silent { t: None },
            AdversarySpec::PushFlood,
        ];
        for spec in rushing {
            let adv = AerAdversary::from_spec(&spec, ctx.clone(), bad);
            assert!(adv.rushing(), "{spec}");
        }
        for spec in non_rushing {
            let adv = AerAdversary::from_spec(&spec, ctx.clone(), bad);
            assert!(!adv.rushing(), "{spec}");
        }
    }

    #[test]
    fn corner_report_is_exposed_only_for_corner() {
        let (ctx, bad) = context(64);
        let corner =
            AerAdversary::from_spec(&AdversarySpec::Corner { label_scan: 8 }, ctx.clone(), bad);
        assert!(corner.corner_report().is_some());
        let silent = AerAdversary::from_spec(&AdversarySpec::Silent { t: None }, ctx, bad);
        assert!(silent.corner_report().is_none());
    }
}
