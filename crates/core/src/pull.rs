//! The pull phase: Algorithms 1–3 of the paper (§3.1.2).
//!
//! To verify a candidate `s ∈ L_x`, node `x` simultaneously notifies a
//! *poll list* `J(x, r)` (for a fresh random label `r`) and its *pull
//! quorum* `H(s, x)`. The pull quorums act as proxies that forward and
//! filter the request so `x` cannot flood the network:
//!
//! 1. `y ∈ H(s, x)` forwards the request iff `s` is its own current
//!    candidate, at most once per `(x, s)` — the "keep track of senders"
//!    flood filter (Algorithm 2).
//! 2. `z ∈ H(s, w)` relays to `w ∈ J(x, r)` iff a majority of `H(s, x)`
//!    forwarded through it (Algorithm 2).
//! 3. `w` answers `x` iff a majority of `H(s, w)` relayed, it was itself
//!    polled for `(x, s)`, and it is not overloaded: once it has answered
//!    `log² n` requests for a string it defers further ones *until it has
//!    decided* (Algorithm 3).
//!
//! `x` decides `s` upon answers from a strict majority of `J(x, r)`.
//!
//! [`PullPhase`] is a pure state machine — every handler returns the
//! messages to transmit — so the algorithms are unit-testable without the
//! simulator.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use fba_sim::fxhash::{FxHashMap, FxHashSet};

use fba_samplers::{
    GString, Label, PollSampler, QuorumScheme, SetSlot, SharedPollCache, SharedQuorumCache,
    StringKey,
};
use fba_sim::{NodeId, Step};
use rand_chacha::ChaCha12Rng;

use crate::msg::AerMsg;

/// Outgoing messages produced by one handler invocation.
pub type Sends = Vec<(NodeId, AerMsg)>;

/// Per-requester cap on repair answers, preventing Byzantine requesters
/// from using the repair path as an amplification primitive.
const REPAIR_ANSWER_CAP: u32 = 8;

/// Sentinel for a vote slot whose majority relay already fired.
///
/// Vote masks track quorum-member positions, and quorums hold at most
/// `d ≤ 127` members (asserted at construction), so the all-ones mask can
/// never arise from real votes.
const VOTES_DONE: u128 = u128::MAX;

/// An in-flight poll started by this node for one candidate (Algorithm 1).
#[derive(Clone, Debug)]
struct OwnPoll {
    s: GString,
    r: Label,
    /// Bitmask over positions in `J(x, r)` of members that answered.
    answered_by: u128,
    started: Step,
    attempt: u32,
}

/// A deferred (overloaded) second-hop forward awaiting this node's own
/// decision (Algorithm 3's "wait for `has_decided`").
#[derive(Clone, Debug)]
struct DeferredFw2 {
    from: NodeId,
    origin: NodeId,
    s: GString,
    r: Label,
}

/// Run-shared `Fw1` route-fact cache, keyed by `(origin, r)`: the
/// interned slots of `H(s, origin)` and `J(origin, r)` for the request's
/// candidate `s`. These facts are pure functions of the *request* — they
/// do not depend on which node is routing — so one warm, `O(n)`-entry
/// map serves every node of the run where per-node route memos would
/// stay cache-cold (batched delivery interleaves requests from many
/// origins at each receiver).
///
/// Entries record the candidate key they were derived for and are
/// recomputed on mismatch, so a (Byzantine) reuse of `(origin, r)`
/// across candidates just downgrades the cache to a recompute — every
/// lookup returns exactly the slots the sampler caches would produce.
#[derive(Clone, Debug, Default)]
pub struct SharedFw1Routes {
    entries: Rc<RefCell<FxHashMap<(NodeId, Label), RouteFact>>>,
}

/// One cached route fact: the candidate key it was derived for plus the
/// interned `H(s, origin)` and `J(origin, r)` slots.
type RouteFact = (StringKey, SetSlot, SetSlot);

impl SharedFw1Routes {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(H(s, origin), J(origin, r))` slot pair for a request,
    /// interning both sets on first use (or when `key` differs from the
    /// cached derivation).
    fn get(
        &self,
        origin: NodeId,
        r: Label,
        key: StringKey,
        pull_quorums: &SharedQuorumCache,
        poll_lists: &SharedPollCache,
    ) -> (SetSlot, SetSlot) {
        let mut entries = self.entries.borrow_mut();
        let entry = entries.entry((origin, r)).or_insert_with(|| {
            (
                key,
                pull_quorums.slot(key, origin),
                poll_lists.slot(origin, r),
            )
        });
        if entry.0 != key {
            *entry = (
                key,
                pull_quorums.slot(key, origin),
                poll_lists.slot(origin, r),
            );
        }
        (entry.1, entry.2)
    }
}

/// Packs a vote-arena key from an interned quorum [`SetSlot`] and a node
/// id (see [`PullPhase`]'s `fw1_votes` and `fw2_senders`). Node indices
/// fit 32 bits at any simulable system size (debug-asserted).
fn slot_vote_key(slot: SetSlot, node: NodeId) -> u64 {
    debug_assert!(
        node.index() <= u32::MAX as usize,
        "node index exceeds 32 bits"
    );
    (u64::from(slot.0) << 32) | node.index() as u64
}

/// Retry and repair policy of a [`PullPhase`] (liveness extensions beyond
/// the paper; all disabled in strict mode — see DESIGN.md §8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Steps to wait for a poll before redrawing its label.
    pub poll_timeout: Step,
    /// Total poll attempts per candidate (1 = paper behaviour).
    pub poll_attempts: u32,
    /// Last-resort repair queries after all polls are exhausted
    /// (0 = disabled).
    pub repair_attempts: u32,
    /// Escalate to the first repair query as soon as every poll has gone
    /// one full `poll_timeout` without a single answer, instead of waiting
    /// for all `poll_attempts` to exhaust first. Retrying a poll only
    /// helps when *some* answers arrived (a routing hiccup); zero answers
    /// after a full delivery horizon means the candidate is likely
    /// unverifiable (e.g. its push majority never crossed), and only
    /// repair can resolve that. Repair remains safe to run concurrently
    /// with retries — it adopts a strict-majority decision of a fresh poll
    /// list, the Lemma 7 argument.
    pub eager_repair: bool,
}

impl RetryPolicy {
    /// The paper's behaviour: a single poll, no repair.
    #[must_use]
    pub fn strict() -> Self {
        RetryPolicy {
            poll_timeout: Step::MAX,
            poll_attempts: 1,
            repair_attempts: 0,
            eager_repair: false,
        }
    }
}

/// Run-shared belief table: each node's current `(believed_key,
/// believed_slot)` pair, stored contiguously and indexed by [`NodeId`] —
/// the struct-of-arrays layout used by full AER runs.
///
/// The hot handlers (`on_pull`, `on_fw1`, `process_fw2`, `on_poll`) gate
/// on exactly this pair, so hoisting it out of the per-node [`PullPhase`]
/// structs packs the whole run's gate state into one cache-friendly
/// vector. Each node writes only its own entry, so sharing cannot create
/// cross-node aliasing; `Rc<RefCell<_>>` suffices because a run is
/// single-threaded by construction (parallelism in this workspace fans
/// out whole runs).
#[derive(Clone, Debug, Default)]
pub struct SharedBeliefs {
    entries: Rc<RefCell<Vec<(StringKey, SetSlot)>>>,
}

impl SharedBeliefs {
    /// Creates an empty table; entries are grown on first write.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records node `x`'s current belief pair, growing the table on
    /// demand.
    pub fn set(&self, x: NodeId, key: StringKey, slot: SetSlot) {
        let mut entries = self.entries.borrow_mut();
        let i = x.index();
        if i >= entries.len() {
            entries.resize(i + 1, (StringKey::default(), SetSlot(u32::MAX)));
        }
        entries[i] = (key, slot);
    }

    /// Node `x`'s current `(believed_key, believed_slot)` pair.
    ///
    /// # Panics
    ///
    /// Panics if no belief was ever recorded for `x` — constructors write
    /// the initial entry, so this only trips on a table/node mismatch.
    #[must_use]
    pub fn get(&self, x: NodeId) -> (StringKey, SetSlot) {
        self.entries.borrow()[x.index()]
    }
}

/// Pull-phase state for one node: requester, router and answerer roles.
#[derive(Clone, Debug)]
pub struct PullPhase {
    x: NodeId,
    /// Memoized pull-quorum sampler `H`, shared across the run's nodes
    /// (determinism: pure-function cache).
    pull_quorums: SharedQuorumCache,
    /// Memoized poll-list sampler `J`, shared likewise.
    poll_lists: SharedPollCache,
    poll: PollSampler,
    overload_cap: u64,
    retry: RetryPolicy,
    /// `s_this`: the node's current belief; starts at its initial
    /// candidate and is overwritten by its decision.
    believed: GString,
    /// Run-shared `(believed.key(), slot of H(believed, self))` table,
    /// kept in lockstep with `believed` by [`PullPhase::set_belief`] —
    /// the handlers compare the key per message and the answerer hot
    /// path keys its vote arena by the slot.
    beliefs: SharedBeliefs,
    decided: Option<GString>,

    // --- requester (Algorithm 1) ---
    own_polls: FxHashMap<StringKey, OwnPoll>,
    /// Valid poll answers ever received, across all polls and attempts —
    /// drives the eager-repair escalation (see [`RetryPolicy`]).
    answers_seen: u64,

    // --- router (Algorithm 2) ---
    forwarded_pulls: FxHashSet<(NodeId, StringKey)>,
    /// Dense-slot vote arena for `on_fw1`: per `(H(s, origin), w)` —
    /// packed into one `u64` by [`fw1_vote_key`] — a bitmask over
    /// positions in `H(s, origin)` of routers seen; [`VOTES_DONE`] once
    /// the majority relay fired. Keying by the quorum's interned
    /// [`SetSlot`] instead of `(origin, s, w)` shrinks entries from a
    /// 24-byte to an 8-byte key and skips re-hashing the sampler key.
    fw1_votes: FxHashMap<u64, u128>,
    /// Run-shared route-fact cache for `Fw1` requests (see
    /// [`SharedFw1Routes`]). Pure memoization: entries are recomputable
    /// facts, so sharing cannot change any outcome.
    fw1_routes: SharedFw1Routes,

    // --- answerer (Algorithm 3) ---
    polled: FxHashSet<(NodeId, StringKey)>,
    /// Dense-slot vote arena for `on_fw2`: per `(H(s, self), origin)` —
    /// packed into one `u64` by [`slot_vote_key`] — a bitmask over
    /// positions in `H(s, self)` of second-hop forwarders seen. The same
    /// arena treatment as `fw1_votes`: votes only accumulate for the
    /// current belief, whose quorum slot is memoized in `believed_slot`,
    /// so the hot path does no sampler-key hashing at all.
    fw2_senders: FxHashMap<u64, u128>,
    answered: FxHashSet<(NodeId, StringKey)>,
    answer_counts: FxHashMap<StringKey, u64>,
    deferred: Vec<DeferredFw2>,

    // --- repair (liveness extension) ---
    repair_label: Option<Label>,
    repair_used: u32,
    repair_last: Step,
    repair_votes: FxHashMap<StringKey, (GString, BTreeSet<NodeId>)>,
    repair_pending: Vec<(NodeId, Label)>,
    repair_answered: FxHashMap<NodeId, u32>,
}

impl PullPhase {
    /// Creates pull state for node `x` whose initial belief is `own`.
    #[must_use]
    pub fn new(
        x: NodeId,
        own: GString,
        scheme: QuorumScheme,
        poll: PollSampler,
        overload_cap: u64,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_caches(
            x,
            own,
            scheme.shared_pull(),
            SharedPollCache::new(poll),
            overload_cap,
            retry,
        )
    }

    /// Like [`PullPhase::new`], but sharing run-wide sampler caches with
    /// the other nodes (see [`SharedQuorumCache`]). The belief table
    /// stays private to this node; use [`PullPhase::with_state`] to share
    /// it too.
    #[must_use]
    pub fn with_caches(
        x: NodeId,
        own: GString,
        pull_quorums: SharedQuorumCache,
        poll_lists: SharedPollCache,
        overload_cap: u64,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_state(
            x,
            own,
            pull_quorums,
            poll_lists,
            overload_cap,
            retry,
            SharedBeliefs::new(),
            SharedFw1Routes::new(),
        )
    }

    /// Like [`PullPhase::with_caches`], but also placing this node's
    /// belief pair in a run-shared [`SharedBeliefs`] table and drawing
    /// `Fw1` route facts from a run-shared [`SharedFw1Routes`] cache —
    /// the engine-owned struct-of-arrays layout used by full AER runs.
    ///
    /// # Panics
    ///
    /// Panics if the quorum or poll-list size `d` reaches 128 (mask
    /// width).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn with_state(
        x: NodeId,
        own: GString,
        pull_quorums: SharedQuorumCache,
        poll_lists: SharedPollCache,
        overload_cap: u64,
        retry: RetryPolicy,
        beliefs: SharedBeliefs,
        fw1_routes: SharedFw1Routes,
    ) -> Self {
        let poll = *poll_lists.sampler();
        assert!(
            poll.d() < 128 && pull_quorums.sampler().d() < 128,
            "bitmask vote tracking supports d < 128 (paper quorums are \u{398}(log n))"
        );
        let believed_key = own.key();
        beliefs.set(x, believed_key, pull_quorums.slot(believed_key, x));
        PullPhase {
            x,
            pull_quorums,
            poll_lists,
            poll,
            overload_cap,
            retry,
            believed: own,
            beliefs,
            decided: None,
            own_polls: FxHashMap::default(),
            answers_seen: 0,
            forwarded_pulls: FxHashSet::default(),
            fw1_votes: FxHashMap::default(),
            fw1_routes,
            polled: FxHashSet::default(),
            fw2_senders: FxHashMap::default(),
            answered: FxHashSet::default(),
            answer_counts: FxHashMap::default(),
            deferred: Vec::new(),
            repair_label: None,
            repair_used: 0,
            repair_last: 0,
            repair_votes: FxHashMap::default(),
            repair_pending: Vec::new(),
            repair_answered: FxHashMap::default(),
        }
    }

    /// The node's decision, if reached.
    #[must_use]
    pub fn decided(&self) -> Option<&GString> {
        self.decided.as_ref()
    }

    /// The node's current belief `s_this`.
    #[must_use]
    pub fn believed(&self) -> &GString {
        &self.believed
    }

    /// Number of deferred (overload-parked) forwards — Lemma 6
    /// instrumentation.
    #[must_use]
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Total answers sent for string `s` — overload instrumentation.
    #[must_use]
    pub fn answers_sent_for(&self, s: &GString) -> u64 {
        self.answer_counts.get(&s.key()).copied().unwrap_or(0)
    }

    /// The furthest poll attempt any in-flight poll has reached (0 when
    /// nothing is being polled) — the poll progress the checkpoint layer
    /// logs so a restarted node resumes its retry budget instead of
    /// resetting it.
    #[must_use]
    pub fn max_poll_attempt(&self) -> u32 {
        self.own_polls
            .values()
            .map(|p| p.attempt)
            .max()
            .unwrap_or(0)
    }

    /// Algorithm 1, sending side: verify candidate `s` by polling
    /// `J(x, r)` (fresh random `r`) and the pull quorum `H(s, x)`.
    ///
    /// No-op when already decided or already polling `s`.
    #[must_use]
    pub fn start_poll(&mut self, s: GString, step: Step, rng: &mut ChaCha12Rng) -> Sends {
        if self.decided.is_some() {
            return Vec::new();
        }
        let key = s.key();
        if self.own_polls.contains_key(&key) {
            return Vec::new();
        }
        let r = self.poll.random_label(rng);
        let sends = self.poll_sends(&s, r);
        self.own_polls.insert(
            key,
            OwnPoll {
                s,
                r,
                answered_by: 0,
                started: step,
                attempt: 1,
            },
        );
        sends
    }

    fn poll_sends(&self, s: &GString, r: Label) -> Sends {
        let key = s.key();
        let mut sends = Vec::new();
        self.poll_lists.poll_list_with(self.x, r, |list| {
            for &w in list {
                sends.push((w, AerMsg::Poll(*s, r)));
            }
        });
        self.pull_quorums.quorum_with(key, self.x, |quorum| {
            for &y in quorum {
                sends.push((y, AerMsg::Pull(*s, r)));
            }
        });
        sends
    }

    /// Timeout processing (liveness extensions): retries stalled polls
    /// with fresh labels, then falls back to repair queries — once all
    /// polls are exhausted, or (with [`RetryPolicy::eager_repair`]) as
    /// soon as a full timeout passed without any answer at all. Call once
    /// per step; returns messages to send.
    #[must_use]
    pub fn on_step(&mut self, step: Step, rng: &mut ChaCha12Rng) -> Sends {
        if self.decided.is_some() {
            return Vec::new();
        }
        let mut sends = Vec::new();
        let timeout = self.retry.poll_timeout;
        let mut all_exhausted = true;
        // Every poll has already run through at least one full timeout
        // (it is expired right now, or a retry already fired for it).
        let mut all_expired_once = !self.own_polls.is_empty();
        // Retry stalled polls with fresh labels.
        let keys: Vec<StringKey> = self.own_polls.keys().copied().collect();
        for key in keys {
            let (retry_string, expired) = {
                let poll = &self.own_polls[&key];
                let expired = step.saturating_sub(poll.started) >= timeout;
                all_expired_once &= expired || poll.attempt > 1;
                if expired && poll.attempt < self.retry.poll_attempts {
                    (Some(poll.s), expired)
                } else {
                    (None, expired)
                }
            };
            if let Some(s) = retry_string {
                let r = self.poll.random_label(rng);
                sends.extend(self.poll_sends(&s, r));
                let poll = self.own_polls.get_mut(&key).expect("poll exists");
                poll.r = r;
                poll.answered_by = 0;
                poll.started = step;
                poll.attempt += 1;
                all_exhausted = false;
            } else if !expired {
                all_exhausted = false;
            }
        }
        // Last resort: ask a fresh poll list what its members decided.
        // With eager repair, the first query launches alongside ongoing
        // retries when a full delivery horizon produced zero answers —
        // the signature of an unverifiable candidate, which no number of
        // label redraws can fix (see `RetryPolicy::eager_repair`).
        let escalate = all_exhausted
            || (self.retry.eager_repair && self.answers_seen == 0 && all_expired_once);
        if escalate
            && self.repair_used < self.retry.repair_attempts
            && (self.repair_used == 0 || step.saturating_sub(self.repair_last) >= timeout)
        {
            let r = self.poll.random_label(rng);
            self.repair_label = Some(r);
            self.repair_votes.clear();
            self.repair_used += 1;
            self.repair_last = step;
            self.poll_lists.poll_list_with(self.x, r, |list| {
                for &w in list {
                    sends.push((w, AerMsg::RepairQuery(r)));
                }
            });
        }
        sends
    }

    /// Handles a repair query from `origin`: if this node has decided and
    /// really is in `J(origin, r)`, it replies with its decision (subject
    /// to a per-requester cap); otherwise the query is parked until this
    /// node decides.
    #[must_use]
    pub fn on_repair_query(&mut self, origin: NodeId, r: Label) -> Sends {
        if !self.poll_lists.contains(origin, r, self.x) {
            return Vec::new();
        }
        let served = self.repair_answered.entry(origin).or_insert(0);
        if *served >= REPAIR_ANSWER_CAP {
            return Vec::new();
        }
        if let Some(decision) = &self.decided {
            *served += 1;
            vec![(origin, AerMsg::RepairAnswer(*decision))]
        } else {
            self.repair_pending.push((origin, r));
            Vec::new()
        }
    }

    /// Handles a repair answer from `w`. Returns `Some(decision)` when a
    /// strict majority of the *current* repair poll list reported the same
    /// string — the same safety argument as a regular poll (Lemma 7).
    #[must_use]
    pub fn on_repair_answer(&mut self, w: NodeId, s: GString) -> Option<GString> {
        if self.decided.is_some() {
            return None;
        }
        let r = self.repair_label?;
        if !self.poll_lists.contains(self.x, r, w) {
            return None;
        }
        let key = s.key();
        let (_, voters) = self
            .repair_votes
            .entry(key)
            .or_insert_with(|| (s, BTreeSet::new()));
        voters.insert(w);
        if voters.len() >= self.poll.majority() {
            let decision = self.repair_votes[&key].0;
            self.decided = Some(decision);
            self.set_belief(decision, key);
            Some(decision)
        } else {
            None
        }
    }

    /// Updates `believed` and its shared `(key, slot)` entry together —
    /// the slot must track the key.
    fn set_belief(&mut self, s: GString, key: StringKey) {
        self.believed = s;
        let slot = self.pull_quorums.slot(key, self.x);
        self.beliefs.set(self.x, key, slot);
    }

    /// Algorithm 2, first handler: a `Pull(s, r)` from requester `origin`.
    ///
    /// Forwards iff `s` matches this node's current candidate, this node
    /// really is in `H(s, origin)`, and this `(origin, s)` was not
    /// forwarded before (flood filter). The forward fans out to `H(s, w)`
    /// for every `w ∈ J(origin, r)`.
    #[must_use]
    pub fn on_pull(&mut self, origin: NodeId, s: GString, r: Label) -> Sends {
        let key = s.key();
        if key != self.beliefs.get(self.x).0 {
            return Vec::new();
        }
        if !self.pull_quorums.contains(key, origin, self.x) {
            return Vec::new();
        }
        if !self.forwarded_pulls.insert((origin, key)) {
            return Vec::new();
        }
        let mut sends = Vec::new();
        self.poll_lists.poll_list_with(origin, r, |list| {
            for &w in list {
                let fw = AerMsg::Fw1 { origin, s, r, w };
                self.pull_quorums.quorum_with(key, w, |quorum| {
                    for &z in quorum {
                        sends.push((z, fw.clone()));
                    }
                });
            }
        });
        sends
    }

    /// Algorithm 2, second handler: an `Fw1(origin, s, r, w)` from router
    /// `y`. Counts distinct valid routers per `(origin, s, w)`; on crossing
    /// the majority of `H(s, origin)`, relays one `Fw2` to `w`.
    ///
    /// Hot path: the request's `(origin, s, r)` facts come from the
    /// run-shared [`SharedFw1Routes`] cache, forwards arriving after the
    /// majority relay fired short-circuit on the vote arena alone, and
    /// everything else is slot-indexed lookups in the shared sampler
    /// caches — no per-node routing state at all.
    #[must_use]
    pub fn on_fw1(&mut self, y: NodeId, origin: NodeId, s: GString, r: Label, w: NodeId) -> Sends {
        let key = s.key();
        if key != self.beliefs.get(self.x).0 {
            return Vec::new();
        }
        let (h_origin, j_list) =
            self.fw1_routes
                .get(origin, r, key, &self.pull_quorums, &self.poll_lists);
        // Single arena probe: once the majority relay for
        // `(H(s, origin), w)` has fired, every further forward is a no-op —
        // and about half of a request's forwards per `w` arrive after the
        // crossing, so the `VOTES_DONE` check comes before any position
        // lookups. An entry inserted here for a forward that then fails a
        // gate stays zero, which is indistinguishable from absent.
        let vote_key = slot_vote_key(h_origin, w);
        let votes = self.fw1_votes.entry(vote_key).or_insert(0);
        if *votes == VOTES_DONE {
            return Vec::new(); // majority relay already sent
        }
        if !self.poll_lists.contains_at(j_list, w) {
            return Vec::new(); // w is not in J(origin, r)
        }
        if !self.pull_quorums.contains(key, w, self.x) {
            return Vec::new(); // we are not in H(s, w)
        }
        let Some(y_pos) = self.pull_quorums.position_at(h_origin, y) else {
            return Vec::new(); // sender is not in H(s, origin)
        };
        *votes |= 1 << y_pos;
        if votes.count_ones() as usize >= self.pull_quorums.majority() {
            *votes = VOTES_DONE;
            vec![(w, AerMsg::Fw2 { origin, s, r })]
        } else {
            Vec::new()
        }
    }

    /// Algorithm 3, `Fw2` handler: second-hop forward from `z` for
    /// requester `origin`.
    ///
    /// If this node is overloaded for `s` (already answered `overload_cap`
    /// requests) and has not decided, the forward is parked until the
    /// decision ([`PullPhase::on_decided`] drains the queue).
    #[must_use]
    pub fn on_fw2(&mut self, z: NodeId, origin: NodeId, s: GString, r: Label) -> Sends {
        let key = s.key();
        if self.decided.is_none()
            && self.answer_counts.get(&key).copied().unwrap_or(0) >= self.overload_cap
        {
            self.deferred.push(DeferredFw2 {
                from: z,
                origin,
                s,
                r,
            });
            return Vec::new();
        }
        self.process_fw2(z, origin, s, r)
    }

    fn process_fw2(&mut self, z: NodeId, origin: NodeId, s: GString, r: Label) -> Sends {
        let key = s.key();
        let (believed_key, believed_slot) = self.beliefs.get(self.x);
        if key != believed_key {
            return Vec::new();
        }
        if !self.poll_lists.contains(origin, r, self.x) {
            return Vec::new(); // we are not in J(origin, r)
        }
        // `key == believed_key`, so `believed_slot` is the interned
        // H(s, self) — position lookups index it directly.
        let Some(z_pos) = self.pull_quorums.position_at(believed_slot, z) else {
            return Vec::new(); // sender is not in H(s, this)
        };
        let votes = self
            .fw2_senders
            .entry(slot_vote_key(believed_slot, origin))
            .or_insert(0);
        *votes |= 1 << z_pos;
        if votes.count_ones() as usize >= self.pull_quorums.majority()
            && self.polled.contains(&(origin, key))
        {
            self.answer(origin, s)
        } else {
            Vec::new()
        }
    }

    /// Algorithm 3, `Poll` handler. Registers `(origin, s)` as polled; in
    /// the asynchronous case where the `Fw2` majority arrived before the
    /// poll, answers immediately.
    #[must_use]
    pub fn on_poll(&mut self, origin: NodeId, s: GString, r: Label) -> Sends {
        if !self.poll_lists.contains(origin, r, self.x) {
            return Vec::new();
        }
        let key = s.key();
        self.polled.insert((origin, key));
        let (believed_key, believed_slot) = self.beliefs.get(self.x);
        if key != believed_key {
            // Fw2 votes only ever accumulate for the current belief
            // (`process_fw2` rejects everything else), so a non-believed
            // poll can never have a majority waiting — answering is
            // gated on the belief match anyway.
            return Vec::new();
        }
        let majority = self.pull_quorums.majority();
        let have = self
            .fw2_senders
            .get(&slot_vote_key(believed_slot, origin))
            .map_or(0, |votes| votes.count_ones() as usize);
        if have >= majority {
            self.answer(origin, s)
        } else {
            Vec::new()
        }
    }

    fn answer(&mut self, origin: NodeId, s: GString) -> Sends {
        let key = s.key();
        if !self.answered.insert((origin, key)) {
            return Vec::new(); // answer once per (x, s)
        }
        *self.answer_counts.entry(key).or_insert(0) += 1;
        vec![(origin, AerMsg::Answer(s))]
    }

    /// Algorithm 1, receiving side: an `Answer(s)` from poll-list member
    /// `w`. Returns `Some(decision)` when answers from a strict majority
    /// of `J(x, r_{x,s})` have arrived.
    #[must_use]
    pub fn on_answer(&mut self, w: NodeId, s: GString) -> Option<GString> {
        if self.decided.is_some() {
            return None;
        }
        let key = s.key();
        let poll = self.own_polls.get_mut(&key)?;
        let w_pos = self.poll_lists.position(self.x, poll.r, w)?;
        self.answers_seen += 1;
        poll.answered_by |= 1 << w_pos;
        if poll.answered_by.count_ones() as usize >= self.poll.majority() {
            let decision = poll.s;
            self.decided = Some(decision);
            self.set_belief(decision, key);
            Some(decision)
        } else {
            None
        }
    }

    /// Called once after this node decides: drains the overload-parked
    /// forwards (they are re-processed under the new belief, so only
    /// requests for the decided string are served), replies to parked
    /// repair queries, and re-arms the pull flood filter.
    ///
    /// Re-arming the filter closes the liveness gap that produced the
    /// large-n retry waves: a router that forwarded `(origin, s)` while
    /// *undecided* refuses the requester's retries forever, so a poll
    /// whose first attempt failed partially (some routers still believed
    /// their initial junk) could never assemble a relay majority again.
    /// After the decision — which happens at most once — each `(origin,
    /// s)` may be forwarded one more time, now with every router and
    /// relay in agreement, so one retry completes the poll. Amplification
    /// stays bounded: at most two forwards per `(origin, s)` per router.
    #[must_use]
    pub fn on_decided(&mut self) -> Sends {
        debug_assert!(self.decided.is_some(), "drain requires a decision");
        self.forwarded_pulls.clear();
        let parked = std::mem::take(&mut self.deferred);
        let mut sends = Vec::new();
        for d in parked {
            sends.extend(self.process_fw2(d.from, d.origin, d.s, d.r));
        }
        let decision = self.decided.expect("decided");
        for (origin, _r) in std::mem::take(&mut self.repair_pending) {
            let served = self.repair_answered.entry(origin).or_insert(0);
            if *served < REPAIR_ANSWER_CAP {
                *served += 1;
                sends.push((origin, AerMsg::RepairAnswer(decision)));
            }
        }
        sends
    }

    /// Crash-recovery: drops every transient (the state a crash loses),
    /// restores the durable facts from a checkpoint, and launches
    /// catch-up traffic. Returns the messages to send on restart.
    ///
    /// Transients are the in-flight poll masks, the router/answerer vote
    /// arenas, the flood filters and the overload queue: all of them are
    /// reconstructible protocol plumbing, none of them are decisions, so
    /// losing them costs liveness (the node must re-poll) but never
    /// safety. The durable facts — belief, decision, poll progress and
    /// (via the caller) the accepted list — come from the WAL replay.
    ///
    /// An undecided node catches up on two channels: it re-polls every
    /// checkpointed candidate with a fresh label (resuming at the
    /// checkpointed attempt so the retry budget is not reset), and it
    /// sends one repair query to a fresh poll list `J(x, r)` — the
    /// state-sync path that pulls decisions the node slept through from
    /// sampled peers, reusing the repair machinery's Lemma 7 safety
    /// argument (adopt only a strict-majority report).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // the full checkpoint, itemised
    pub fn restore(
        &mut self,
        belief: GString,
        decided: Option<GString>,
        poll_attempt: u32,
        candidates: &[GString],
        step: Step,
        rng: &mut ChaCha12Rng,
    ) -> Sends {
        self.own_polls.clear();
        self.answers_seen = 0;
        self.forwarded_pulls.clear();
        self.fw1_votes.clear();
        self.polled.clear();
        self.fw2_senders.clear();
        self.answered.clear();
        self.answer_counts.clear();
        self.deferred.clear();
        self.repair_label = None;
        self.repair_used = 0;
        self.repair_last = 0;
        self.repair_votes.clear();
        self.repair_pending.clear();
        self.repair_answered.clear();

        let key = belief.key();
        self.set_belief(belief, key);
        self.decided = decided;
        if self.decided.is_some() {
            return Vec::new();
        }

        let mut sends = Vec::new();
        for &s in candidates {
            let r = self.poll.random_label(rng);
            sends.extend(self.poll_sends(&s, r));
            self.own_polls.insert(
                s.key(),
                OwnPoll {
                    s,
                    r,
                    answered_by: 0,
                    started: step,
                    attempt: poll_attempt.max(1),
                },
            );
        }
        if self.retry.repair_attempts > 0 {
            let r = self.poll.random_label(rng);
            self.repair_label = Some(r);
            self.repair_used = 1;
            self.repair_last = step;
            self.poll_lists.poll_list_with(self.x, r, |list| {
                for &w in list {
                    sends.push((w, AerMsg::RepairQuery(r)));
                }
            });
        }
        sends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::rng::node_rng;

    const CAP: u64 = 100;

    fn setup(n: usize, d: usize) -> (QuorumScheme, PollSampler) {
        (
            QuorumScheme::new(5, n, d),
            PollSampler::new(5, n, d, PollSampler::default_cardinality(n)),
        )
    }

    fn gs(tag: u8) -> GString {
        GString::from_bits(
            &(0..24)
                .map(|i| (i as u8).wrapping_add(tag).is_multiple_of(4))
                .collect::<Vec<_>>(),
        )
    }

    fn phase(x: usize, own: GString, n: usize, d: usize) -> PullPhase {
        let (scheme, poll) = setup(n, d);
        PullPhase::new(
            NodeId::from_index(x),
            own,
            scheme,
            poll,
            CAP,
            RetryPolicy::strict(),
        )
    }

    fn phase_with_retry(
        x: usize,
        own: GString,
        n: usize,
        d: usize,
        retry: RetryPolicy,
    ) -> PullPhase {
        let (scheme, poll) = setup(n, d);
        PullPhase::new(NodeId::from_index(x), own, scheme, poll, CAP, retry)
    }

    #[test]
    fn start_poll_targets_poll_list_and_pull_quorum() {
        let n = 64;
        let d = 7;
        let (scheme, poll) = setup(n, d);
        let mut p = phase(3, gs(0), n, d);
        let mut rng = node_rng(1, 3);
        let s = gs(1);
        let sends = p.start_poll(s, 0, &mut rng);
        assert_eq!(sends.len(), 2 * d);
        let polls: Vec<_> = sends
            .iter()
            .filter(|(_, m)| matches!(m, AerMsg::Poll(..)))
            .collect();
        let pulls: Vec<_> = sends
            .iter()
            .filter(|(_, m)| matches!(m, AerMsg::Pull(..)))
            .collect();
        assert_eq!(polls.len(), d);
        assert_eq!(pulls.len(), d);
        // Pulls go exactly to H(s, x).
        let quorum = scheme.pull.quorum(s.key(), NodeId::from_index(3));
        for (to, _) in pulls {
            assert!(quorum.contains(to));
        }
        // Polls go exactly to J(x, r) for the label used.
        if let AerMsg::Poll(_, r) = polls[0].1 {
            let list = poll.poll_list(NodeId::from_index(3), r);
            for (to, _) in polls {
                assert!(list.contains(to));
            }
        } else {
            unreachable!();
        }
    }

    #[test]
    fn start_poll_is_idempotent_per_string_and_stops_after_decision() {
        let mut p = phase(3, gs(0), 64, 7);
        let mut rng = node_rng(1, 3);
        assert!(!p.start_poll(gs(1), 0, &mut rng).is_empty());
        assert!(
            p.start_poll(gs(1), 0, &mut rng).is_empty(),
            "same string twice"
        );
        p.decided = Some(gs(9));
        assert!(
            p.start_poll(gs(2), 0, &mut rng).is_empty(),
            "after decision"
        );
    }

    #[test]
    fn on_pull_forwards_once_with_full_fanout() {
        let n = 64;
        let d = 5;
        let (scheme, _) = setup(n, d);
        let s = gs(0);
        // Find a router y in H(s, origin) that believes s.
        let origin = NodeId::from_index(9);
        let quorum = scheme.pull.quorum(s.key(), origin);
        let y = quorum[0];
        let mut p = phase(y.index(), s, n, d);
        let r = Label(77);
        let sends = p.on_pull(origin, s, r);
        assert_eq!(sends.len(), d * d, "d poll members × d quorum members");
        assert!(sends.iter().all(|(_, m)| matches!(m, AerMsg::Fw1 { .. })));
        // Second identical pull is filtered.
        assert!(p.on_pull(origin, s, r).is_empty());
        // Different label, same (origin, s): still filtered.
        assert!(p.on_pull(origin, s, Label(78)).is_empty());
    }

    #[test]
    fn on_pull_requires_belief_match_and_membership() {
        let n = 64;
        let d = 5;
        let (scheme, _) = setup(n, d);
        let s = gs(0);
        let origin = NodeId::from_index(9);
        let quorum = scheme.pull.quorum(s.key(), origin);

        // Router believes something else: no forward.
        let mut wrong_belief = phase(quorum[0].index(), gs(1), n, d);
        assert!(wrong_belief.on_pull(origin, s, Label(0)).is_empty());

        // Node outside H(s, origin): no forward.
        let outsider = (0..n)
            .map(NodeId::from_index)
            .find(|id| !quorum.contains(id))
            .unwrap();
        let mut not_member = phase(outsider.index(), s, n, d);
        assert!(not_member.on_pull(origin, s, Label(0)).is_empty());
    }

    /// Drives a full single-request pipeline through hand-built state
    /// machines and checks every hop, ending in a decision.
    #[test]
    fn full_pipeline_produces_decision() {
        let n = 64;
        let d = 5;
        let majority = d / 2 + 1;
        let (scheme, poll) = setup(n, d);
        let g = gs(0);
        let key = g.key();
        let x = NodeId::from_index(2);

        let mut requester = phase(x.index(), g, n, d);
        let mut rng = node_rng(9, 2);
        let sends = requester.start_poll(g, 0, &mut rng);
        let r = match &sends[0].1 {
            AerMsg::Poll(_, r) => *r,
            _ => unreachable!(),
        };
        let poll_list = poll.poll_list(x, r);
        let h_x = scheme.pull.quorum(key, x);

        // Every router in H(g, x) believes g and forwards.
        let mut all_fw1: Vec<(NodeId, NodeId, AerMsg)> = Vec::new(); // (sender y, to z, msg)
        for &y in &h_x {
            let mut router = phase(y.index(), g, n, d);
            for (to, m) in router.on_pull(x, g, r) {
                all_fw1.push((y, to, m));
            }
        }

        // Deliver Fw1s to one specific relay z for one specific w and watch
        // the majority trigger exactly once.
        let w = poll_list[0];
        let h_w = scheme.pull.quorum(key, w);
        let z = h_w[0];
        let mut relay = phase(z.index(), g, n, d);
        let mut fw2_out: Sends = Vec::new();
        let mut distinct_routers = 0;
        for (y, to, m) in &all_fw1 {
            if *to != z {
                continue;
            }
            if let AerMsg::Fw1 {
                origin,
                s,
                r: rr,
                w: ww,
            } = m
            {
                if *ww != w {
                    continue;
                }
                distinct_routers += 1;
                let out = relay.on_fw1(*y, *origin, *s, *rr, *ww);
                if distinct_routers < majority {
                    assert!(out.is_empty(), "below majority must not relay");
                } else if distinct_routers == majority {
                    assert_eq!(out.len(), 1, "majority crossing sends exactly one Fw2");
                    fw2_out = out;
                } else {
                    assert!(out.is_empty(), "relay only once");
                }
            }
        }
        assert_eq!(fw2_out.len(), 1);
        assert_eq!(fw2_out[0].0, w);

        // The poll-list member w: polled + Fw2 majority => answer.
        let mut answerer = phase(w.index(), g, n, d);
        assert!(answerer.on_poll(x, g, r).is_empty(), "no majority yet");
        let mut answers: Sends = Vec::new();
        for (i, &zz) in h_w.iter().enumerate() {
            let out = answerer.on_fw2(zz, x, g, r);
            if i + 1 < majority {
                assert!(out.is_empty());
            } else if i + 1 == majority {
                answers = out;
            } else {
                assert!(out.is_empty(), "answer only once");
            }
        }
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].0, x, "answer goes to the requester");

        // The requester decides after majority answers from J(x, r).
        for (i, &ww) in poll_list.iter().enumerate().take(poll.majority()) {
            let decision = requester.on_answer(ww, g);
            if i + 1 < poll.majority() {
                assert!(decision.is_none());
            } else {
                assert_eq!(decision, Some(g));
            }
        }
        assert_eq!(requester.decided(), Some(&g));
        assert_eq!(requester.believed(), &g);
    }

    #[test]
    fn answers_from_non_poll_list_members_are_ignored() {
        let n = 64;
        let d = 5;
        let (_, poll) = setup(n, d);
        let mut p = phase(2, gs(0), n, d);
        let mut rng = node_rng(9, 2);
        let g = gs(0);
        let sends = p.start_poll(g, 0, &mut rng);
        let r = match &sends[0].1 {
            AerMsg::Poll(_, r) => *r,
            _ => unreachable!(),
        };
        let list = poll.poll_list(NodeId::from_index(2), r);
        let outsider = (0..n)
            .map(NodeId::from_index)
            .find(|id| !list.contains(id))
            .unwrap();
        for _ in 0..n {
            assert!(p.on_answer(outsider, g).is_none());
        }
        assert!(p.decided().is_none());
    }

    #[test]
    fn duplicate_answers_from_same_member_count_once() {
        let n = 64;
        let d = 5;
        let (_, poll) = setup(n, d);
        let mut p = phase(2, gs(0), n, d);
        let mut rng = node_rng(9, 2);
        let g = gs(0);
        let sends = p.start_poll(g, 0, &mut rng);
        let r = match &sends[0].1 {
            AerMsg::Poll(_, r) => *r,
            _ => unreachable!(),
        };
        let list = poll.poll_list(NodeId::from_index(2), r);
        for _ in 0..10 {
            assert!(p.on_answer(list[0], g).is_none());
        }
        assert!(p.decided().is_none(), "one member cannot decide alone");
    }

    #[test]
    fn overload_defers_until_decision() {
        let n = 64;
        let d = 5;
        let (scheme, poll) = setup(n, d);
        let g = gs(0);
        let key = g.key();
        let w = NodeId::from_index(7);
        let h_w = scheme.pull.quorum(key, w);
        let mut p = PullPhase::new(w, g, scheme, poll, 1, RetryPolicy::strict()); // cap = 1

        // Serve requester A fully: poll + Fw2 majority => 1 answer (hits cap).
        let origin_a = NodeId::from_index(20);
        let (ra, _) = find_label_containing(&p.poll, origin_a, w);
        let _ = p.on_poll(origin_a, g, ra);
        let mut answered = 0;
        let mut parked_for_a = 0;
        for &z in &h_w {
            answered += p.on_fw2(z, origin_a, g, ra).len();
            if answered == 1 {
                // Once the cap is hit, even A's trailing forwards park.
                parked_for_a = p.deferred_len();
            }
        }
        assert_eq!(answered, 1);
        assert_eq!(p.answers_sent_for(&g), 1);

        // Requester B: all Fw2s are now parked.
        let origin_b = NodeId::from_index(21);
        let (rb, _) = find_label_containing(&p.poll, origin_b, w);
        let _ = p.on_poll(origin_b, g, rb);
        for &z in &h_w {
            assert!(p.on_fw2(z, origin_b, g, rb).is_empty());
        }
        assert_eq!(p.deferred_len(), h_w.len() + parked_for_a);

        // Decision unlocks the queue; B gets its answer.
        p.decided = Some(g);
        p.believed = g;
        let out = p.on_decided();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, origin_b);
        assert_eq!(p.deferred_len(), 0);
        assert_eq!(p.answers_sent_for(&g), 2);
    }

    /// Finds a label whose poll list for `origin` contains `member`.
    fn find_label_containing(
        poll: &PollSampler,
        origin: NodeId,
        member: NodeId,
    ) -> (Label, Vec<NodeId>) {
        for raw in 0..poll.label_cardinality() {
            let r = Label(raw);
            let list = poll.poll_list(origin, r);
            if list.contains(&member) {
                return (r, list);
            }
        }
        panic!("no label found — domain too small for test");
    }

    #[test]
    fn fw2_from_outside_quorum_is_ignored() {
        let n = 64;
        let d = 5;
        let (scheme, poll) = setup(n, d);
        let g = gs(0);
        let key = g.key();
        let w = NodeId::from_index(7);
        let h_w: BTreeSet<_> = scheme.pull.quorum(key, w).into_iter().collect();
        let mut p = PullPhase::new(w, g, scheme, poll, CAP, RetryPolicy::strict());
        let origin = NodeId::from_index(20);
        let (r, _) = find_label_containing(&p.poll, origin, w);
        let _ = p.on_poll(origin, g, r);
        let outsiders: Vec<_> = (0..n)
            .map(NodeId::from_index)
            .filter(|id| !h_w.contains(id))
            .take(2 * d)
            .collect();
        for z in outsiders {
            assert!(p.on_fw2(z, origin, g, r).is_empty());
        }
        assert_eq!(p.answers_sent_for(&g), 0);
    }

    #[test]
    fn poll_after_fw2_majority_answers_immediately_async_case() {
        let n = 64;
        let d = 5;
        let (scheme, poll) = setup(n, d);
        let g = gs(0);
        let key = g.key();
        let w = NodeId::from_index(7);
        let h_w = scheme.pull.quorum(key, w);
        let mut p = PullPhase::new(w, g, scheme, poll, CAP, RetryPolicy::strict());
        let origin = NodeId::from_index(20);
        let (r, _) = find_label_containing(&p.poll, origin, w);
        // Fw2 majority arrives before the poll.
        for &z in &h_w {
            assert!(p.on_fw2(z, origin, g, r).is_empty(), "not polled yet");
        }
        // The poll then triggers the answer (Algorithm 3's async branch).
        let out = p.on_poll(origin, g, r);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, origin);
    }

    #[test]
    fn retry_redraws_label_after_timeout() {
        let retry = RetryPolicy {
            poll_timeout: 4,
            poll_attempts: 3,
            repair_attempts: 0,
            eager_repair: false,
        };
        let mut p = phase_with_retry(2, gs(0), 64, 5, retry);
        let mut rng = node_rng(3, 2);
        let g = gs(0);
        let first = p.start_poll(g, 0, &mut rng);
        let r1 = match &first[0].1 {
            AerMsg::Poll(_, r) => *r,
            _ => unreachable!(),
        };
        // Before the timeout: nothing happens.
        assert!(p.on_step(3, &mut rng).is_empty());
        // At the timeout: a fresh poll with a new label fires.
        let second = p.on_step(4, &mut rng);
        assert_eq!(second.len(), 2 * 5);
        let r2 = match &second[0].1 {
            AerMsg::Poll(_, r) => *r,
            _ => unreachable!(),
        };
        assert_ne!(r1, r2, "retry must redraw the label");
        // Third attempt at the next timeout, then exhaustion (repair is
        // disabled here).
        assert!(!p.on_step(8, &mut rng).is_empty());
        assert!(p.on_step(12, &mut rng).is_empty(), "attempts exhausted");
    }

    #[test]
    fn strict_mode_never_retries() {
        let mut p = phase(2, gs(0), 64, 5);
        let mut rng = node_rng(3, 2);
        let _ = p.start_poll(gs(0), 0, &mut rng);
        for step in 1..2000 {
            assert!(p.on_step(step, &mut rng).is_empty());
        }
    }

    #[test]
    fn repair_fires_after_polls_exhaust_and_decides_on_majority() {
        let retry = RetryPolicy {
            poll_timeout: 2,
            poll_attempts: 1,
            repair_attempts: 2,
            eager_repair: false,
        };
        let n = 64;
        let d = 5;
        let mut p = phase_with_retry(2, gs(0), n, d, retry);
        let mut rng = node_rng(4, 2);
        let _ = p.start_poll(gs(0), 0, &mut rng);
        // Poll expires at step 2; repair query goes out to a fresh list.
        let sends = p.on_step(2, &mut rng);
        assert_eq!(sends.len(), d);
        assert!(sends
            .iter()
            .all(|(_, m)| matches!(m, AerMsg::RepairQuery(_))));
        let members: Vec<NodeId> = sends.iter().map(|(to, _)| *to).collect();

        // Majority of the repair list reports the same decision: adopt it.
        let g = gs(7);
        let maj = d / 2 + 1;
        for (i, w) in members.iter().enumerate().take(maj) {
            let decision = p.on_repair_answer(*w, g);
            if i + 1 < maj {
                assert!(decision.is_none());
            } else {
                assert_eq!(decision, Some(g));
            }
        }
        assert_eq!(p.decided(), Some(&g));
        assert_eq!(p.believed(), &g);
    }

    #[test]
    fn repair_answers_from_outside_list_do_not_count() {
        let retry = RetryPolicy {
            poll_timeout: 1,
            poll_attempts: 1,
            repair_attempts: 1,
            eager_repair: false,
        };
        let n = 64;
        let d = 5;
        let mut p = phase_with_retry(2, gs(0), n, d, retry);
        let mut rng = node_rng(4, 2);
        let _ = p.start_poll(gs(0), 0, &mut rng);
        let sends = p.on_step(1, &mut rng);
        let members: BTreeSet<NodeId> = sends.iter().map(|(to, _)| *to).collect();
        let outsiders: Vec<_> = (0..n)
            .map(NodeId::from_index)
            .filter(|id| !members.contains(id))
            .take(2 * d)
            .collect();
        for w in outsiders {
            assert!(p.on_repair_answer(w, gs(7)).is_none());
        }
        assert!(p.decided().is_none());
    }

    #[test]
    fn repair_query_answered_only_when_decided_and_capped() {
        let n = 64;
        let d = 5;
        let mut p = phase(7, gs(0), n, d);
        let origin = NodeId::from_index(20);
        let (r, _) = find_label_containing(&p.poll, origin, NodeId::from_index(7));
        // Undecided: query parks.
        assert!(p.on_repair_query(origin, r).is_empty());
        // Decide, then the parked query is served by the drain.
        p.decided = Some(gs(0));
        let out = p.on_decided();
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, AerMsg::RepairAnswer(_)));
        // Direct queries now get served, up to the cap.
        let mut served = 1; // one from the drain
        for _ in 0..(3 * REPAIR_ANSWER_CAP) {
            served += p.on_repair_query(origin, r).len();
        }
        assert_eq!(served as u32, REPAIR_ANSWER_CAP, "per-origin cap enforced");
    }

    #[test]
    fn repair_query_from_wrong_list_is_ignored() {
        let n = 64;
        let d = 5;
        let mut p = phase(7, gs(0), n, d);
        p.decided = Some(gs(0));
        let origin = NodeId::from_index(20);
        // Find a label whose list does NOT contain node 7.
        let mut r = None;
        for raw in 0..p.poll.label_cardinality() {
            if !p.poll.contains(origin, Label(raw), NodeId::from_index(7)) {
                r = Some(Label(raw));
                break;
            }
        }
        assert!(p.on_repair_query(origin, r.unwrap()).is_empty());
    }
}
