//! Transcript analysis: turning recorded message flows into the views of
//! Figure 2.
//!
//! The engine's `record_transcript` mode captures every envelope of a
//! run; this module distils transcripts into (a) per-node push-phase vote
//! counts — the Figure 2a picture — and (b) the hop-by-hop flow of a
//! single verification request — the Figure 2b picture. Used by the
//! `paperbench f2a`/`f2b` experiments and the `push_pull_trace` example.

use std::collections::BTreeMap;

use fba_samplers::{GString, QuorumScheme, StringKey};
use fba_sim::{Envelope, NodeId, Step};

use crate::msg::AerMsg;

/// Push-phase vote tally at one receiving node (Figure 2a).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PushVotes {
    /// Distinct valid quorum members that pushed, per candidate string.
    pub valid: BTreeMap<StringKey, usize>,
    /// Pushes discarded because the sender was not in `I(s, x)`.
    pub filtered: usize,
}

impl PushVotes {
    /// Valid pushes counted for `s`.
    #[must_use]
    pub fn votes_for(&self, s: &GString) -> usize {
        self.valid.get(&s.key()).copied().unwrap_or(0)
    }
}

/// Counts the push-phase votes a node received, applying the same
/// `I(s, x)` membership filter the node itself applies.
///
/// Duplicate pushes from the same sender for the same string count once,
/// mirroring [`crate::push::PushPhase`].
#[must_use]
pub fn push_votes_at(
    transcript: &[Envelope<AerMsg>],
    x: NodeId,
    scheme: &QuorumScheme,
) -> PushVotes {
    let mut seen: BTreeMap<StringKey, std::collections::BTreeSet<NodeId>> = BTreeMap::new();
    let mut filtered = 0usize;
    for env in transcript {
        if env.to != x {
            continue;
        }
        if let AerMsg::Push(s) = &env.msg {
            let key = s.key();
            if scheme.push.contains(key, x, env.from) {
                seen.entry(key).or_default().insert(env.from);
            } else {
                filtered += 1;
            }
        }
    }
    PushVotes {
        valid: seen.into_iter().map(|(k, set)| (k, set.len())).collect(),
        filtered,
    }
}

/// One hop of a verification request's flow (Figure 2b).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopSummary {
    /// Hop label ("Poll", "Pull", "Fw1", "Fw2", "Answer").
    pub kind: &'static str,
    /// Messages observed on this hop.
    pub count: usize,
    /// Step the first message of the hop was sent.
    pub first_step: Option<Step>,
}

/// The complete flow of one requester's verification of one string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestFlow {
    /// The requester.
    pub origin: NodeId,
    /// Hops in pipeline order: Poll, Pull, Fw1, Fw2, Answer.
    pub hops: Vec<HopSummary>,
}

impl RequestFlow {
    /// The hop summary for `kind`, if present.
    #[must_use]
    pub fn hop(&self, kind: &str) -> Option<&HopSummary> {
        self.hops.iter().find(|h| h.kind == kind)
    }

    /// Pipeline depth: steps between the request going out and the first
    /// answer coming back.
    #[must_use]
    pub fn pipeline_depth(&self) -> Option<Step> {
        let start = self.hop("Poll")?.first_step?;
        let end = self.hop("Answer")?.first_step?;
        Some(end.saturating_sub(start) + 1)
    }
}

/// Extracts the Figure 2b flow: every message serving `origin`'s
/// verification of `s`.
#[must_use]
pub fn request_flow(transcript: &[Envelope<AerMsg>], origin: NodeId, s: &GString) -> RequestFlow {
    let key = s.key();
    let mut counts: BTreeMap<&'static str, (usize, Option<Step>)> = BTreeMap::new();
    let mut record = |kind: &'static str, step: Step| {
        let slot = counts.entry(kind).or_insert((0, None));
        slot.0 += 1;
        slot.1 = Some(slot.1.map_or(step, |f| f.min(step)));
    };
    for env in transcript {
        match &env.msg {
            AerMsg::Poll(ps, _) if env.from == origin && ps.key() == key => {
                record("Poll", env.sent_at);
            }
            AerMsg::Pull(ps, _) if env.from == origin && ps.key() == key => {
                record("Pull", env.sent_at);
            }
            AerMsg::Fw1 {
                origin: o, s: ps, ..
            } if *o == origin && ps.key() == key => {
                record("Fw1", env.sent_at);
            }
            AerMsg::Fw2 {
                origin: o, s: ps, ..
            } if *o == origin && ps.key() == key => {
                record("Fw2", env.sent_at);
            }
            AerMsg::Answer(ps) if env.to == origin && ps.key() == key => {
                record("Answer", env.sent_at);
            }
            _ => {}
        }
    }
    let hops = ["Poll", "Pull", "Fw1", "Fw2", "Answer"]
        .into_iter()
        .map(|kind| {
            let (count, first_step) = counts.get(kind).copied().unwrap_or((0, None));
            HopSummary {
                kind,
                count,
                first_step,
            }
        })
        .collect();
    RequestFlow { origin, hops }
}

/// Message counts per `(step, kind)` — a coarse timeline of a run.
#[must_use]
pub fn kind_timeline(transcript: &[Envelope<AerMsg>]) -> BTreeMap<(Step, &'static str), usize> {
    let mut out: BTreeMap<(Step, &'static str), usize> = BTreeMap::new();
    for env in transcript {
        *out.entry((env.sent_at, env.msg.kind())).or_default() += 1;
    }
    out
}

/// One step's worth of poll and repair launches — the retry-wave picture.
///
/// A *wave* is a step in which at least one `Poll` or `RepairQuery` left a
/// requester. Step 0 is the initial wave (every node polls its own
/// candidate); later waves are retries with redrawn labels or repair
/// escalations. Fault-free runs should show O(1) waves at every `n` —
/// the scale-aware retry schedule exists to keep it that way, and
/// `poll_waves` is how the regression is diagnosed when it isn't.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PollWave {
    /// `Poll` messages sent this step.
    pub polls: usize,
    /// Distinct requesters that sent at least one `Poll` this step.
    pub origins: usize,
    /// `RepairQuery` messages sent this step.
    pub repair_queries: usize,
}

/// Groups the transcript's `Poll` and `RepairQuery` traffic by sending
/// step (see [`PollWave`]). Steps without either kind are absent.
#[must_use]
pub fn poll_waves(transcript: &[Envelope<AerMsg>]) -> BTreeMap<Step, PollWave> {
    let mut origins: BTreeMap<Step, std::collections::BTreeSet<NodeId>> = BTreeMap::new();
    let mut out: BTreeMap<Step, PollWave> = BTreeMap::new();
    for env in transcript {
        match &env.msg {
            AerMsg::Poll(..) => {
                let wave = out.entry(env.sent_at).or_default();
                wave.polls += 1;
                if origins.entry(env.sent_at).or_default().insert(env.from) {
                    wave.origins += 1;
                }
            }
            AerMsg::RepairQuery(_) => {
                out.entry(env.sent_at).or_default().repair_queries += 1;
            }
            _ => {}
        }
    }
    out
}

/// Number of distinct steps in which fresh polls or repair queries were
/// launched — the scalar the retry-wave regression guard watches.
#[must_use]
pub fn poll_wave_count(transcript: &[Envelope<AerMsg>]) -> usize {
    poll_waves(transcript).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AerConfig, AerHarness};
    use fba_ae::{Precondition, UnknowingAssignment};
    use fba_sim::NoAdversary;

    fn traced_run() -> (AerHarness, Precondition, Vec<Envelope<AerMsg>>) {
        let n = 48;
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            0.8,
            UnknowingAssignment::RandomPerNode,
            3,
        );
        let h = AerHarness::from_precondition(cfg, &pre);
        let mut engine = h.engine_sync();
        engine.record_transcript = true;
        let out = h.run(&engine, 3, &mut NoAdversary);
        assert!(out.all_decided());
        (h, pre, out.transcript)
    }

    #[test]
    fn push_votes_reach_majority_for_gstring() {
        let (h, pre, transcript) = traced_run();
        let scheme = h.scheme();
        let unknowing = (0..48)
            .map(NodeId::from_index)
            .find(|id| !pre.knows(*id))
            .unwrap();
        let votes = push_votes_at(&transcript, unknowing, &scheme);
        assert!(
            votes.votes_for(&pre.gstring) >= h.config().majority(),
            "gstring short of majority at {unknowing}: {votes:?}"
        );
    }

    #[test]
    fn push_votes_filter_matches_protocol_filter() {
        let (h, pre, transcript) = traced_run();
        let scheme = h.scheme();
        // Replay the transcript into a fresh PushPhase and compare.
        let x = (0..48)
            .map(NodeId::from_index)
            .find(|id| !pre.knows(*id))
            .unwrap();
        let mut phase = crate::push::PushPhase::new(x, pre.assignments[x.index()], scheme);
        for env in &transcript {
            if env.to == x {
                if let AerMsg::Push(s) = &env.msg {
                    let _ = phase.on_push(env.from, *s);
                }
            }
        }
        let votes = push_votes_at(&transcript, x, &scheme);
        // The trace says gstring crossed the majority iff the protocol
        // accepted it.
        assert_eq!(
            votes.votes_for(&pre.gstring) >= h.config().majority(),
            phase.contains(&pre.gstring),
        );
    }

    #[test]
    fn request_flow_shows_the_pipeline() {
        let (h, pre, transcript) = traced_run();
        let origin = (0..48)
            .map(NodeId::from_index)
            .find(|id| pre.knows(*id))
            .unwrap();
        let flow = request_flow(&transcript, origin, &pre.gstring);
        let d = h.config().d;
        assert_eq!(flow.hop("Poll").unwrap().count, d);
        assert_eq!(flow.hop("Pull").unwrap().count, d);
        assert!(
            flow.hop("Fw1").unwrap().count > d,
            "routing fan-out missing"
        );
        assert!(flow.hop("Answer").unwrap().count >= h.config().majority());
        // Pipeline order: Poll at 0, Fw1 at 1, Fw2 at 2, Answer at 3.
        assert_eq!(flow.hop("Poll").unwrap().first_step, Some(0));
        assert_eq!(flow.hop("Fw1").unwrap().first_step, Some(1));
        assert_eq!(flow.hop("Fw2").unwrap().first_step, Some(2));
        assert_eq!(flow.hop("Answer").unwrap().first_step, Some(3));
        assert_eq!(flow.pipeline_depth(), Some(4));
    }

    #[test]
    fn poll_waves_stay_constant_in_fault_free_runs() {
        let (h, _, transcript) = traced_run();
        let waves = poll_waves(&transcript);
        let d = h.config().d;
        // Step 0: every node polls its own candidate, d messages each.
        let first = &waves[&0];
        assert_eq!(first.polls, 48 * d);
        assert_eq!(first.origins, 48);
        assert_eq!(first.repair_queries, 0);
        // Unknowing nodes start a second wave when they accept gstring;
        // stragglers may add a retry/repair wave — but the total stays
        // O(1), nothing like one wave per `poll_timeout` window.
        assert!(
            poll_wave_count(&transcript) <= 4,
            "retry waves regressed: {waves:?}"
        );
    }

    #[test]
    fn timeline_covers_every_message() {
        let (_, _, transcript) = traced_run();
        let timeline = kind_timeline(&transcript);
        let total: usize = timeline.values().sum();
        assert_eq!(total, transcript.len());
        assert!(timeline.keys().any(|(_, k)| *k == "Push"));
        assert!(timeline.keys().any(|(_, k)| *k == "Answer"));
    }
}
