//! AER wire messages.
//!
//! Six message kinds drive the protocol (§3.1, Algorithms 1–3):
//!
//! * [`AerMsg::Push`] — push phase: a node diffuses its candidate to the
//!   nodes whose push quorums it belongs to.
//! * [`AerMsg::Poll`] / [`AerMsg::Pull`] — Algorithm 1: node `x` verifies a
//!   candidate `s` by messaging its poll list `J(x, r)` and its pull quorum
//!   `H(s, x)`.
//! * [`AerMsg::Fw1`] / [`AerMsg::Fw2`] — Algorithm 2: two-hop filtered
//!   forwarding of the pull request through pull quorums.
//! * [`AerMsg::Answer`] — Algorithm 3: an authoritative poll-list member
//!   confirms the candidate.
//!
//! Every variant carries the full candidate string (size `c·log n` bits),
//! so the engine's bit accounting reflects the paper's communication
//! metric directly.

use fba_samplers::{GString, Label};
use fba_sim::{NodeId, WireSize};

/// One AER protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AerMsg {
    /// Push-phase diffusion of a candidate string (§3.1.1). Sent by node
    /// `y` to every `x` with `y ∈ I(s_y, x)`.
    Push(GString),
    /// `Poll(s, r)`: `x` notifies its poll list `J(x, r)` that it is
    /// verifying `s` with label `r` (Algorithm 1).
    Poll(GString, Label),
    /// `Pull(s, r)`: `x` asks its pull quorum `H(s, x)` to route the
    /// verification request (Algorithm 1).
    Pull(GString, Label),
    /// First-hop forward (Algorithm 2): a member `y ∈ H(s, x)` relays
    /// `x`'s pull to the pull quorum `H(s, w)` of each poll-list member
    /// `w ∈ J(x, r)`.
    Fw1 {
        /// The original requester `x`.
        origin: NodeId,
        /// Candidate string being verified.
        s: GString,
        /// The requester's poll label.
        r: Label,
        /// The poll-list member this forward is destined to serve.
        w: NodeId,
    },
    /// Second-hop forward (Algorithm 2): a member `z ∈ H(s, w)` that saw a
    /// majority of `H(s, x)` forward the request passes it to `w`.
    Fw2 {
        /// The original requester `x`.
        origin: NodeId,
        /// Candidate string being verified.
        s: GString,
        /// The requester's poll label.
        r: Label,
    },
    /// A poll-list member's confirmation of `s` (Algorithm 3).
    Answer(GString),
    /// Last-resort liveness repair (extension beyond the paper, see
    /// DESIGN.md §8): an undecided node asks a fresh poll list `J(x, r)`
    /// what its members decided.
    RepairQuery(Label),
    /// Reply to a [`AerMsg::RepairQuery`]: the sender's decided string.
    RepairAnswer(GString),
}

impl AerMsg {
    /// The candidate string this message is about, if it carries one.
    #[must_use]
    pub fn string(&self) -> Option<&GString> {
        match self {
            AerMsg::Push(s)
            | AerMsg::Poll(s, _)
            | AerMsg::Pull(s, _)
            | AerMsg::Fw1 { s, .. }
            | AerMsg::Fw2 { s, .. }
            | AerMsg::Answer(s)
            | AerMsg::RepairAnswer(s) => Some(s),
            AerMsg::RepairQuery(_) => None,
        }
    }

    /// Short tag for traces.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AerMsg::Push(_) => "Push",
            AerMsg::Poll(..) => "Poll",
            AerMsg::Pull(..) => "Pull",
            AerMsg::Fw1 { .. } => "Fw1",
            AerMsg::Fw2 { .. } => "Fw2",
            AerMsg::Answer(_) => "Answer",
            AerMsg::RepairQuery(_) => "RepairQuery",
            AerMsg::RepairAnswer(_) => "RepairAnswer",
        }
    }
}

impl WireSize for AerMsg {
    fn wire_bits(&self) -> u64 {
        // 3 bits of message-kind discriminant on every variant.
        const KIND: u64 = 3;
        match self {
            AerMsg::Push(s) | AerMsg::Answer(s) | AerMsg::RepairAnswer(s) => KIND + s.wire_bits(),
            AerMsg::Poll(s, r) | AerMsg::Pull(s, r) => KIND + s.wire_bits() + r.wire_bits(),
            AerMsg::Fw1 { s, r, .. } => {
                // origin and w are node ids; count 32 bits each (the
                // simulator's header already covers from/to, these are
                // payload-embedded identities).
                KIND + s.wire_bits() + r.wire_bits() + 64
            }
            AerMsg::Fw2 { s, r, .. } => KIND + s.wire_bits() + r.wire_bits() + 32,
            AerMsg::RepairQuery(r) => KIND + r.wire_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(bits: usize) -> GString {
        GString::zeroes(bits)
    }

    #[test]
    fn wire_sizes_scale_with_string_length() {
        let short = AerMsg::Push(s(16)).wire_bits();
        let long = AerMsg::Push(s(64)).wire_bits();
        assert_eq!(long - short, 48);
    }

    #[test]
    fn forwards_cost_more_than_pushes() {
        let push = AerMsg::Push(s(32)).wire_bits();
        let fw1 = AerMsg::Fw1 {
            origin: NodeId::from_index(0),
            s: s(32),
            r: Label(1),
            w: NodeId::from_index(1),
        }
        .wire_bits();
        assert!(fw1 > push);
    }

    #[test]
    fn string_accessor_returns_payload() {
        let g = s(24);
        for m in [
            AerMsg::Push(g),
            AerMsg::Poll(g, Label(0)),
            AerMsg::Pull(g, Label(0)),
            AerMsg::Fw1 {
                origin: NodeId::from_index(0),
                s: g,
                r: Label(0),
                w: NodeId::from_index(0),
            },
            AerMsg::Fw2 {
                origin: NodeId::from_index(0),
                s: g,
                r: Label(0),
            },
            AerMsg::Answer(g),
            AerMsg::RepairAnswer(g),
        ] {
            assert_eq!(m.string(), Some(&g));
        }
        assert_eq!(AerMsg::RepairQuery(Label(0)).string(), None);
    }

    #[test]
    fn kinds_are_distinct() {
        let g = s(8);
        let kinds = [
            AerMsg::Push(g).kind(),
            AerMsg::Poll(g, Label(0)).kind(),
            AerMsg::Pull(g, Label(0)).kind(),
            AerMsg::Answer(g).kind(),
        ];
        let unique: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
