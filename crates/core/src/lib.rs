//! # fba-core — the AER protocol of *Fast Byzantine Agreement* (PODC 2013)
//!
//! This crate implements the paper's primary contribution: **AER**, an
//! *almost-everywhere → everywhere* agreement protocol with amortized
//! communication `Õ(1)` per node, constant time under a synchronous
//! non-rushing adversary and `O(log n / log log n)` time under asynchrony,
//! plus **BA**, the Byzantine Agreement protocol obtained by composing AER
//! with an almost-everywhere agreement substrate.
//!
//! * [`push`] — the push phase (§3.1.1): sampler-filtered diffusion of
//!   candidate strings.
//! * [`pull`] — the pull phase (§3.1.2, Algorithms 1–3): filtered
//!   two-hop verification through pull quorums and poll lists with the
//!   `log² n` overload valve.
//! * [`AerNode`] / [`AerHarness`] — the assembled protocol and its run
//!   harness.
//! * [`adversary`] — the attack suite: flooding, equivocation, and the
//!   Lemma 6 cornering/overload attack.
//! * [`ba`] — end-to-end Byzantine Agreement (almost-everywhere phase +
//!   AER).
//!
//! ```
//! use fba_ae::{Precondition, UnknowingAssignment};
//! use fba_core::{AerConfig, AerHarness};
//! use fba_sim::NoAdversary;
//!
//! let cfg = AerConfig::recommended(64);
//! let pre = Precondition::synthetic(
//!     64, cfg.string_len, 0.75, UnknowingAssignment::RandomPerNode, 7,
//! );
//! let harness = AerHarness::from_precondition(cfg, &pre);
//! let out = harness.run(&harness.engine_sync(), 7, &mut NoAdversary);
//! assert_eq!(out.unanimous(), Some(&pre.gstring));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
mod aer;
pub mod ba;
mod config;
mod msg;
pub mod pull;
pub mod push;
pub mod trace;

pub use aer::{AerHarness, AerNode, AerRunState};
pub use ba::{run_ba, BaConfig, BaReport};
pub use config::{AerConfig, ConfigError};
pub use msg::AerMsg;
