//! End-to-end Byzantine Agreement: almost-everywhere phase + AER.
//!
//! The paper's headline protocol **BA** is the composition of an
//! almost-everywhere agreement protocol (along the lines of KSSV06,
//! provided by [`fba_ae`]) with the AER almost-everywhere → everywhere
//! protocol of §3: the first phase leaves more than 3/4 of the correct
//! nodes knowing a common random-enough string, the second spreads it to
//! everyone. Both phases are poly-logarithmic in time and per-node
//! communication, so BA is the first Byzantine Agreement protocol that is
//! poly-logarithmic in both (Figure 1b).

use fba_ae::{run_ae, AeConfig, AeMsg, AeOutcome};
use fba_samplers::GString;
use fba_sim::{Adversary, EngineConfig, RunOutcome, Step};

use crate::aer::AerHarness;
use crate::config::AerConfig;
use crate::msg::AerMsg;

/// Parameters of an end-to-end BA run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaConfig {
    /// The almost-everywhere phase.
    pub ae: AeConfig,
    /// The AER phase.
    pub aer: AerConfig,
}

impl BaConfig {
    /// Recommended configuration for `n` nodes; both phases share the
    /// string length so the AE output feeds AER unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8`.
    #[must_use]
    pub fn recommended(n: usize) -> Self {
        let aer = AerConfig::recommended(n);
        let mut ae = AeConfig::recommended(n);
        ae.string_len = aer.string_len;
        BaConfig { ae, aer }
    }
}

/// Summary of one end-to-end BA run.
#[derive(Clone, Debug)]
pub struct BaReport {
    /// The unanimous AER decision, if agreement held.
    pub agreed: Option<GString>,
    /// Whether the agreed value is the AE phase's majority string (the
    /// validity notion: the adversary did not impose a value of its own).
    pub matches_ae_majority: bool,
    /// Fraction of correct nodes knowing the majority string after AE.
    pub knowing_fraction_after_ae: f64,
    /// Rounds consumed by the AE phase.
    pub ae_rounds: Step,
    /// Rounds consumed by AER (None if some node never decided).
    pub aer_rounds: Option<Step>,
    /// Amortized AE bits per node.
    pub ae_bits_per_node: f64,
    /// Amortized AER bits per node.
    pub aer_bits_per_node: f64,
    /// Correct nodes in the AER phase.
    pub correct_nodes: usize,
    /// Correct nodes that decided in the AER phase.
    pub decided_nodes: usize,
}

impl BaReport {
    /// Whether the run met BA's obligations: all correct nodes decided,
    /// unanimously, on the AE majority string.
    #[must_use]
    pub fn success(&self) -> bool {
        self.agreed.is_some()
            && self.matches_ae_majority
            && self.decided_nodes == self.correct_nodes
    }
}

/// Runs BA end to end: the AE phase under `ae_adversary`, then AER under
/// the adversary built by `make_aer_adversary` (which receives the
/// harness and the AE majority string — full information).
///
/// `aer_engine` selects AER's timing model (`None` = the harness default
/// synchronous engine).
pub fn run_ba<AeA, AerA, F>(
    cfg: &BaConfig,
    seed: u64,
    ae_adversary: &mut AeA,
    make_aer_adversary: F,
    aer_engine: Option<EngineConfig>,
) -> (BaReport, AeOutcome, RunOutcome<GString, AerMsg>)
where
    AeA: Adversary<AeMsg> + ?Sized,
    AerA: Adversary<AerMsg>,
    F: FnOnce(&AerHarness, &GString) -> AerA,
{
    let ae_outcome = run_ae(&cfg.ae, seed, ae_adversary);
    let pre = ae_outcome.to_precondition(cfg.aer.n, cfg.aer.string_len);
    let harness = AerHarness::from_precondition(cfg.aer, &pre);
    let mut aer_adversary = make_aer_adversary(&harness, &ae_outcome.gstring);
    let engine = aer_engine.unwrap_or_else(|| harness.engine_sync());
    let aer_run = harness.run(&engine, seed.wrapping_add(1), &mut aer_adversary);

    let agreed = aer_run.unanimous().cloned();
    let report = BaReport {
        matches_ae_majority: agreed.as_ref() == Some(&ae_outcome.gstring),
        agreed,
        knowing_fraction_after_ae: ae_outcome.knowing_fraction,
        ae_rounds: ae_outcome.run.metrics.steps,
        aer_rounds: aer_run.all_decided_at,
        ae_bits_per_node: ae_outcome.run.metrics.amortized_bits(),
        aer_bits_per_node: aer_run.metrics.amortized_bits(),
        correct_nodes: cfg.aer.n - aer_run.corrupt.len(),
        decided_nodes: aer_run.outputs.len(),
    };
    (report, ae_outcome, aer_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AttackContext, BadString};
    use fba_sim::{NoAdversary, SilentAdversary};

    #[test]
    fn fault_free_ba_succeeds() {
        let cfg = BaConfig::recommended(64);
        let (report, ae, _run) = run_ba(&cfg, 7, &mut NoAdversary, |_, _| NoAdversary, None);
        assert!(report.success(), "report: {report:?}");
        assert_eq!(report.agreed.as_ref(), Some(&ae.gstring));
        assert!(report.knowing_fraction_after_ae > 0.99);
    }

    #[test]
    fn ba_survives_silent_faults_in_both_phases() {
        let cfg = BaConfig::recommended(96);
        let t = 10;
        let mut ae_adv = SilentAdversary::new(t);
        let (report, _, _) = run_ba(&cfg, 8, &mut ae_adv, |_, _| SilentAdversary::new(t), None);
        assert!(
            report.agreed.is_some(),
            "correct nodes disagreed: {report:?}"
        );
        assert!(report.matches_ae_majority);
        // Silent faults may strand a straggler despite repair; the bulk
        // must decide.
        assert!(report.decided_nodes as f64 >= 0.95 * report.correct_nodes as f64);
    }

    #[test]
    fn ba_resists_the_bad_string_campaign() {
        let cfg = BaConfig::recommended(64);
        let (report, ae, run) = run_ba(
            &cfg,
            11,
            &mut NoAdversary,
            |harness, gstring| {
                let ctx = AttackContext::new(harness, *gstring);
                let bad = GString::zeroes(gstring.len_bits());
                BadString::new(ctx, bad)
            },
            None,
        );
        // No correct node may adopt the campaign string.
        let bad = GString::zeroes(ae.gstring.len_bits());
        for (id, value) in &run.outputs {
            assert_ne!(value, &bad, "node {id} decided the campaign string");
        }
        assert!(report.matches_ae_majority || report.agreed.is_none());
    }
}
