//! The AER protocol node and run harness.
//!
//! [`AerNode`] wires the push phase (§3.1.1) and pull phase (§3.1.2,
//! Algorithms 1–3) into one event-driven [`Protocol`]: a node pushes its
//! initial candidate at start, polls every candidate as soon as it enters
//! `L_x` (its own candidate immediately), routes and answers other nodes'
//! pull traffic, and decides on the first candidate confirmed by a strict
//! majority of a poll list. The event-driven formulation works unchanged
//! in synchronous and asynchronous executions — one of AER's distinctive
//! properties ("this algorithm remains correct and efficient under
//! asynchrony").
//!
//! [`AerHarness`] packages the shared public state (samplers, initial
//! assignments, push target lists) and runs complete executions on the
//! simulator.

use fba_ae::Precondition;
use fba_recovery::{CheckpointStore, RecoveryConfig, WalRecord};
use fba_samplers::{
    GString, PollSampler, QuorumScheme, SharedPollCache, SharedQuorumCache, SlotMasks, StringKey,
};
use fba_sim::{
    run, Adversary, Context, EngineConfig, EngineSession, NodeId, Protocol, RunOutcome, Step,
};

use crate::config::AerConfig;
use crate::msg::AerMsg;
use crate::pull::{PullPhase, RetryPolicy, Sends, SharedBeliefs, SharedFw1Routes};
use crate::push::{push_targets, PushPhase};

/// One run's worth of shared state: the memoized sampler caches (push
/// `I`, pull `H`, poll `J`) plus the run-owned struct-of-arrays node
/// state — the push-phase vote arena and the pull-phase belief table.
///
/// Every node of a run gets clones of these handles. The caches memoize
/// pure functions of public randomness, and the arenas are partitioned by
/// node (each node writes only its own slots/entry), so sharing changes
/// no outcome — it only packs the per-node hot state into contiguous
/// vectors (see the determinism contract in `fba-sim`).
#[derive(Clone, Debug)]
pub struct AerRunState {
    push_quorums: SharedQuorumCache,
    pull_quorums: SharedQuorumCache,
    poll_lists: SharedPollCache,
    push_votes: SlotMasks,
    beliefs: SharedBeliefs,
    fw1_routes: SharedFw1Routes,
}

impl AerRunState {
    /// Starts a new agreement instance on this bundle, resetting exactly
    /// the state that must not survive an instance boundary.
    ///
    /// What persists and why it cannot leak decisions across instances:
    ///
    /// * the sampler caches (`I`, `H`, `J`) memoize pure functions of the
    ///   public sampler seed — a hit returns the same bytes a fresh run
    ///   would recompute;
    /// * the Fw1 route table is keyed by `(origin, label)` and stores the
    ///   string key it was derived from, recomputing on mismatch, so a
    ///   stale entry is either bit-identical to the recomputation or
    ///   replaced;
    /// * the belief table is overwritten for every correct node when the
    ///   instance's nodes are constructed, and nodes only ever read their
    ///   own entry.
    ///
    /// What resets: the push-phase vote arena. Its masks are *decision
    /// state* (who already pushed string `s` to node `x`), and quorum
    /// slots are interned per `(string, node)` — a repeated client value
    /// would otherwise see instance `k-1`'s votes as duplicates and never
    /// accept the candidate. The cross-instance leak battery in
    /// `tests/service_determinism.rs` fails if this reset is removed.
    pub fn begin_instance(&self) {
        self.push_votes.reset();
    }

    /// `(hits, misses)` of the push-quorum (`I`) cache.
    #[must_use]
    pub fn push_cache_stats(&self) -> (u64, u64) {
        self.push_quorums.stats()
    }

    /// `(hits, misses)` of the pull-quorum (`H`) cache.
    #[must_use]
    pub fn pull_cache_stats(&self) -> (u64, u64) {
        self.pull_quorums.stats()
    }

    /// `(hits, misses)` of the poll-list (`J`) cache.
    #[must_use]
    pub fn poll_cache_stats(&self) -> (u64, u64) {
        self.poll_lists.stats()
    }
}

/// The checkpoint layer of one node: its durable store plus cursors
/// tracking which phase facts have already been logged, so `sync_wal`
/// appends exactly the diff after each protocol callback.
#[derive(Clone, Debug)]
struct RecoveryState {
    store: CheckpointStore,
    /// Prefix of `push.candidates()` already logged as `Accept` records
    /// (position 0, `s_x`, is the WAL's first record).
    logged_accepts: usize,
    logged_belief: StringKey,
    logged_decided: bool,
    logged_poll_attempt: u32,
}

impl RecoveryState {
    fn new(config: RecoveryConfig, own_key: StringKey) -> Self {
        RecoveryState {
            store: CheckpointStore::new(config),
            logged_accepts: 0,
            logged_belief: own_key,
            logged_decided: false,
            logged_poll_attempt: 0,
        }
    }
}

/// One correct AER participant.
#[derive(Clone, Debug)]
pub struct AerNode {
    push: PushPhase,
    pull: PullPhase,
    targets: Vec<NodeId>,
    /// Checkpoint/WAL layer; `None` (the default) runs without any
    /// recovery machinery — bit-identical to builds predating it.
    recovery: Option<RecoveryState>,
}

impl AerNode {
    /// Builds the node; `targets` is its push target list
    /// `{x : self ∈ I(s_self, x)}` (see [`push_targets`]).
    #[must_use]
    pub fn new(
        id: NodeId,
        own: GString,
        scheme: QuorumScheme,
        poll: PollSampler,
        overload_cap: u64,
        retry: RetryPolicy,
        targets: Vec<NodeId>,
    ) -> Self {
        Self::with_caches(
            id,
            own,
            scheme.shared_push(),
            scheme.shared_pull(),
            SharedPollCache::new(poll),
            overload_cap,
            retry,
            targets,
        )
    }

    /// Like [`AerNode::new`], but sharing run-wide sampler caches with the
    /// other nodes. The caches memoize pure functions of public
    /// randomness, so sharing them changes no outcome — only how often
    /// quorums are recomputed (see the determinism contract in `fba-sim`).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirror of `new` plus the caches
    pub fn with_caches(
        id: NodeId,
        own: GString,
        push_quorums: SharedQuorumCache,
        pull_quorums: SharedQuorumCache,
        poll_lists: SharedPollCache,
        overload_cap: u64,
        retry: RetryPolicy,
        targets: Vec<NodeId>,
    ) -> Self {
        AerNode {
            push: PushPhase::with_cache(id, own, push_quorums),
            pull: PullPhase::with_caches(id, own, pull_quorums, poll_lists, overload_cap, retry),
            targets,
            recovery: None,
        }
    }

    /// Like [`AerNode::with_caches`], but drawing every shared handle —
    /// sampler caches *and* the run-owned vote/belief arenas — from one
    /// [`AerRunState`] bundle. This is the constructor full runs use.
    #[must_use]
    pub fn with_state(
        id: NodeId,
        own: GString,
        state: &AerRunState,
        overload_cap: u64,
        retry: RetryPolicy,
        targets: Vec<NodeId>,
    ) -> Self {
        AerNode {
            push: PushPhase::with_votes(
                id,
                own,
                state.push_quorums.clone(),
                state.push_votes.clone(),
            ),
            pull: PullPhase::with_state(
                id,
                own,
                state.pull_quorums.clone(),
                state.poll_lists.clone(),
                overload_cap,
                retry,
                state.beliefs.clone(),
                state.fw1_routes.clone(),
            ),
            targets,
            recovery: None,
        }
    }

    /// Enables the checkpoint/WAL layer: the node logs phase progress
    /// after every callback and, on [`Protocol::on_restart`], restores
    /// from its checkpoint and launches state-sync catch-up. Without
    /// this, a restarted node resumes naively on whatever in-memory
    /// state survived.
    ///
    /// Checkpointing consumes no randomness and sends no messages during
    /// normal operation, so enabling it on a run that never crashes is
    /// bit-identical to leaving it off.
    #[must_use]
    pub fn with_recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = Some(RecoveryState::new(config, self.push.own_candidate().key()));
        self
    }

    /// Appends the diff since the last sync to the WAL: newly accepted
    /// candidates, a changed belief, a decision, and poll-attempt
    /// progress — then compacts on the store's cadence. Called after
    /// every protocol callback; no-op without recovery enabled.
    fn sync_wal(&mut self, step: Step) {
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        let candidates = self.push.candidates();
        while rec.logged_accepts < candidates.len() {
            rec.store
                .append(step, WalRecord::Accept(candidates[rec.logged_accepts]));
            rec.logged_accepts += 1;
        }
        let believed = *self.pull.believed();
        if believed.key() != rec.logged_belief {
            rec.logged_belief = believed.key();
            rec.store.append(step, WalRecord::Believe(believed));
        }
        if !rec.logged_decided {
            if let Some(decided) = self.pull.decided() {
                rec.logged_decided = true;
                rec.store.append(step, WalRecord::Decide(*decided));
            }
        }
        let attempt = self.pull.max_poll_attempt();
        if attempt > rec.logged_poll_attempt {
            rec.logged_poll_attempt = attempt;
            rec.store.append(step, WalRecord::Poll { attempt });
        }
        rec.store.maybe_snapshot(step);
    }

    /// The node's current candidate list `L_x`.
    #[must_use]
    pub fn candidates(&self) -> &[GString] {
        self.push.candidates()
    }

    /// The node's current belief.
    #[must_use]
    pub fn believed(&self) -> &GString {
        self.pull.believed()
    }

    fn dispatch(sends: Sends, ctx: &mut Context<'_, AerMsg>) {
        for (to, msg) in sends {
            ctx.send(to, msg);
        }
    }
}

impl Protocol for AerNode {
    type Msg = AerMsg;
    type Output = GString;

    fn on_start(&mut self, ctx: &mut Context<'_, AerMsg>) {
        // Push phase: diffuse the initial candidate to the nodes whose
        // push quorums we belong to.
        let own = *self.push.own_candidate();
        for &x in &self.targets {
            ctx.send(x, AerMsg::Push(own));
        }
        // L_x starts as {s_x}: verify it immediately.
        let step = ctx.step();
        let sends = self.pull.start_poll(own, step, ctx.rng());
        Self::dispatch(sends, ctx);
        self.sync_wal(step);
    }

    fn on_step(&mut self, ctx: &mut Context<'_, AerMsg>) {
        let step = ctx.step();
        let sends = self.pull.on_step(step, ctx.rng());
        Self::dispatch(sends, ctx);
        self.sync_wal(step);
    }

    fn on_message(&mut self, from: NodeId, msg: AerMsg, ctx: &mut Context<'_, AerMsg>) {
        match msg {
            AerMsg::Push(s) => {
                if let Some(newly_accepted) = self.push.on_push(from, s) {
                    // Pull phase begins per candidate as soon as it is
                    // accepted.
                    let step = ctx.step();
                    let sends = self.pull.start_poll(newly_accepted, step, ctx.rng());
                    Self::dispatch(sends, ctx);
                }
            }
            AerMsg::Poll(s, r) => Self::dispatch(self.pull.on_poll(from, s, r), ctx),
            AerMsg::Pull(s, r) => Self::dispatch(self.pull.on_pull(from, s, r), ctx),
            AerMsg::Fw1 { origin, s, r, w } => {
                Self::dispatch(self.pull.on_fw1(from, origin, s, r, w), ctx);
            }
            AerMsg::Fw2 { origin, s, r } => {
                Self::dispatch(self.pull.on_fw2(from, origin, s, r), ctx);
            }
            AerMsg::Answer(s) => {
                if self.pull.on_answer(from, s).is_some() {
                    // Deciding unlocks the overload queue (Algorithm 3's
                    // "wait for has_decided").
                    let sends = self.pull.on_decided();
                    Self::dispatch(sends, ctx);
                }
            }
            AerMsg::RepairQuery(r) => {
                Self::dispatch(self.pull.on_repair_query(from, r), ctx);
            }
            AerMsg::RepairAnswer(s) => {
                if self.pull.on_repair_answer(from, s).is_some() {
                    let sends = self.pull.on_decided();
                    Self::dispatch(sends, ctx);
                }
            }
        }
        self.sync_wal(ctx.step());
    }

    fn on_restart(&mut self, ctx: &mut Context<'_, AerMsg>) {
        // Without the checkpoint layer, fall through to the naive default:
        // resume on whatever in-memory state survived the simulated crash.
        let Some(rec) = self.recovery.as_ref() else {
            return;
        };
        let checkpoint = rec.store.restore();
        if checkpoint.accepted.is_empty() {
            // Crashed before the first sync (impossible under the engine's
            // step-1 window floor, but harmless): nothing durable to load.
            return;
        }
        self.push.restore_accepted(&checkpoint.accepted);
        let belief = checkpoint.belief.unwrap_or_else(|| checkpoint.accepted[0]);
        let step = ctx.step();
        let sends = self.pull.restore(
            belief,
            checkpoint.decided,
            checkpoint.poll_attempt,
            &checkpoint.accepted,
            step,
            ctx.rng(),
        );
        Self::dispatch(sends, ctx);
        self.sync_wal(step);
    }

    fn output(&self) -> Option<GString> {
        self.pull.decided().cloned()
    }
}

/// Shared state of one AER deployment plus run helpers.
#[derive(Clone, Debug)]
pub struct AerHarness {
    cfg: AerConfig,
    scheme: QuorumScheme,
    poll: PollSampler,
    assignments: Vec<GString>,
    targets: Vec<Vec<NodeId>>,
    recovery: Option<RecoveryConfig>,
}

impl AerHarness {
    /// Builds the harness from a config and every node's initial
    /// candidate.
    ///
    /// # Panics
    ///
    /// Panics if `assignments.len() != cfg.n` or the config is invalid.
    #[must_use]
    pub fn new(cfg: AerConfig, assignments: Vec<GString>) -> Self {
        cfg.validate().expect("invalid AER config");
        assert_eq!(assignments.len(), cfg.n, "one candidate per node");
        let scheme = cfg.scheme();
        let poll = cfg.poll_sampler();
        let targets = push_targets(&scheme, &assignments);
        AerHarness {
            cfg,
            scheme,
            poll,
            assignments,
            targets,
            recovery: None,
        }
    }

    /// Enables the checkpoint/WAL layer on every node this harness
    /// builds (see [`AerNode::with_recovery`]). Runs that never crash
    /// are unaffected — checkpointing consumes no randomness and sends
    /// nothing — so this is safe to enable exactly when a crash plan is
    /// present.
    pub fn enable_recovery(&mut self, config: RecoveryConfig) {
        self.recovery = Some(config);
    }

    /// The recovery configuration, if the checkpoint layer is enabled.
    #[must_use]
    pub fn recovery(&self) -> Option<RecoveryConfig> {
        self.recovery
    }

    /// Convenience constructor from a synthetic or protocol-produced
    /// almost-everywhere [`Precondition`].
    #[must_use]
    pub fn from_precondition(cfg: AerConfig, pre: &Precondition) -> Self {
        Self::new(cfg, pre.assignments.clone())
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &AerConfig {
        &self.cfg
    }

    /// The shared quorum scheme (I and H).
    #[must_use]
    pub fn scheme(&self) -> QuorumScheme {
        self.scheme
    }

    /// The shared poll sampler (J).
    #[must_use]
    pub fn poll_sampler(&self) -> PollSampler {
        self.poll
    }

    /// Initial candidate of every node.
    #[must_use]
    pub fn assignments(&self) -> &[GString] {
        &self.assignments
    }

    /// Builds the state machine for one correct node (the engine factory).
    #[must_use]
    pub fn node(&self, id: NodeId) -> AerNode {
        let node = AerNode::new(
            id,
            self.assignments[id.index()],
            self.scheme,
            self.poll,
            self.cfg.overload_cap,
            self.retry_policy(),
            self.targets[id.index()].clone(),
        );
        match self.recovery {
            Some(config) => node.with_recovery(config),
            None => node,
        }
    }

    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            poll_timeout: self.cfg.poll_timeout,
            poll_attempts: self.cfg.poll_attempts,
            repair_attempts: self.cfg.repair_attempts,
            eager_repair: self.cfg.eager_repair,
        }
    }

    /// Builds one run's worth of shared state (see [`AerRunState`]).
    /// Every run gets a fresh bundle so runs stay independent pure
    /// functions of `(config, seed)`.
    #[must_use]
    pub fn run_state(&self) -> AerRunState {
        AerRunState {
            push_quorums: self.scheme.shared_push(),
            pull_quorums: self.scheme.shared_pull(),
            poll_lists: SharedPollCache::new(self.poll),
            push_votes: SlotMasks::new(),
            beliefs: SharedBeliefs::new(),
            fw1_routes: SharedFw1Routes::new(),
        }
    }

    /// Builds the state machine for node `id`, wired to the given shared
    /// run state. The factory behind every run entry point; public so
    /// execution backends (`fba-exec`) can build nodes against their own
    /// state bundles — e.g. one per worker shard in the threaded backend.
    #[must_use]
    pub fn node_with(&self, id: NodeId, state: &AerRunState) -> AerNode {
        let node = AerNode::with_state(
            id,
            self.assignments[id.index()],
            state,
            self.cfg.overload_cap,
            self.retry_policy(),
            self.targets[id.index()].clone(),
        );
        match self.recovery {
            Some(config) => node.with_recovery(config),
            None => node,
        }
    }

    /// Default synchronous engine configuration for this deployment:
    /// enough steps for the retry/repair schedule to play out
    /// (see [`AerConfig::engine_sync`]).
    #[must_use]
    pub fn engine_sync(&self) -> EngineConfig {
        self.cfg.engine_sync()
    }

    /// Default asynchronous engine configuration (`max_delay` steps of
    /// adversarial delay; see [`AerConfig::engine_async`]).
    #[must_use]
    pub fn engine_async(&self, max_delay: Step) -> EngineConfig {
        self.cfg.engine_async(max_delay)
    }

    /// Runs one complete execution.
    pub fn run<A>(
        &self,
        engine: &EngineConfig,
        seed: u64,
        adversary: &mut A,
    ) -> RunOutcome<GString, AerMsg>
    where
        A: Adversary<AerMsg> + ?Sized,
    {
        let state = self.run_state();
        run::<AerNode, A, _>(engine, seed, adversary, |id| self.node_with(id, &state))
    }

    /// Runs one complete execution while driving a read-only
    /// [`fba_sim::Observer`] — per-step send views, per-decision events
    /// and final node states. Observers cannot influence the run, so the
    /// outcome is bit-identical to [`AerHarness::run`].
    pub fn run_observed<A, O>(
        &self,
        engine: &EngineConfig,
        seed: u64,
        adversary: &mut A,
        observer: &mut O,
    ) -> RunOutcome<GString, AerMsg>
    where
        A: Adversary<AerMsg> + ?Sized,
        O: fba_sim::Observer<AerNode> + ?Sized,
    {
        let state = self.run_state();
        fba_sim::run_observed::<AerNode, A, _, O>(
            engine,
            seed,
            adversary,
            |id| self.node_with(id, &state),
            observer,
        )
    }

    /// Runs one agreement instance over caller-owned persistent state —
    /// the service-mode entry point.
    ///
    /// Unlike [`AerHarness::run_observed`], which builds a fresh
    /// [`AerRunState`] per call, this threads an external bundle (plus a
    /// reusable [`EngineSession`]) through the run so sampler caches and
    /// arenas survive instance boundaries. The per-instance reset
    /// ([`AerRunState::begin_instance`]) is applied here unconditionally —
    /// it is part of the run, not an optional caller step.
    ///
    /// `adversary_seed` decouples the corruption draw from the instance's
    /// master seed (see [`fba_sim::run_session`]): a service passes its
    /// service seed every instance so the coalition persists. The caller
    /// must build `state` from a harness with this harness's config — the
    /// sampler caches memoize the public samplers, so mixing configs would
    /// silently answer from the wrong distribution.
    #[allow(clippy::too_many_arguments)] // the full service-mode seam, mirrored by fba-scenario
    pub fn run_in_session<A, O>(
        &self,
        engine: &EngineConfig,
        seed: u64,
        adversary_seed: u64,
        adversary: &mut A,
        observer: &mut O,
        state: &AerRunState,
        session: &mut EngineSession<AerMsg>,
    ) -> RunOutcome<GString, AerMsg>
    where
        A: Adversary<AerMsg> + ?Sized,
        O: fba_sim::Observer<AerNode> + ?Sized,
    {
        state.begin_instance();
        fba_sim::run_session::<AerNode, A, _, O>(
            engine,
            seed,
            adversary_seed,
            adversary,
            |id| self.node_with(id, state),
            observer,
            session,
        )
    }

    /// Runs one complete execution and hands every surviving node's final
    /// state to `inspect` — used by the Lemma 4 experiments to read
    /// candidate-list sizes.
    pub fn run_inspect<A, I>(
        &self,
        engine: &EngineConfig,
        seed: u64,
        adversary: &mut A,
        inspect: I,
    ) -> RunOutcome<GString, AerMsg>
    where
        A: Adversary<AerMsg> + ?Sized,
        I: FnMut(fba_sim::NodeId, &AerNode),
    {
        let state = self.run_state();
        fba_sim::run_inspect::<AerNode, A, _, I>(
            engine,
            seed,
            adversary,
            |id| self.node_with(id, &state),
            inspect,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_ae::UnknowingAssignment;
    use fba_sim::NoAdversary;

    fn harness(n: usize, knowledge: f64, seed: u64) -> (AerHarness, Precondition) {
        let cfg = AerConfig::recommended(n);
        let pre = Precondition::synthetic(
            n,
            cfg.string_len,
            knowledge,
            UnknowingAssignment::RandomPerNode,
            seed,
        );
        (AerHarness::from_precondition(cfg, &pre), pre)
    }

    #[test]
    fn fault_free_run_decides_gstring_everywhere() {
        let (h, pre) = harness(64, 0.75, 1);
        let out = h.run(&h.engine_sync(), 1, &mut NoAdversary);
        assert!(
            out.all_decided(),
            "undecided nodes: {:?}",
            out.metrics.steps
        );
        assert_eq!(out.unanimous(), Some(&pre.gstring));
    }

    #[test]
    fn fault_free_run_is_constant_time_for_the_bulk() {
        // Lemma 9 shape: the overwhelming majority decides within a
        // handful of rounds; finite-size stragglers are mopped up by the
        // retry/repair extensions but stay rare.
        for n in [32, 64, 128] {
            let (h, _) = harness(n, 0.75, 3);
            let out = h.run(&h.engine_sync(), 3, &mut NoAdversary);
            assert!(out.all_decided(), "n={n}: not everyone decided");
            let fast = (0..n)
                .map(NodeId::from_index)
                .filter(|id| out.metrics.decided_at(*id).is_some_and(|s| s <= 8))
                .count();
            assert!(
                fast as f64 >= 0.9 * n as f64,
                "n={n}: only {fast}/{n} decided within 8 steps"
            );
        }
    }

    #[test]
    fn unknowing_nodes_learn_gstring() {
        let (h, pre) = harness(64, 0.7, 3);
        let out = h.run(&h.engine_sync(), 3, &mut NoAdversary);
        for (id, value) in &out.outputs {
            assert_eq!(value, &pre.gstring, "node {id} decided wrongly");
        }
        // Specifically check a node that started unknowing.
        let unknowing = (0..64)
            .map(NodeId::from_index)
            .find(|id| !pre.knows(*id))
            .expect("some node starts unknowing");
        assert_eq!(out.outputs[&unknowing], pre.gstring);
    }

    #[test]
    fn runs_replay_deterministically() {
        let (h, _) = harness(48, 0.75, 7);
        let a = h.run(&h.engine_sync(), 9, &mut NoAdversary);
        let b = h.run(&h.engine_sync(), 9, &mut NoAdversary);
        assert_eq!(a.all_decided_at, b.all_decided_at);
        assert_eq!(a.metrics.total_bits_sent(), b.metrics.total_bits_sent());
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn node_accessors_reflect_initial_state() {
        let (h, pre) = harness(32, 0.8, 4);
        let id = NodeId::from_index(0);
        let node = h.node(id);
        assert_eq!(node.candidates().len(), 1);
        assert_eq!(node.believed(), &pre.assignments[0]);
        assert_eq!(h.assignments().len(), 32);
        assert_eq!(h.config().n, 32);
    }

    #[test]
    #[should_panic(expected = "one candidate per node")]
    fn harness_rejects_wrong_assignment_count() {
        let cfg = AerConfig::recommended(32);
        let _ = AerHarness::new(cfg, vec![GString::zeroes(cfg.string_len)]);
    }

    #[test]
    fn crashed_nodes_recover_and_decide() {
        // The crash fault family end to end: a window knocks out 8 nodes
        // mid-run; with the checkpoint layer enabled they restore their
        // accepted/belief state, re-poll, state-sync via repair queries —
        // and the whole system still reaches unanimous agreement.
        let (mut h, pre) = harness(64, 0.75, 11);
        h.enable_recovery(fba_recovery::RecoveryConfig::default());
        let plan = "crash:[2..8]8"
            .parse::<fba_recovery::CrashSpec>()
            .unwrap()
            .resolve(64, 11)
            .unwrap();
        let mut engine = h.engine_sync();
        engine.crash = Some(plan.clone());
        let out = h.run(&engine, 11, &mut NoAdversary);
        assert!(out.all_decided(), "crashed nodes must reconverge");
        assert_eq!(out.unanimous(), Some(&pre.gstring));
        assert!(out.metrics.msgs_dropped() > 0, "the window really was dark");
        // Rejoin accounting sees every victim decided.
        let report = fba_recovery::rejoin_report(&plan, &out.metrics);
        assert!(report.all_rejoined());
        assert!(report.max_rejoin_steps().is_some());
    }

    #[test]
    fn recovery_layer_is_inert_without_crashes() {
        // Checkpointing consumes no randomness and sends nothing, so a
        // recovery-enabled run with no crash plan is bit-identical to a
        // plain run.
        let (h, _) = harness(48, 0.75, 7);
        let plain = h.run(&h.engine_sync(), 9, &mut NoAdversary);
        let (mut hr, _) = harness(48, 0.75, 7);
        hr.enable_recovery(fba_recovery::RecoveryConfig::default());
        let checked = hr.run(&hr.engine_sync(), 9, &mut NoAdversary);
        assert_eq!(plain.outputs, checked.outputs);
        assert_eq!(plain.all_decided_at, checked.all_decided_at);
        assert_eq!(plain.metrics, checked.metrics);
    }

    #[test]
    fn crashed_runs_replay_deterministically() {
        let (mut h, _) = harness(64, 0.75, 13);
        h.enable_recovery(fba_recovery::RecoveryConfig { cadence: 4 });
        let plan = "crash:[1..4]4;[6..9]4"
            .parse::<fba_recovery::CrashSpec>()
            .unwrap()
            .resolve(64, 13)
            .unwrap();
        let mut engine = h.engine_sync();
        engine.crash = Some(plan);
        let a = h.run(&engine, 13, &mut NoAdversary);
        let b = h.run(&engine, 13, &mut NoAdversary);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.all_decided_at, b.all_decided_at);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn chained_instances_over_shared_state_match_fresh_runs() {
        // The service-mode contract at the harness layer: running the
        // *same* deployment repeatedly over one persistent AerRunState and
        // EngineSession — identical workloads, so every quorum slot and
        // vote mask from instance k-1 recurs in instance k — must be
        // bit-identical to fresh-state runs. This only holds because
        // run_in_session resets the vote arena per instance.
        let (h, _) = harness(48, 0.75, 5);
        let state = h.run_state();
        let mut session = EngineSession::new(1);
        let engine = h.engine_sync();
        for seed in [5u64, 11, 5] {
            let mut adv = fba_sim::SilentAdversary::new(4);
            let chained = h.run_in_session(
                &engine,
                seed,
                77,
                &mut adv,
                &mut fba_sim::NullObserver,
                &state,
                &mut session,
            );
            let fresh_state = h.run_state();
            let mut fresh_session = EngineSession::new(1);
            let mut adv2 = fba_sim::SilentAdversary::new(4);
            let fresh = h.run_in_session(
                &engine,
                seed,
                77,
                &mut adv2,
                &mut fba_sim::NullObserver,
                &fresh_state,
                &mut fresh_session,
            );
            assert_eq!(chained.corrupt, fresh.corrupt);
            assert_eq!(chained.outputs, fresh.outputs);
            assert_eq!(chained.all_decided_at, fresh.all_decided_at);
            assert_eq!(
                chained.metrics.total_bits_sent(),
                fresh.metrics.total_bits_sent()
            );
        }
        // The persistent caches really were hit across instances: the
        // third run's lookups must not all be misses.
        let (hits, misses) = state.poll_cache_stats();
        assert!(
            hits > misses,
            "poll cache reuse: {hits} hits, {misses} misses"
        );
    }
}
