//! Running the almost-everywhere phase and distilling its outcome.

use std::collections::{BTreeMap, BTreeSet};

use fba_samplers::GString;
use fba_sim::{run_inspect, Adversary, EngineConfig, NodeId, RunOutcome};

use crate::precondition::Precondition;
use crate::protocol::{AeConfig, AeMsg, AeNode};

/// Distilled result of an almost-everywhere run: the majority string, who
/// knows it, and the raw run outcome for metric extraction.
#[derive(Clone, Debug)]
pub struct AeOutcome {
    /// The string held by the plurality of correct nodes.
    pub gstring: GString,
    /// Correct nodes holding `gstring`.
    pub knowing: BTreeSet<NodeId>,
    /// Fraction of *correct* nodes holding `gstring`.
    pub knowing_fraction: f64,
    /// The supreme committee, as agreed by the plurality of nodes that
    /// completed the tournament (used by the entropy experiment to
    /// attribute gstring bit slices to members).
    pub supreme_committee: Option<Vec<NodeId>>,
    /// The underlying simulator outcome.
    pub run: RunOutcome<GString, AeMsg>,
}

impl AeOutcome {
    /// Converts the outcome into the [`Precondition`] AER consumes:
    /// every node's output becomes its initial AER candidate.
    ///
    /// Corrupt nodes (which produced no output) are assigned the all-zero
    /// default — the AER adversary overrides their behaviour anyway.
    #[must_use]
    pub fn to_precondition(&self, n: usize, string_len: usize) -> Precondition {
        let assignments: Vec<GString> = (0..n)
            .map(|i| {
                self.run
                    .outputs
                    .get(&NodeId::from_index(i))
                    .cloned()
                    .unwrap_or_else(|| GString::zeroes(string_len))
            })
            .collect();
        Precondition {
            gstring: self.gstring,
            assignments,
            knowing: self.knowing.clone(),
        }
    }
}

/// Default engine configuration for the almost-everywhere phase.
#[must_use]
pub fn ae_engine(cfg: &AeConfig) -> EngineConfig {
    EngineConfig {
        max_steps: cfg.schedule_len() + 4,
        ..EngineConfig::sync(cfg.n)
    }
}

/// Runs the almost-everywhere phase under `adversary` and distils the
/// outcome.
///
/// # Panics
///
/// Panics if no correct node produced an output (the schedule guarantees
/// outputs, so this indicates an engine misconfiguration).
pub fn run_ae<A>(cfg: &AeConfig, seed: u64, adversary: &mut A) -> AeOutcome
where
    A: Adversary<AeMsg> + ?Sized,
{
    run_ae_with(cfg, seed, adversary, &BTreeSet::new(), 0)
}

/// Like [`run_ae`], but the nodes in `rigged` contribute the constant
/// `rigged_value` instead of private randomness — semi-honest committee
/// members biasing the bits they control. Used by the gstring-entropy
/// experiment validating the "`2/3 + ε` of gstring's bits are uniformly
/// random" precondition structure.
///
/// # Panics
///
/// Panics if no correct node produced an output.
pub fn run_ae_with<A>(
    cfg: &AeConfig,
    seed: u64,
    adversary: &mut A,
    rigged: &BTreeSet<NodeId>,
    rigged_value: u64,
) -> AeOutcome
where
    A: Adversary<AeMsg> + ?Sized,
{
    let engine = ae_engine(cfg);
    let mut committees: BTreeMap<Vec<NodeId>, usize> = BTreeMap::new();
    let run = run_inspect::<AeNode, A, _, _>(
        &engine,
        seed,
        adversary,
        |id| {
            if rigged.contains(&id) {
                AeNode::new_rigged(*cfg, id, rigged_value)
            } else {
                AeNode::new(*cfg, id)
            }
        },
        |_, node| {
            if let Some(c) = node.supreme_committee() {
                *committees.entry(c).or_default() += 1;
            }
        },
    );
    let supreme_committee = committees
        .into_iter()
        .max_by_key(|&(_, count)| count)
        .map(|(c, _)| c);
    let mut votes: BTreeMap<GString, usize> = BTreeMap::new();
    for value in run.outputs.values() {
        *votes.entry(*value).or_default() += 1;
    }
    let gstring = votes
        .into_iter()
        .max_by_key(|&(_, count)| count)
        .map(|(value, _)| value)
        .expect("at least one correct node must produce an output");
    let knowing: BTreeSet<NodeId> = run
        .outputs
        .iter()
        .filter(|(_, v)| **v == gstring)
        .map(|(id, _)| *id)
        .collect();
    let correct = run.outputs.len().max(1);
    AeOutcome {
        knowing_fraction: knowing.len() as f64 / correct as f64,
        gstring,
        knowing,
        supreme_committee,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::{NoAdversary, SilentAdversary};

    #[test]
    fn fault_free_outcome_knows_everywhere() {
        let cfg = AeConfig::recommended(64);
        let out = run_ae(&cfg, 3, &mut NoAdversary);
        assert_eq!(out.knowing.len(), 64);
        assert!((out.knowing_fraction - 1.0).abs() < 1e-12);
        assert_eq!(out.gstring.len_bits(), cfg.string_len);
    }

    #[test]
    fn outcome_converts_to_precondition() {
        let cfg = AeConfig::recommended(64);
        let mut adv = SilentAdversary::new(8);
        let out = run_ae(&cfg, 4, &mut adv);
        let pre = out.to_precondition(64, cfg.string_len);
        assert_eq!(pre.assignments.len(), 64);
        assert_eq!(pre.gstring, out.gstring);
        // Knowing nodes' assignments match gstring.
        for id in &pre.knowing {
            assert_eq!(pre.assignments[id.index()], pre.gstring);
        }
        // The knowing fraction satisfies the paper's requirement.
        assert!(out.knowing_fraction > 0.75);
    }

    #[test]
    fn supreme_committee_is_reported_and_agreed() {
        let cfg = AeConfig::recommended(128);
        let out = run_ae(&cfg, 6, &mut NoAdversary);
        let committee = out.supreme_committee.expect("committee known fault-free");
        assert_eq!(committee.len(), cfg.committee_size);
        assert!(committee.iter().all(|id| id.index() < 128));
    }

    #[test]
    fn rigged_members_bias_only_their_own_slices() {
        use crate::protocol::AeNode;
        let cfg = AeConfig::recommended(64);
        // Rig every node: the gstring becomes fully deterministic — the
        // concatenation of the zero-contribution slice pattern.
        let rigged: BTreeSet<NodeId> = (0..64).map(NodeId::from_index).collect();
        let out = run_ae_with(&cfg, 7, &mut NoAdversary, &rigged, 0);
        let committee = out.supreme_committee.expect("committee known");
        let per = cfg.string_len.div_ceil(committee.len());
        let slice = AeNode::contribution_bits(0, per);
        // Every slice of gstring equals the known zero pattern.
        for (m, _) in committee.iter().enumerate() {
            for (j, &expected) in slice.iter().enumerate().take(per) {
                let idx = m * per + j;
                if idx >= cfg.string_len {
                    break;
                }
                assert_eq!(
                    out.gstring.bit(idx),
                    expected,
                    "bit {idx} should be adversary-determined"
                );
            }
        }
        // Agreement still holds: bias is not a safety attack.
        assert!((out.knowing_fraction - 1.0).abs() < 1e-12);

        // Unrigged run from the same seed differs (entropy present).
        let honest = run_ae(&cfg, 7, &mut NoAdversary);
        assert_ne!(honest.gstring, out.gstring);
    }

    #[test]
    fn amortized_communication_is_polylogarithmic() {
        // bits/node must grow far slower than √n.
        let mut per_node = Vec::new();
        for n in [64usize, 256, 1024] {
            let cfg = AeConfig::recommended(n);
            let out = run_ae(&cfg, 5, &mut NoAdversary);
            per_node.push(out.run.metrics.amortized_bits());
        }
        let growth = per_node[2] / per_node[0]; // n ×16
        assert!(
            growth < 8.0,
            "amortized bits grew ×{growth:.1} over a ×16 size increase (√n would be ×4 on each hop, polylog must be less)"
        );
    }
}
