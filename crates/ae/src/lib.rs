//! # fba-ae — the almost-everywhere agreement substrate
//!
//! *Fast Byzantine Agreement* (PODC 2013) composes its AER protocol with
//! an almost-everywhere agreement phase "along the lines of KSSV06"
//! whose contract is (§2.1): more than 3/4 of the correct nodes end up
//! knowing one common string `gstring` of `c·log n` bits, at least
//! `2/3 + ε` of whose bits are uniformly random — all with
//! poly-logarithmic per-node communication and poly-logarithmic rounds.
//!
//! This crate provides that contract twice over:
//!
//! * [`AeNode`]/[`run_ae`] — a real message-passing committee-tree
//!   protocol (leaf randomness → tournament ascent → supreme committee →
//!   diffusion); see the [`AeNode`] docs and DESIGN.md
//!   substitution 3 for its relation to the full KSSV06 construction.
//! * [`Precondition::synthetic`] — direct injection of the postcondition,
//!   used to isolate AER in experiments exactly the way the paper's
//!   analysis does (including worst-case variants the real protocol
//!   would rarely produce).
//!
//! ```
//! use fba_ae::{run_ae, AeConfig};
//! use fba_sim::NoAdversary;
//!
//! let cfg = AeConfig::recommended(64);
//! let outcome = run_ae(&cfg, 42, &mut NoAdversary);
//! assert!(outcome.knowing_fraction > 0.75);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod harness;
mod precondition;
mod protocol;
pub mod tree;

pub use harness::{ae_engine, run_ae, run_ae_with, AeOutcome};
pub use precondition::{random_fraction, Precondition, UnknowingAssignment};
pub use protocol::{AeConfig, AeMsg, AeNode};
