//! Committee-tree geometry and representative sampling.
//!
//! The almost-everywhere substrate arranges the `n` nodes as leaves of a
//! binary tournament tree (the structure of KSSV06): level-0 groups are
//! index-contiguous blocks of `c = Θ(log n)` nodes; the level-`k` range of
//! index `j` covers `c·2^k` nodes. Each tree node has an agreed 64-bit
//! *group value* distilled from its subtree's randomness, and a
//! *representative committee* of `c` nodes sampled from its range with the
//! group value as seed — so representatives are unpredictable until the
//! subtree's randomness is fixed, and any claim "I am a representative of
//! `(k, j)` with value `v`" is verifiable by re-sampling.

use fba_sim::rng::mix;
use fba_sim::NodeId;

use fba_samplers::{tags, Sampler};

/// Inclusive-exclusive index range of tree node `(level, idx)`.
///
/// Returns an empty range when `idx` is out of bounds for the level.
#[must_use]
pub fn range(n: usize, c: usize, level: u32, idx: u32) -> std::ops::Range<usize> {
    let block = c << level;
    let lo = (idx as usize) * block;
    let hi = (lo + block).min(n);
    lo..hi.max(lo)
}

/// Number of tree nodes at `level`.
#[must_use]
pub fn nodes_at_level(n: usize, c: usize, level: u32) -> u32 {
    let block = c << level;
    (n.div_ceil(block)) as u32
}

/// The root level: the smallest `L` with a single range covering all of
/// `[n]`.
#[must_use]
pub fn root_level(n: usize, c: usize) -> u32 {
    let mut level = 0;
    while nodes_at_level(n, c, level) > 1 {
        level += 1;
    }
    level
}

/// Combines two child group values into the parent's value.
///
/// For a childless right side (odd trees) pass `right = None`.
#[must_use]
pub fn combine(seed: u64, left: u64, right: Option<u64>) -> u64 {
    match right {
        Some(r) => mix(seed, &[left, r]),
        None => mix(seed, &[left, 0x5013]),
    }
}

/// The representative committee of tree node `(level, idx)` whose agreed
/// group value is `value`: `c` nodes sampled from the node's range, seeded
/// by the value itself.
///
/// Level-0 committees are the whole leaf group (no sampling needed).
#[must_use]
pub fn reps(n: usize, c: usize, seed: u64, level: u32, idx: u32, value: u64) -> Vec<NodeId> {
    let r = range(n, c, level, idx);
    if r.is_empty() {
        return Vec::new();
    }
    if level == 0 {
        return r.map(NodeId::from_index).collect();
    }
    let span = r.len();
    let take = c.min(span);
    let sampler = Sampler::new(
        mix(seed, &[u64::from(level), u64::from(idx)]),
        tags::COMMITTEE,
        span,
        take,
    );
    let mut chosen: Vec<NodeId> = sampler
        .set_for(value)
        .into_iter()
        .map(|local| NodeId::from_index(r.start + local.index()))
        .collect();
    chosen.sort_unstable();
    chosen
}

/// Whether `who` is a representative of `(level, idx)` under `value`.
#[must_use]
pub fn is_rep(
    n: usize,
    c: usize,
    seed: u64,
    level: u32,
    idx: u32,
    value: u64,
    who: NodeId,
) -> bool {
    reps(n, c, seed, level, idx, value).contains(&who)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_each_level() {
        let n = 100;
        let c = 8;
        for level in 0..=root_level(n, c) {
            let mut covered = 0;
            for idx in 0..nodes_at_level(n, c, level) {
                let r = range(n, c, level, idx);
                assert_eq!(r.start, covered, "ranges must be contiguous");
                covered = r.end;
            }
            assert_eq!(covered, n, "level {level} must cover all nodes");
        }
    }

    #[test]
    fn root_level_covers_everything() {
        for (n, c) in [(16, 4), (100, 8), (1000, 12), (7, 8)] {
            let l = root_level(n, c);
            assert_eq!(nodes_at_level(n, c, l), 1);
            assert_eq!(range(n, c, l, 0), 0..n);
            if l > 0 {
                assert!(nodes_at_level(n, c, l - 1) > 1);
            }
        }
    }

    #[test]
    fn tiny_system_has_zero_levels() {
        assert_eq!(root_level(6, 8), 0);
        assert_eq!(range(6, 8, 0, 0), 0..6);
    }

    #[test]
    fn combine_depends_on_both_children() {
        let a = combine(1, 10, Some(20));
        assert_ne!(a, combine(1, 11, Some(20)));
        assert_ne!(a, combine(1, 10, Some(21)));
        assert_ne!(a, combine(2, 10, Some(20)));
        assert_ne!(combine(1, 10, None), combine(1, 10, Some(0)));
    }

    #[test]
    fn leaf_reps_are_the_whole_group() {
        let n = 40;
        let c = 8;
        let r = reps(n, c, 7, 0, 2, 999);
        let expected: Vec<NodeId> = (16..24).map(NodeId::from_index).collect();
        assert_eq!(r, expected);
    }

    #[test]
    fn internal_reps_are_sampled_from_the_range_and_value_dependent() {
        let n = 128;
        let c = 8;
        let a = reps(n, c, 7, 2, 1, 111);
        let b = reps(n, c, 7, 2, 1, 112);
        assert_eq!(a.len(), c);
        let range = range(n, c, 2, 1);
        assert!(a.iter().all(|id| range.contains(&id.index())));
        assert_ne!(a, b, "different values must sample different committees");
        assert_eq!(a, reps(n, c, 7, 2, 1, 111), "deterministic");
    }

    #[test]
    fn partial_edge_ranges_yield_smaller_committees() {
        let n = 70;
        let c = 8;
        // Level 2 blocks of 32: ranges [0,32), [32,64), [64,70).
        let r = reps(n, c, 7, 2, 2, 5);
        assert_eq!(r.len(), 6, "committee capped by range size");
        assert!(r.iter().all(|id| (64..70).contains(&id.index())));
    }

    #[test]
    fn is_rep_matches_reps() {
        let n = 128;
        let c = 8;
        let committee = reps(n, c, 3, 1, 0, 42);
        for i in 0..n {
            let id = NodeId::from_index(i);
            assert_eq!(is_rep(n, c, 3, 1, 0, 42, id), committee.contains(&id));
        }
    }
}
