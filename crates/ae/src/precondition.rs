//! The almost-everywhere precondition AER consumes.
//!
//! §2.1 of the paper: AER assumes that a `1/2 + ε` fraction of the nodes
//! are both correct and know a common string `gstring` (equivalently, all
//! but a `1/4` fraction of the *correct* nodes know it), where `gstring`
//! is `c·log n` bits long and at least `2/3 + ε` of its bits are uniformly
//! random. The paper obtains this state from the protocol of KSSV06;
//! this crate provides both a message-passing implementation of that
//! contract ([`crate::protocol`]) and the *synthetic injector* below, used
//! to set up AER-only experiments exactly the way the paper's analysis
//! isolates AER.

use std::collections::BTreeSet;

use fba_samplers::GString;
use fba_sim::rng::{derive_rng, TAG_WORKLOAD};
use fba_sim::NodeId;
use rand::seq::index::sample;
use rand::Rng;

/// How the nodes that do *not* know `gstring` are initialised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknowingAssignment {
    /// Each unknowing node holds an independent uniformly random string —
    /// the benign outcome of a partially failed almost-everywhere phase.
    RandomPerNode,
    /// Every unknowing node holds the *same* adversary-chosen string — the
    /// worst case for AER's majority filters, because the bogus candidates
    /// form a coherent block.
    SharedAdversarial,
    /// Unknowing nodes hold the all-zeroes default value.
    DefaultValue,
}

/// A fully materialised AER starting state: who knows `gstring`, and what
/// everyone's initial candidate is.
#[derive(Clone, Debug)]
pub struct Precondition {
    /// The common string the knowing nodes share.
    pub gstring: GString,
    /// Initial candidate `s_x` of every node (indexed by node id).
    pub assignments: Vec<GString>,
    /// The nodes assigned `gstring`.
    pub knowing: BTreeSet<NodeId>,
}

impl Precondition {
    /// Builds a synthetic precondition for `n` nodes.
    ///
    /// * `string_len` — length of `gstring` in bits (`c·log n`);
    /// * `knowledge_fraction` — fraction of all nodes assigned `gstring`
    ///   (the paper requires this to exceed `1/2 + ε` plus the corruption
    ///   the adversary will claim from it);
    /// * `mode` — what the remaining nodes hold;
    /// * `seed` — workload seed (deterministic).
    ///
    /// The generated `gstring` has the paper's bit structure: a `2/3 + ε`
    /// uniformly random prefix and an adversarial remainder.
    ///
    /// # Panics
    ///
    /// Panics if `knowledge_fraction` is outside `[0, 1]` or `n == 0`.
    #[must_use]
    pub fn synthetic(
        n: usize,
        string_len: usize,
        knowledge_fraction: f64,
        mode: UnknowingAssignment,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one node");
        assert!(
            (0.0..=1.0).contains(&knowledge_fraction),
            "knowledge fraction {knowledge_fraction} outside [0, 1]"
        );
        let mut rng = derive_rng(seed, &[TAG_WORKLOAD]);
        // 2/3 + ε uniform bits, adversarial remainder (ε = 1/24 here; the
        // exact split only matters for Lemma 5's union bound).
        let gstring = GString::mixed(string_len, 2.0 / 3.0 + 1.0 / 24.0, true, &mut rng);

        let k = ((n as f64) * knowledge_fraction).round() as usize;
        let knowing: BTreeSet<NodeId> = sample(&mut rng, n, k.min(n))
            .into_iter()
            .map(NodeId::from_index)
            .collect();

        let shared_bad = GString::random(string_len, &mut rng);
        let assignments: Vec<GString> = (0..n)
            .map(|i| {
                let id = NodeId::from_index(i);
                if knowing.contains(&id) {
                    gstring
                } else {
                    match mode {
                        UnknowingAssignment::RandomPerNode => GString::random(string_len, &mut rng),
                        UnknowingAssignment::SharedAdversarial => shared_bad,
                        UnknowingAssignment::DefaultValue => GString::zeroes(string_len),
                    }
                }
            })
            .collect();

        Precondition {
            gstring,
            assignments,
            knowing,
        }
    }

    /// System size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.assignments.len()
    }

    /// Fraction of all nodes that know `gstring`.
    #[must_use]
    pub fn knowing_fraction(&self) -> f64 {
        self.knowing.len() as f64 / self.n() as f64
    }

    /// Whether node `x` was assigned `gstring`.
    #[must_use]
    pub fn knows(&self, x: NodeId) -> bool {
        self.knowing.contains(&x)
    }

    /// Checks the paper's §2.1 assumption against a prospective corrupt
    /// set: more than `1/2 + ε` of all nodes must be correct *and*
    /// knowing.
    #[must_use]
    pub fn satisfies_assumption(&self, corrupt: &BTreeSet<NodeId>, epsilon: f64) -> bool {
        let correct_knowing = self
            .knowing
            .iter()
            .filter(|id| !corrupt.contains(id))
            .count();
        (correct_knowing as f64) > (0.5 + epsilon) * self.n() as f64
    }
}

/// Draws a uniformly random knowledge fraction scenario for randomized
/// property tests: `n`, fraction in `[lo, hi]`.
#[must_use]
pub fn random_fraction(lo: f64, hi: f64, seed: u64) -> f64 {
    let mut rng = derive_rng(seed, &[TAG_WORKLOAD, 0x66]);
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_assigns_requested_fraction() {
        let p = Precondition::synthetic(100, 40, 0.8, UnknowingAssignment::RandomPerNode, 3);
        assert_eq!(p.n(), 100);
        assert_eq!(p.knowing.len(), 80);
        assert!((p.knowing_fraction() - 0.8).abs() < 1e-9);
        for id in &p.knowing {
            assert_eq!(p.assignments[id.index()], p.gstring);
            assert!(p.knows(*id));
        }
    }

    #[test]
    fn synthetic_is_deterministic() {
        let a = Precondition::synthetic(64, 32, 0.75, UnknowingAssignment::SharedAdversarial, 9);
        let b = Precondition::synthetic(64, 32, 0.75, UnknowingAssignment::SharedAdversarial, 9);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.gstring, b.gstring);
        assert_eq!(a.knowing, b.knowing);
    }

    #[test]
    fn unknowing_modes_differ() {
        let shared =
            Precondition::synthetic(64, 32, 0.5, UnknowingAssignment::SharedAdversarial, 9);
        let unknowing: Vec<_> = (0..64)
            .map(NodeId::from_index)
            .filter(|id| !shared.knows(*id))
            .collect();
        // All unknowing nodes share one bogus string.
        let first = &shared.assignments[unknowing[0].index()];
        assert!(unknowing
            .iter()
            .all(|id| &shared.assignments[id.index()] == first));
        assert_ne!(first, &shared.gstring);

        let random = Precondition::synthetic(64, 32, 0.5, UnknowingAssignment::RandomPerNode, 9);
        let a = &random.assignments[unknowing[0].index()];
        let b = &random.assignments[unknowing[1].index()];
        assert_ne!(a, b, "independent random strings should differ");

        let default = Precondition::synthetic(64, 32, 0.5, UnknowingAssignment::DefaultValue, 9);
        assert_eq!(
            default.assignments[unknowing[0].index()],
            GString::zeroes(32)
        );
    }

    #[test]
    fn gstring_has_adversarial_suffix_structure() {
        let p = Precondition::synthetic(64, 48, 0.8, UnknowingAssignment::RandomPerNode, 4);
        // Bits beyond ceil((2/3 + 1/24)·48) = 34 are the adversarial fill.
        for i in 34..48 {
            assert!(p.gstring.bit(i));
        }
    }

    #[test]
    fn satisfies_assumption_accounts_for_corruption() {
        let p = Precondition::synthetic(100, 40, 0.8, UnknowingAssignment::RandomPerNode, 3);
        let empty = BTreeSet::new();
        assert!(p.satisfies_assumption(&empty, 1.0 / 12.0));
        // Corrupt 30 knowing nodes: 50 correct knowing left, not > 58.3.
        let corrupt: BTreeSet<NodeId> = p.knowing.iter().copied().take(30).collect();
        assert!(!p.satisfies_assumption(&corrupt, 1.0 / 12.0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn synthetic_rejects_bad_fraction() {
        let _ = Precondition::synthetic(10, 16, 1.5, UnknowingAssignment::DefaultValue, 0);
    }

    #[test]
    fn random_fraction_in_range() {
        for seed in 0..20 {
            let f = random_fraction(0.6, 0.9, seed);
            assert!((0.6..=0.9).contains(&f));
        }
    }
}
