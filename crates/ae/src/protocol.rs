//! The almost-everywhere agreement protocol: a committee-tree tournament
//! in the style of KSSV06.
//!
//! Phases (synchronous rounds; one phase = two steps so every message is
//! delivered before it is consumed):
//!
//! 1. **Leaf randomness** — each leaf group (contiguous block of
//!    `c = Θ(log n)` nodes) agrees on a *group value*: members broadcast a
//!    private random contribution, echo what they received, and take
//!    per-sender majorities (one echo round suffices for consistency when
//!    the group has an honest majority).
//! 2. **Tournament ascent** — sibling subtrees exchange their group
//!    values: the *representative committee* of each side (sampled from
//!    the side's range, seeded by its own agreed value, hence verifiable
//!    and unpredictable until that value exists) broadcasts the value to
//!    the sibling's range; receivers verify each claimant against the
//!    claimed value and take majorities. Parent values combine both
//!    children's values, accumulating entropy level by level.
//! 3. **Supreme committee** — the root committee (sampled from all of
//!    `[n]`, seeded by the root value) runs the leaf procedure among
//!    itself; `gstring` is the concatenation of its members'
//!    contributions, so at least a `1 − t/n ≥ 2/3 + ε` fraction of its
//!    bits are uniformly random — exactly the §2.1 precondition.
//! 4. **Diffusion** — the supreme committee broadcasts `gstring` to every
//!    node; each node verifies claimants against its own root value and
//!    takes a majority. Nodes in subtrees the adversary controlled end up
//!    with a fallback random string — they are the "almost everywhere"
//!    remainder AER repairs.
//!
//! See DESIGN.md substitution 3 for what this deliberately simplifies
//! relative to the full KSSV06 construction (notably: claim verification
//! is value-seeded rather than grinding-resistant).

use std::collections::BTreeMap;

use fba_samplers::GString;
use fba_sim::fxhash::FxHashMap;
use fba_sim::rng::{mix, splitmix64};
use fba_sim::{Context, NodeId, Protocol, Step, WireSize};
use rand::Rng;

use crate::tree;

/// Parameters of the almost-everywhere phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AeConfig {
    /// System size.
    pub n: usize,
    /// Committee size `c = Θ(log n)`.
    pub committee_size: usize,
    /// Length of the produced `gstring`, in bits.
    pub string_len: usize,
    /// Public sampler seed shared by all nodes.
    pub sampler_seed: u64,
}

impl AeConfig {
    /// Defaults matching `fba-core`-style deployments: committee size
    /// `⌈3·ln n⌉`, gstring of `4·log₂ n` bits.
    ///
    /// # Panics
    ///
    /// Panics if `n < 8`.
    #[must_use]
    pub fn recommended(n: usize) -> Self {
        assert!(n >= 8, "almost-everywhere phase needs n ≥ 8");
        AeConfig {
            n,
            committee_size: fba_samplers::default_quorum_size(n, 3.0),
            string_len: fba_samplers::gstring_len(n, 4),
            sampler_seed: 0xae5eed,
        }
    }

    /// The root level of the committee tree.
    #[must_use]
    pub fn root_level(&self) -> u32 {
        tree::root_level(self.n, self.committee_size)
    }

    /// Total steps the protocol needs (decision step of non-committee
    /// nodes).
    #[must_use]
    pub fn schedule_len(&self) -> Step {
        10 + 2 * Step::from(self.root_level())
    }
}

/// Almost-everywhere protocol messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AeMsg {
    /// A random contribution within a committee (`root = false`: leaf
    /// group; `root = true`: supreme committee).
    Contribute {
        /// Scope flag.
        root: bool,
        /// The contribution.
        value: u64,
    },
    /// Echo of received contributions for consistency.
    Echo {
        /// Scope flag.
        root: bool,
        /// The (sender, value) pairs the echoer saw.
        pairs: Vec<(NodeId, u64)>,
    },
    /// A representative's claim of its subtree's agreed group value.
    Gv {
        /// Tree level of the claimed subtree.
        level: u32,
        /// Index of the claimed subtree at that level.
        idx: u32,
        /// The claimed group value.
        value: u64,
    },
    /// The supreme committee's final string.
    Diffuse {
        /// The agreed `gstring`.
        value: GString,
    },
}

impl WireSize for AeMsg {
    fn wire_bits(&self) -> u64 {
        const KIND: u64 = 2;
        match self {
            AeMsg::Contribute { .. } => KIND + 1 + 64,
            AeMsg::Echo { pairs, .. } => KIND + 1 + pairs.len() as u64 * (32 + 64),
            AeMsg::Gv { .. } => KIND + 32 + 32 + 64,
            AeMsg::Diffuse { value } => KIND + value.wire_bits(),
        }
    }
}

/// Strict majority threshold for a committee of `len` members.
fn maj(len: usize) -> usize {
    len / 2 + 1
}

/// One participant of the almost-everywhere phase.
#[derive(Clone, Debug)]
pub struct AeNode {
    cfg: AeConfig,
    id: NodeId,
    /// Rigged randomness: contribute this constant instead of a private
    /// random draw (models corrupt-but-compliant committee members that
    /// bias the bits they control — the reason the paper's precondition
    /// only promises `2/3 + ε` uniformly random bits).
    rigged: Option<u64>,
    /// Own leaf contribution (drawn at start).
    contribution: u64,
    /// Own root contribution (drawn at start; used only if sampled into
    /// the supreme committee).
    root_contribution: u64,
    /// Leaf-scope received contributions.
    contribs: BTreeMap<NodeId, u64>,
    /// Leaf-scope echoes.
    echoes: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
    /// Root-scope received contributions.
    root_contribs: BTreeMap<NodeId, u64>,
    /// Root-scope echoes.
    root_echoes: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
    /// Agreed group values along this node's lineage, by level.
    lineage: Vec<Option<u64>>,
    /// Sibling value claims: (level, idx) → sender → claimed value.
    claims: FxHashMap<(u32, u32), BTreeMap<NodeId, u64>>,
    /// Diffusion claims: sender → gstring.
    diffuse_claims: BTreeMap<NodeId, GString>,
    /// Final output.
    output: Option<GString>,
}

impl AeNode {
    /// Builds the node.
    #[must_use]
    pub fn new(cfg: AeConfig, id: NodeId) -> Self {
        let levels = cfg.root_level() as usize + 1;
        AeNode {
            cfg,
            id,
            rigged: None,
            contribution: 0,
            root_contribution: 0,
            contribs: BTreeMap::new(),
            echoes: BTreeMap::new(),
            root_contribs: BTreeMap::new(),
            root_echoes: BTreeMap::new(),
            lineage: vec![None; levels],
            claims: FxHashMap::default(),
            diffuse_claims: BTreeMap::new(),
            output: None,
        }
    }

    /// Builds a node whose contributions are the fixed `value` instead of
    /// private randomness: a semi-honest biasing member. It follows the
    /// protocol otherwise, so agreement is unaffected — only the entropy
    /// of the bits it contributes is.
    #[must_use]
    pub fn new_rigged(cfg: AeConfig, id: NodeId, value: u64) -> Self {
        let mut node = Self::new(cfg, id);
        node.rigged = Some(value);
        node
    }

    /// The bit slice a committee member's contribution `value` expands to
    /// (`per` bits starting at slice offset) — exposed so experiments can
    /// compute which gstring bits a rigged contributor controls.
    #[must_use]
    pub fn contribution_bits(value: u64, per: usize) -> Vec<bool> {
        (0..per)
            .map(|j| {
                let word = splitmix64(value ^ (j as u64 / 64).wrapping_mul(0x9e37));
                (word >> (j % 64)) & 1 == 1
            })
            .collect()
    }

    fn c(&self) -> usize {
        self.cfg.committee_size
    }

    /// This node's subtree index at `level`.
    fn idx_at(&self, level: u32) -> u32 {
        (self.id.index() / (self.c() << level)) as u32
    }

    fn leaf_members(&self) -> Vec<NodeId> {
        tree::range(self.cfg.n, self.c(), 0, self.idx_at(0))
            .map(NodeId::from_index)
            .collect()
    }

    /// Per-sender majority over echoes: the consistent contribution set.
    fn consistent(
        echoes: &BTreeMap<NodeId, Vec<(NodeId, u64)>>,
        members: &[NodeId],
    ) -> Vec<(NodeId, u64)> {
        let threshold = maj(members.len());
        let mut out = Vec::new();
        for &sender in members {
            let mut votes: BTreeMap<u64, usize> = BTreeMap::new();
            for pairs in echoes.values() {
                for (s, v) in pairs {
                    if *s == sender {
                        *votes.entry(*v).or_default() += 1;
                    }
                }
            }
            if let Some((&value, &count)) = votes.iter().max_by_key(|(_, &c)| c) {
                if count >= threshold {
                    out.push((sender, value));
                }
            }
        }
        out
    }

    /// Folds a consistent contribution set into a group value.
    fn fold(&self, pairs: &[(NodeId, u64)]) -> u64 {
        let mut acc = mix(self.cfg.sampler_seed, &[0xf01d]);
        for (sender, value) in pairs {
            acc = mix(acc, &[sender.index() as u64, *value]);
        }
        acc
    }

    /// Majority value among verified sibling claims for `(level, idx)`.
    fn sibling_value(&self, level: u32, idx: u32) -> Option<u64> {
        let claims = self.claims.get(&(level, idx))?;
        let range_len = tree::range(self.cfg.n, self.c(), level, idx).len();
        let committee = self.c().min(range_len);
        let mut votes: BTreeMap<u64, usize> = BTreeMap::new();
        for (&sender, &value) in claims {
            // Verify the claimant against the value it claims.
            if tree::is_rep(
                self.cfg.n,
                self.c(),
                self.cfg.sampler_seed,
                level,
                idx,
                value,
                sender,
            ) {
                *votes.entry(value).or_default() += 1;
            }
        }
        votes
            .into_iter()
            .filter(|&(_, count)| count >= maj(committee))
            .max_by_key(|&(_, count)| count)
            .map(|(value, _)| value)
    }

    /// Whether this node sits in the representative committee of
    /// `(level, idx)` given the agreed value.
    fn i_am_rep(&self, level: u32, value: u64) -> bool {
        tree::is_rep(
            self.cfg.n,
            self.c(),
            self.cfg.sampler_seed,
            level,
            self.idx_at(level),
            value,
            self.id,
        )
    }

    /// The supreme committee under this node's root value (known once the
    /// tournament ascent completed; `None` before that or on a broken
    /// lineage). Exposed for the gstring-entropy experiment.
    #[must_use]
    pub fn supreme_committee(&self) -> Option<Vec<NodeId>> {
        self.root_committee()
    }

    /// The supreme committee under this node's root value.
    fn root_committee(&self) -> Option<Vec<NodeId>> {
        let root = self.cfg.root_level();
        let value = self.lineage[root as usize]?;
        Some(tree::reps(
            self.cfg.n,
            self.c(),
            self.cfg.sampler_seed,
            root,
            0,
            value,
        ))
    }

    /// Builds `gstring` from the supreme committee's consistent
    /// contributions: each member's contribution supplies an equal slice
    /// of bits (hash-extended), so corrupt members control at most their
    /// own slices.
    fn build_gstring(&self, pairs: &[(NodeId, u64)], committee: &[NodeId]) -> GString {
        let len = self.cfg.string_len;
        let per = len.div_ceil(committee.len().max(1));
        let by_sender: BTreeMap<NodeId, u64> = pairs.iter().copied().collect();
        let mut bits = Vec::with_capacity(len);
        'outer: for &member in committee {
            let value = by_sender.get(&member).copied().unwrap_or(0);
            for j in 0..per {
                let word = splitmix64(value ^ (j as u64 / 64).wrapping_mul(0x9e37));
                bits.push((word >> (j % 64)) & 1 == 1);
                if bits.len() == len {
                    break 'outer;
                }
            }
        }
        while bits.len() < len {
            bits.push(false);
        }
        GString::from_bits(&bits)
    }

    fn decide_from_diffusion(&mut self, ctx: &mut Context<'_, AeMsg>) {
        if self.output.is_some() {
            return;
        }
        let decided = self.root_committee().and_then(|committee| {
            let threshold = maj(committee.len());
            let mut votes: BTreeMap<GString, usize> = BTreeMap::new();
            for (sender, value) in &self.diffuse_claims {
                if committee.contains(sender) {
                    *votes.entry(*value).or_default() += 1;
                }
            }
            votes
                .into_iter()
                .filter(|&(_, count)| count >= threshold)
                .max_by_key(|&(_, count)| count)
                .map(|(value, _)| value)
        });
        self.output = Some(match decided {
            Some(g) => g,
            // Fallback: an arbitrary private candidate — this node is part
            // of the "almost everywhere" remainder.
            None => {
                let mut bits = vec![false; self.cfg.string_len];
                for b in &mut bits {
                    *b = ctx.rng().gen();
                }
                GString::from_bits(&bits)
            }
        });
    }
}

impl Protocol for AeNode {
    type Msg = AeMsg;
    type Output = GString;

    fn on_start(&mut self, ctx: &mut Context<'_, AeMsg>) {
        self.contribution = self.rigged.unwrap_or_else(|| ctx.rng().gen());
        self.root_contribution = self.rigged.unwrap_or_else(|| ctx.rng().gen());
        self.contribs.insert(self.id, self.contribution);
        self.root_contribs.insert(self.id, self.root_contribution);
        let members = self.leaf_members();
        for &m in &members {
            if m != self.id {
                ctx.send(
                    m,
                    AeMsg::Contribute {
                        root: false,
                        value: self.contribution,
                    },
                );
            }
        }
    }

    fn on_step(&mut self, ctx: &mut Context<'_, AeMsg>) {
        let step = ctx.step();
        let root = self.cfg.root_level();
        let c = self.c();
        match step {
            2 => {
                // Leaf echo.
                let pairs: Vec<(NodeId, u64)> =
                    self.contribs.iter().map(|(&s, &v)| (s, v)).collect();
                for m in self.leaf_members() {
                    if m != self.id {
                        ctx.send(
                            m,
                            AeMsg::Echo {
                                root: false,
                                pairs: pairs.clone(),
                            },
                        );
                    }
                }
            }
            s if s >= 4 && s % 2 == 0 && (s - 4) / 2 <= Step::from(root) => {
                let level = ((s - 4) / 2) as u32;
                // Compute the agreed value at `level`.
                let value = if level == 0 {
                    let members = self.leaf_members();
                    let mut echoes = self.echoes.clone();
                    // Our own observation counts as an echo.
                    echoes.insert(
                        self.id,
                        self.contribs.iter().map(|(&a, &b)| (a, b)).collect(),
                    );
                    let consistent = Self::consistent(&echoes, &members);
                    Some(self.fold(&consistent))
                } else {
                    let child_level = level - 1;
                    let my_child_idx = self.idx_at(child_level);
                    let parent_idx = my_child_idx / 2;
                    let left_idx = parent_idx * 2;
                    let right_idx = left_idx + 1;
                    let own = self.lineage[child_level as usize];
                    let sibling_exists =
                        right_idx < tree::nodes_at_level(self.cfg.n, c, child_level);
                    own.map(|own_value| {
                        if !sibling_exists {
                            tree::combine(self.cfg.sampler_seed, own_value, None)
                        } else {
                            let (left, right) = if my_child_idx == left_idx {
                                (Some(own_value), self.sibling_value(child_level, right_idx))
                            } else {
                                (self.sibling_value(child_level, left_idx), Some(own_value))
                            };
                            match (left, right) {
                                (Some(l), Some(r)) => {
                                    tree::combine(self.cfg.sampler_seed, l, Some(r))
                                }
                                // Missing sibling majority: lineage broken.
                                _ => tree::combine(
                                    self.cfg.sampler_seed,
                                    left.or(right).unwrap_or(0),
                                    Some(0xdead),
                                ),
                            }
                        }
                    })
                };
                self.lineage[level as usize] = value;

                let Some(value) = value else { return };
                if level < root {
                    // Broadcast our subtree's value to the sibling range.
                    let my_idx = self.idx_at(level);
                    let sibling = my_idx ^ 1;
                    if sibling < tree::nodes_at_level(self.cfg.n, c, level)
                        && self.i_am_rep(level, value)
                    {
                        for i in tree::range(self.cfg.n, c, level, sibling) {
                            ctx.send(
                                NodeId::from_index(i),
                                AeMsg::Gv {
                                    level,
                                    idx: my_idx,
                                    value,
                                },
                            );
                        }
                    }
                } else {
                    // Root reached: supreme committee runs its own
                    // contribute round.
                    if let Some(committee) = self.root_committee() {
                        if committee.contains(&self.id) {
                            for &m in &committee {
                                if m != self.id {
                                    ctx.send(
                                        m,
                                        AeMsg::Contribute {
                                            root: true,
                                            value: self.root_contribution,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
            }
            s if s == 6 + 2 * Step::from(root) => {
                // Supreme committee echo.
                if let Some(committee) = self.root_committee() {
                    if committee.contains(&self.id) {
                        let pairs: Vec<(NodeId, u64)> =
                            self.root_contribs.iter().map(|(&a, &b)| (a, b)).collect();
                        for &m in &committee {
                            if m != self.id {
                                ctx.send(
                                    m,
                                    AeMsg::Echo {
                                        root: true,
                                        pairs: pairs.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            s if s == 8 + 2 * Step::from(root) => {
                // Supreme committee builds gstring and diffuses it.
                if let Some(committee) = self.root_committee() {
                    if committee.contains(&self.id) {
                        let mut echoes = self.root_echoes.clone();
                        echoes.insert(
                            self.id,
                            self.root_contribs.iter().map(|(&a, &b)| (a, b)).collect(),
                        );
                        let consistent = Self::consistent(&echoes, &committee);
                        let gstring = self.build_gstring(&consistent, &committee);
                        for i in 0..self.cfg.n {
                            let to = NodeId::from_index(i);
                            if to != self.id {
                                ctx.send(to, AeMsg::Diffuse { value: gstring });
                            }
                        }
                        self.output = Some(gstring);
                    }
                }
            }
            s if s == 10 + 2 * Step::from(root) => {
                self.decide_from_diffusion(ctx);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, from: NodeId, msg: AeMsg, _ctx: &mut Context<'_, AeMsg>) {
        match msg {
            AeMsg::Contribute { root: false, value } => {
                // Only group members may contribute.
                if self.leaf_members().contains(&from) {
                    self.contribs.entry(from).or_insert(value);
                }
            }
            AeMsg::Contribute { root: true, value } => {
                self.root_contribs.entry(from).or_insert(value);
            }
            AeMsg::Echo { root: false, pairs } => {
                if self.leaf_members().contains(&from) {
                    self.echoes.entry(from).or_insert(pairs);
                }
            }
            AeMsg::Echo { root: true, pairs } => {
                self.root_echoes.entry(from).or_insert(pairs);
            }
            AeMsg::Gv { level, idx, value } => {
                // Store first claim per sender; verification happens at
                // majority time (it depends on the claimed value).
                if tree::range(self.cfg.n, self.c(), level, idx).contains(&from.index()) {
                    self.claims
                        .entry((level, idx))
                        .or_default()
                        .entry(from)
                        .or_insert(value);
                }
            }
            AeMsg::Diffuse { value } => {
                self.diffuse_claims.entry(from).or_insert(value);
            }
        }
    }

    fn output(&self) -> Option<GString> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::{run, EngineConfig, NoAdversary, SilentAdversary};

    fn engine(cfg: &AeConfig) -> EngineConfig {
        EngineConfig {
            max_steps: cfg.schedule_len() + 4,
            ..EngineConfig::sync(cfg.n)
        }
    }

    #[test]
    fn fault_free_run_agrees_everywhere() {
        for n in [16, 64, 200] {
            let cfg = AeConfig::recommended(n);
            let out = run::<AeNode, _, _>(&engine(&cfg), 5, &mut NoAdversary, |id| {
                AeNode::new(cfg, id)
            });
            assert!(out.all_decided(), "n={n}");
            let g = *out.unanimous().expect("all nodes agree fault-free");
            assert_eq!(g.len_bits(), cfg.string_len);
        }
    }

    #[test]
    fn fault_free_runs_differ_across_seeds() {
        let cfg = AeConfig::recommended(64);
        let a = run::<AeNode, _, _>(&engine(&cfg), 1, &mut NoAdversary, |id| {
            AeNode::new(cfg, id)
        });
        let b = run::<AeNode, _, _>(&engine(&cfg), 2, &mut NoAdversary, |id| {
            AeNode::new(cfg, id)
        });
        assert_ne!(
            a.unanimous(),
            b.unanimous(),
            "gstring must depend on node randomness"
        );
    }

    #[test]
    fn silent_faults_leave_a_knowing_supermajority() {
        let n = 128;
        let cfg = AeConfig::recommended(n);
        let t = n / 8;
        let mut adv = SilentAdversary::new(t);
        let out = run::<AeNode, _, _>(&engine(&cfg), 9, &mut adv, |id| AeNode::new(cfg, id));
        // Majority gstring among correct outputs:
        let mut votes: BTreeMap<GString, usize> = BTreeMap::new();
        for v in out.outputs.values() {
            *votes.entry(*v).or_default() += 1;
        }
        let (_, knowing) = votes.into_iter().max_by_key(|&(_, c)| c).unwrap();
        let correct = n - t;
        assert!(
            knowing as f64 > 0.75 * correct as f64,
            "only {knowing}/{correct} correct nodes share the majority string"
        );
    }

    #[test]
    fn schedule_len_grows_logarithmically() {
        let small = AeConfig::recommended(64).schedule_len();
        let large = AeConfig::recommended(4096).schedule_len();
        assert!(large > small);
        assert!(large < 40, "still polylog at laptop scale: {large}");
    }

    #[test]
    fn msg_wire_sizes() {
        assert_eq!(
            AeMsg::Contribute {
                root: false,
                value: 0
            }
            .wire_bits(),
            67
        );
        let echo = AeMsg::Echo {
            root: true,
            pairs: vec![(NodeId::from_index(0), 1), (NodeId::from_index(1), 2)],
        };
        assert_eq!(echo.wire_bits(), 2 + 1 + 2 * 96);
        assert_eq!(
            AeMsg::Gv {
                level: 0,
                idx: 0,
                value: 0
            }
            .wire_bits(),
            130
        );
        assert_eq!(
            AeMsg::Diffuse {
                value: GString::zeroes(40)
            }
            .wire_bits(),
            42
        );
    }

    /// Drives a single node by hand to check message filtering.
    fn hand_ctx<'a>(
        id: NodeId,
        n: usize,
        step: fba_sim::Step,
        rng: &'a mut rand_chacha::ChaCha12Rng,
        outbox: &'a mut Vec<(NodeId, AeMsg)>,
    ) -> Context<'a, AeMsg> {
        Context::new(id, n, step, rng, outbox)
    }

    #[test]
    fn contributions_from_outside_the_leaf_group_are_ignored() {
        let cfg = AeConfig::recommended(64);
        let c = cfg.committee_size; // leaf group 0 = [0, c)
        let mut node = AeNode::new(cfg, NodeId::from_index(0));
        let mut rng = fba_sim::rng::node_rng(1, 0);
        let mut outbox = Vec::new();
        let mut ctx = hand_ctx(NodeId::from_index(0), 64, 1, &mut rng, &mut outbox);
        // A contribution from a node outside group 0 must be dropped.
        let outsider = NodeId::from_index(c + 1);
        node.on_message(
            outsider,
            AeMsg::Contribute {
                root: false,
                value: 7,
            },
            &mut ctx,
        );
        // A contribution from inside must be stored (first one wins).
        let insider = NodeId::from_index(1);
        node.on_message(
            insider,
            AeMsg::Contribute {
                root: false,
                value: 9,
            },
            &mut ctx,
        );
        node.on_message(
            insider,
            AeMsg::Contribute {
                root: false,
                value: 10,
            },
            &mut ctx,
        );
        assert_eq!(node.contribs.get(&outsider), None);
        assert_eq!(node.contribs.get(&insider), Some(&9), "first claim wins");
    }

    #[test]
    fn gv_claims_from_outside_the_claimed_range_are_ignored() {
        let cfg = AeConfig::recommended(128);
        let c = cfg.committee_size;
        let mut node = AeNode::new(cfg, NodeId::from_index(0));
        let mut rng = fba_sim::rng::node_rng(1, 0);
        let mut outbox = Vec::new();
        let mut ctx = hand_ctx(NodeId::from_index(0), 128, 5, &mut rng, &mut outbox);
        // Claim about subtree (0, 1) = range [c, 2c) from a node outside
        // that range: dropped.
        node.on_message(
            NodeId::from_index(3 * c),
            AeMsg::Gv {
                level: 0,
                idx: 1,
                value: 42,
            },
            &mut ctx,
        );
        assert!(!node.claims.contains_key(&(0, 1)));
        // Same claim from inside the range: stored.
        node.on_message(
            NodeId::from_index(c + 1),
            AeMsg::Gv {
                level: 0,
                idx: 1,
                value: 42,
            },
            &mut ctx,
        );
        assert_eq!(
            node.claims[&(0, 1)].get(&NodeId::from_index(c + 1)),
            Some(&42)
        );
    }

    #[test]
    fn consistent_requires_per_sender_echo_majority() {
        let members: Vec<NodeId> = (0..5).map(NodeId::from_index).collect();
        let mut echoes: BTreeMap<NodeId, Vec<(NodeId, u64)>> = BTreeMap::new();
        // 3 echoers say node 0 contributed 7; 2 say 8. Node 1 only has 2
        // echoes (below the 3-of-5 majority).
        echoes.insert(members[0], vec![(members[0], 7), (members[1], 5)]);
        echoes.insert(members[1], vec![(members[0], 7), (members[1], 5)]);
        echoes.insert(members[2], vec![(members[0], 7)]);
        echoes.insert(members[3], vec![(members[0], 8)]);
        echoes.insert(members[4], vec![(members[0], 8)]);
        let consistent = AeNode::consistent(&echoes, &members);
        assert_eq!(consistent, vec![(members[0], 7)]);
    }

    #[test]
    fn contribution_bits_are_deterministic_and_value_dependent() {
        let a = AeNode::contribution_bits(1, 16);
        let b = AeNode::contribution_bits(1, 16);
        let c = AeNode::contribution_bits(2, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn rigged_node_sends_the_fixed_contribution() {
        let cfg = AeConfig::recommended(64);
        let mut node = AeNode::new_rigged(cfg, NodeId::from_index(0), 0xabcd);
        let mut rng = fba_sim::rng::node_rng(1, 0);
        let mut outbox = Vec::new();
        let mut ctx = hand_ctx(NodeId::from_index(0), 64, 0, &mut rng, &mut outbox);
        node.on_start(&mut ctx);
        #[allow(clippy::drop_non_drop)] // release the outbox borrow
        drop(ctx);
        assert!(!outbox.is_empty());
        for (_, msg) in &outbox {
            if let AeMsg::Contribute { value, .. } = msg {
                assert_eq!(*value, 0xabcd);
            }
        }
    }
}
