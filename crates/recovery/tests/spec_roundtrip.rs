//! Property tests for the `crash:` grammar: parse/Display round-trips and
//! resolution determinism over randomly generated well-formed schedules.

use fba_recovery::{CrashSpec, CrashWindow};
use proptest::collection;
use proptest::prelude::*;

/// Strategy for a well-formed window list: gaps ≥ 0 between consecutive
/// windows, lengths ≥ 1, counts ≥ 1 — every output satisfies the grammar.
fn windows_strategy() -> impl Strategy<Value = Vec<CrashWindow>> {
    collection::vec((1u64..6, 1u64..8, 1usize..20), 1..5).prop_map(|raw| {
        let mut windows = Vec::with_capacity(raw.len());
        let mut cursor = 0u64;
        for (gap, len, count) in raw {
            let start = cursor + gap;
            let end = start + len;
            windows.push(CrashWindow { start, end, count });
            cursor = end;
        }
        windows
    })
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_parse_round_trips(windows in windows_strategy()) {
        let spec = CrashSpec::new(windows).expect("strategy yields valid windows");
        let rendered = spec.to_string();
        let reparsed: CrashSpec = rendered.parse().expect("rendered spec must reparse");
        prop_assert_eq!(&spec, &reparsed);
        prop_assert_eq!(rendered, reparsed.to_string());
    }

    #[test]
    fn resolution_is_a_pure_function_of_n_seed_spec(
        windows in windows_strategy(),
        seed in any::<u64>(),
    ) {
        let spec = CrashSpec::new(windows).expect("strategy yields valid windows");
        let n = 64;
        prop_assert!(spec.max_count() <= n);
        let a = spec.resolve(n, seed).expect("counts fit n");
        let b = spec.resolve(n, seed).expect("counts fit n");
        prop_assert_eq!(&a, &b);
        for (outage, window) in a.outages().iter().zip(spec.windows()) {
            prop_assert_eq!(outage.nodes().len(), window.count);
            prop_assert_eq!(outage.start, window.start);
            prop_assert_eq!(outage.end, window.end);
        }
    }
}
