//! Checkpoint/WAL layer: durable phase state for crash–restart recovery.
//!
//! Honest nodes snapshot their agreement-phase progress — accepted
//! strings from the push phase, the believed string, poll progress, and
//! any decision — into a [`Checkpoint`] on a configurable cadence, and
//! append fine-grained [`WalRecord`]s between snapshots. On restart,
//! [`CheckpointStore::restore`] replays the write-ahead log on top of the
//! last snapshot, reconstructing the state as of the crash step with no
//! RNG involved: restore is a pure fold over the log, so a crashed run
//! stays a deterministic function of `(seed, spec)`.
//!
//! The store models stable storage inside a simulated node: appends are
//! immediately durable (the simulated crash loses only *transient* state,
//! i.e. whatever the protocol never logged), and
//! [`CheckpointStore::maybe_snapshot`] compacts the log into the snapshot
//! once the cadence has elapsed, bounding replay length.

use fba_samplers::GString;
use fba_sim::Step;

/// Tuning for the checkpoint layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Steps between WAL compactions into a full snapshot. Smaller
    /// cadence means shorter replay at restart and more snapshot work
    /// during normal operation.
    pub cadence: Step,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { cadence: 8 }
    }
}

/// One durable event in a node's write-ahead log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// The push phase accepted a candidate string.
    Accept(GString),
    /// The pull phase adopted a believed string.
    Believe(GString),
    /// The node decided on a string.
    Decide(GString),
    /// The node started a new poll attempt.
    Poll {
        /// The attempt number just started (0-based).
        attempt: u32,
    },
}

/// A compact snapshot of a node's agreement-phase progress.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Step the snapshot covers up to (exclusive).
    pub step: Step,
    /// Strings the push phase has accepted, in acceptance order.
    pub accepted: Vec<GString>,
    /// The believed string, if any.
    pub belief: Option<GString>,
    /// The last poll attempt started (0-based); `0` if polling never
    /// started.
    pub poll_attempt: u32,
    /// The decided string, if the node decided before crashing.
    pub decided: Option<GString>,
}

impl Checkpoint {
    fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Accept(x) => self.accepted.push(*x),
            WalRecord::Believe(x) => self.belief = Some(*x),
            WalRecord::Decide(x) => self.decided = Some(*x),
            WalRecord::Poll { attempt } => self.poll_attempt = *attempt,
        }
    }
}

/// Per-node stable storage: the last snapshot plus the WAL of records
/// appended since.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointStore {
    cadence: Step,
    snapshot: Checkpoint,
    wal: Vec<(Step, WalRecord)>,
    appends: u64,
    snapshots: u64,
}

impl CheckpointStore {
    /// A fresh store with the given snapshot cadence.
    #[must_use]
    pub fn new(config: RecoveryConfig) -> Self {
        CheckpointStore {
            cadence: config.cadence,
            snapshot: Checkpoint::default(),
            wal: Vec::new(),
            appends: 0,
            snapshots: 0,
        }
    }

    /// Appends a record to the WAL; immediately durable.
    pub fn append(&mut self, step: Step, record: WalRecord) {
        self.wal.push((step, record));
        self.appends += 1;
    }

    /// Compacts the WAL into the snapshot when the cadence has elapsed
    /// since the snapshot's covered step and there is anything to
    /// compact. Returns whether a snapshot was taken.
    pub fn maybe_snapshot(&mut self, step: Step) -> bool {
        if self.wal.is_empty() || step < self.snapshot.step + self.cadence {
            return false;
        }
        for (_, record) in self.wal.drain(..) {
            self.snapshot.apply(&record);
        }
        self.snapshot.step = step;
        self.snapshots += 1;
        true
    }

    /// Reconstructs the state as of the last durable record: the snapshot
    /// with the WAL replayed on top. Pure — no RNG, no side effects.
    #[must_use]
    pub fn restore(&self) -> Checkpoint {
        let mut state = self.snapshot.clone();
        for (step, record) in &self.wal {
            state.apply(record);
            state.step = (*step).max(state.step);
        }
        state
    }

    /// Records appended over the store's lifetime (compaction does not
    /// reset this).
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Snapshots taken over the store's lifetime.
    #[must_use]
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Records currently awaiting compaction.
    #[must_use]
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::rng::derive_rng;

    fn gs(bits: &[bool]) -> GString {
        GString::from_bits(bits)
    }

    #[test]
    fn restore_replays_wal_over_snapshot() {
        let mut store = CheckpointStore::new(RecoveryConfig { cadence: 4 });
        let a = gs(&[true, false]);
        let b = gs(&[false, true]);
        store.append(1, WalRecord::Accept(a));
        store.append(2, WalRecord::Accept(b));
        store.append(2, WalRecord::Believe(b));
        assert!(store.maybe_snapshot(4));
        assert_eq!(store.wal_len(), 0);
        store.append(5, WalRecord::Poll { attempt: 1 });
        store.append(6, WalRecord::Decide(b));

        let state = store.restore();
        assert_eq!(state.accepted, vec![a, b]);
        assert_eq!(state.belief, Some(b));
        assert_eq!(state.poll_attempt, 1);
        assert_eq!(state.decided, Some(b));
        assert_eq!(state.step, 6);
    }

    #[test]
    fn snapshot_respects_cadence() {
        let mut store = CheckpointStore::new(RecoveryConfig { cadence: 8 });
        store.append(1, WalRecord::Poll { attempt: 0 });
        assert!(!store.maybe_snapshot(3), "cadence not yet elapsed");
        assert!(!store.maybe_snapshot(7));
        assert!(store.maybe_snapshot(8));
        assert_eq!(store.snapshots(), 1);
        assert!(!store.maybe_snapshot(20), "empty WAL never snapshots");
    }

    #[test]
    fn restore_is_pure() {
        let mut store = CheckpointStore::new(RecoveryConfig::default());
        let mut rng = derive_rng(9, &[1]);
        let x = GString::random(16, &mut rng);
        store.append(3, WalRecord::Believe(x));
        let first = store.restore();
        let second = store.restore();
        assert_eq!(first, second);
        assert_eq!(store.wal_len(), 1, "restore does not consume the WAL");
    }

    #[test]
    fn fresh_store_restores_to_default() {
        let store = CheckpointStore::new(RecoveryConfig::default());
        assert_eq!(store.restore(), Checkpoint::default());
        assert_eq!(store.appends(), 0);
        assert_eq!(store.snapshots(), 0);
    }
}
