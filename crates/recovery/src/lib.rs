//! fba-recovery: the crash–restart fault family.
//!
//! Byzantine agreement in this repo so far faced one fault family —
//! adversarial corruption. This crate adds the second classic family:
//! *crash–restart* faults, where honest nodes go dark for a window of
//! steps and then come back, having lost whatever state they never made
//! durable. Three layers:
//!
//! - [`spec`] — the `crash:[3..7]64` schedule grammar (window × node
//!   count, `;`-chained, validated like the `sched:` adversary grammar)
//!   and its seeded resolution into an engine-facing
//!   [`fba_sim::CrashPlan`].
//! - [`checkpoint`] — a per-node snapshot + write-ahead-log store
//!   ([`CheckpointStore`]) that protocols use to persist phase progress
//!   on a cadence and replay it deterministically at restart.
//! - [`rejoin`] — rejoin-cost accounting ([`rejoin_report`]): steps from
//!   restart to decision per crashed node, the fault family's first-class
//!   metric.
//!
//! Determinism contract: resolving and running a crash schedule uses only
//! streams derived from the run's seeds ([`fba_sim::rng::TAG_CRASH`]), so
//! a crashed run is reproducible from `(seed, spec)` alone, and an empty
//! schedule is bit-identical to the no-fault baseline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod rejoin;
pub mod spec;

pub use checkpoint::{Checkpoint, CheckpointStore, RecoveryConfig, WalRecord};
pub use rejoin::{rejoin_report, OutageRejoin, RejoinReport};
pub use spec::{CrashSpec, CrashWindow, CRASH_EXPECTED};
