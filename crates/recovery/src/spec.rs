//! The `crash:` spec grammar: crash–restart fault schedules as data.
//!
//! `crash:[3..7]64` crashes 64 sampled honest nodes at the start of step
//! 3 and restarts them at the start of step 7; `;`-separated windows
//! chain outages, mirroring the `sched:` adversary-schedule grammar
//! ([`fba_sim::ScheduleSpec`]) and validated by the same rules — ordered,
//! non-overlapping, non-empty windows — plus two crash-specific ones:
//! windows are *closed* (a crashed node must come back; `[3..]` is
//! malformed) and may not start at step 0 (every node runs `on_start`).
//!
//! A [`CrashSpec`] is pure data: *which* nodes crash is resolved only when
//! the spec meets a concrete system size and seed in
//! [`CrashSpec::resolve`], which samples each window's victims from a
//! domain-separated stream ([`fba_sim::rng::TAG_CRASH`], per-window
//! tagged) — so a crashed run is reproducible from `(seed, spec)` alone,
//! and the same `(seed, spec)` pair pins the same victims across every
//! instance of a service run.

use std::fmt;
use std::str::FromStr;

use fba_sim::rng::{derive_rng, TAG_CRASH};
use fba_sim::{choose_corrupt, CrashOutage, CrashPlan, CrashPlanError, ParseSpecError, Step};

/// What a valid `crash:` spec looks like; used in parse errors and the
/// `paperbench` usage text.
pub const CRASH_EXPECTED: &str =
    "crash:[start..end]count[;[start..end]count…] with start ≥ 1, end > start, count ≥ 1, \
     windows ordered and non-overlapping";

/// One window of a [`CrashSpec`]: `[start..end]count` — crash `count`
/// sampled nodes over the closed step window `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CrashWindow {
    /// First dark step (≥ 1).
    pub start: Step,
    /// Restart step (exclusive; > `start`).
    pub end: Step,
    /// Number of nodes to crash (≥ 1), sampled at resolution time.
    pub count: usize,
}

impl fmt::Display for CrashWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]{}", self.start, self.end, self.count)
    }
}

/// A validated crash–restart schedule: ordered, non-overlapping windows,
/// each crashing a positive number of nodes.
///
/// The programmatic constructor accepts an empty window list (the
/// no-fault baseline — resolving it yields an empty [`CrashPlan`], pinned
/// bit-identical to running with no plan at all); the *grammar* does not:
/// `crash:` with an empty body is malformed, mirroring `sched:`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashSpec {
    windows: Vec<CrashWindow>,
}

impl CrashSpec {
    /// Builds a spec, validating window order and contents.
    ///
    /// # Errors
    ///
    /// Returns the [`CrashPlanError`] matching the first rule violated:
    /// [`CrashPlanError::StartsAtZero`], [`CrashPlanError::EmptyWindow`],
    /// [`CrashPlanError::NoNodes`] for a zero count, or
    /// [`CrashPlanError::Unordered`] for overlapping/out-of-order
    /// windows.
    pub fn new(windows: Vec<CrashWindow>) -> Result<Self, CrashPlanError> {
        let mut prev_end: Step = 0;
        for (index, w) in windows.iter().enumerate() {
            if w.start == 0 {
                return Err(CrashPlanError::StartsAtZero { index });
            }
            if w.end <= w.start {
                return Err(CrashPlanError::EmptyWindow {
                    index,
                    start: w.start,
                    end: w.end,
                });
            }
            if w.count == 0 {
                return Err(CrashPlanError::NoNodes { index });
            }
            if w.start < prev_end {
                return Err(CrashPlanError::Unordered { index });
            }
            prev_end = w.end;
        }
        Ok(CrashSpec { windows })
    }

    /// The empty spec: no outages, the no-fault baseline.
    #[must_use]
    pub fn none() -> Self {
        CrashSpec::default()
    }

    /// The windows, in time order.
    #[must_use]
    pub fn windows(&self) -> &[CrashWindow] {
        &self.windows
    }

    /// Whether the spec schedules no outages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The last restart step, or `None` for an empty spec. Runs need at
    /// least this many steps of headroom to bring every victim back.
    #[must_use]
    pub fn last_restart(&self) -> Option<Step> {
        self.windows.last().map(|w| w.end)
    }

    /// The largest per-window crash count.
    #[must_use]
    pub fn max_count(&self) -> usize {
        self.windows.iter().map(|w| w.count).max().unwrap_or(0)
    }

    /// Resolves the spec against a concrete system: samples each window's
    /// victims from the domain-separated stream
    /// `derive_rng(seed, [TAG_CRASH, window_index])` and returns the
    /// engine-facing [`CrashPlan`]. Deterministic: the same `(n, seed,
    /// spec)` always yields the same plan.
    ///
    /// # Errors
    ///
    /// Returns [`CrashPlanError::TooManyNodes`] when a window's count
    /// exceeds `n`.
    pub fn resolve(&self, n: usize, seed: u64) -> Result<CrashPlan, CrashPlanError> {
        let mut outages = Vec::with_capacity(self.windows.len());
        for (index, w) in self.windows.iter().enumerate() {
            if w.count > n {
                return Err(CrashPlanError::TooManyNodes {
                    index,
                    count: w.count,
                    n,
                });
            }
            let mut rng = derive_rng(seed, &[TAG_CRASH, index as u64]);
            let nodes = choose_corrupt(n, w.count, &mut rng).into_iter().collect();
            outages.push(
                CrashOutage::new(w.start, w.end, nodes)
                    .expect("spec windows are validated at construction"),
            );
        }
        Ok(CrashPlan::new(outages).expect("spec window order is validated at construction"))
    }
}

impl fmt::Display for CrashSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash:")?;
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

/// Parses a digit-only integer: rejects whitespace, signs, and empty
/// strings, mirroring the `sched:` grammar's hardening against silently
/// tolerated junk.
fn parse_strict<T: FromStr>(s: &str) -> Option<T> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// Parses one `[start..end]count` window; `None` on any malformation
/// (including open windows — crash windows must be closed).
fn parse_crash_window(part: &str) -> Option<CrashWindow> {
    let rest = part.strip_prefix('[')?;
    let (range, count) = rest.split_once(']')?;
    let (start, end) = range.split_once("..")?;
    Some(CrashWindow {
        start: parse_strict(start)?,
        end: parse_strict(end)?,
        count: parse_strict(count)?,
    })
}

impl FromStr for CrashSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseSpecError {
            input: s.to_string(),
            expected: CRASH_EXPECTED,
        };
        let body = s.strip_prefix("crash:").ok_or_else(err)?;
        if body.is_empty() {
            return Err(err());
        }
        let mut windows = Vec::new();
        for part in body.split(';') {
            windows.push(parse_crash_window(part).ok_or_else(err)?);
        }
        CrashSpec::new(windows).map_err(|_| err())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: Step, end: Step, count: usize) -> CrashWindow {
        CrashWindow { start, end, count }
    }

    #[test]
    fn display_round_trips() {
        for raw in ["crash:[3..7]64", "crash:[1..2]1;[5..9]16;[9..12]4"] {
            let spec: CrashSpec = raw.parse().unwrap();
            assert_eq!(spec.to_string(), raw);
            let reparsed: CrashSpec = spec.to_string().parse().unwrap();
            assert_eq!(spec, reparsed);
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for raw in [
            "crash:",                // empty body
            "crash",                 // no colon
            "sched:[1..2]1",         // wrong family
            "crash:[0..5]4",         // starts at step 0
            "crash:[5..5]4",         // empty window
            "crash:[7..5]4",         // inverted window
            "crash:[1..5]0",         // zero nodes
            "crash:[3..]4",          // open window
            "crash:[1..4]2;[3..8]2", // overlap
            "crash:[5..8]2;[1..3]2", // out of order
            "crash:[1..4]2;",        // trailing separator
            "crash:[ 1..4]2",        // whitespace
            "crash:[1..4] 2",        // whitespace
            "crash:[1..4]+2",        // sign
            "crash:[a..4]2",         // non-numeric
            "crash:[1..4]",          // missing count
            "crash:1..4]2",          // missing bracket
        ] {
            assert!(raw.parse::<CrashSpec>().is_err(), "{raw} must be rejected");
        }
    }

    #[test]
    fn constructor_reports_the_offending_window() {
        assert_eq!(
            CrashSpec::new(vec![window(1, 3, 2), window(2, 5, 1)]),
            Err(CrashPlanError::Unordered { index: 1 })
        );
        assert_eq!(
            CrashSpec::new(vec![window(1, 3, 2), window(4, 4, 1)]),
            Err(CrashPlanError::EmptyWindow {
                index: 1,
                start: 4,
                end: 4
            })
        );
    }

    #[test]
    fn empty_spec_is_programmatic_only() {
        let none = CrashSpec::none();
        assert!(none.is_empty());
        assert_eq!(none.to_string(), "crash:");
        assert!("crash:".parse::<CrashSpec>().is_err());
        let plan = none.resolve(64, 7).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn back_to_back_windows_are_legal() {
        // Non-overlap means next.start >= prev.end; touching is fine.
        let spec = CrashSpec::new(vec![window(1, 4, 2), window(4, 6, 2)]).unwrap();
        assert_eq!(spec.last_restart(), Some(6));
    }

    #[test]
    fn resolve_is_deterministic_and_seed_sensitive() {
        let spec: CrashSpec = "crash:[2..6]8;[9..12]4".parse().unwrap();
        let a = spec.resolve(64, 42).unwrap();
        let b = spec.resolve(64, 42).unwrap();
        assert_eq!(a, b);
        let c = spec.resolve(64, 43).unwrap();
        assert_ne!(a, c, "a different seed draws different victims");
        assert_eq!(a.outages()[0].nodes().len(), 8);
        assert_eq!(a.outages()[1].nodes().len(), 4);
        assert_eq!(a.outages()[0].start, 2);
        assert_eq!(a.outages()[1].end, 12);
    }

    #[test]
    fn resolve_uses_independent_streams_per_window() {
        let spec: CrashSpec = "crash:[1..3]8;[5..7]8".parse().unwrap();
        let plan = spec.resolve(256, 3).unwrap();
        assert_ne!(
            plan.outages()[0].nodes(),
            plan.outages()[1].nodes(),
            "distinct window tags draw distinct victim sets"
        );
    }

    #[test]
    fn resolve_rejects_oversized_counts() {
        let spec: CrashSpec = "crash:[1..3]65".parse().unwrap();
        assert_eq!(
            spec.resolve(64, 1),
            Err(CrashPlanError::TooManyNodes {
                index: 0,
                count: 65,
                n: 64
            })
        );
    }
}
