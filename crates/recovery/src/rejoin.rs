//! Rejoin accounting: how fast restarted nodes catch back up.
//!
//! The first-class metric of the crash fault family is *rejoin cost* —
//! for each crashed honest node, the steps between its restart and its
//! decision. [`rejoin_report`] derives it per outage window from a
//! resolved [`CrashPlan`] and the run's [`Metrics`], so batteries and
//! tests can report reconvergence latency alongside the usual decision
//! metrics.

use fba_sim::{CrashPlan, Metrics, Step};

/// Rejoin cost for one outage window.
#[derive(Clone, Debug, PartialEq)]
pub struct OutageRejoin {
    /// First dark step of the window.
    pub start: Step,
    /// Restart step of the window.
    pub end: Step,
    /// Honest nodes crashed by the window (corrupt victims are excluded —
    /// crashing an adversary-played node is a no-op).
    pub crashed: usize,
    /// Of those, how many decided by the end of the run.
    pub rejoined: usize,
    /// Worst rejoin latency: max over crashed honest nodes of
    /// `decided_at - end` (0 for nodes that decided before or during the
    /// outage). `None` if some crashed node never decided.
    pub max_rejoin_steps: Option<Step>,
    /// Mean rejoin latency over crashed honest nodes that decided.
    /// `None` if none decided.
    pub mean_rejoin_steps: Option<f64>,
}

/// Rejoin costs for every outage of a crashed run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RejoinReport {
    /// One entry per outage window, in time order.
    pub outages: Vec<OutageRejoin>,
}

impl RejoinReport {
    /// Whether every crashed honest node in every window decided.
    #[must_use]
    pub fn all_rejoined(&self) -> bool {
        self.outages.iter().all(|o| o.rejoined == o.crashed)
    }

    /// Worst rejoin latency across all windows; `None` if any crashed
    /// node never decided (or the report is empty).
    #[must_use]
    pub fn max_rejoin_steps(&self) -> Option<Step> {
        self.outages
            .iter()
            .map(|o| o.max_rejoin_steps)
            .collect::<Option<Vec<_>>>()
            .and_then(|maxes| maxes.into_iter().max())
    }
}

/// Derives per-window rejoin costs from a resolved plan and the run's
/// metrics. A node's rejoin latency is `decided_at - window.end`,
/// saturating at 0 for nodes that decided before their restart (possible
/// when a window crashes an already-decided node).
#[must_use]
pub fn rejoin_report(plan: &CrashPlan, metrics: &Metrics) -> RejoinReport {
    let outages = plan
        .outages()
        .iter()
        .map(|outage| {
            let mut crashed = 0usize;
            let mut rejoined = 0usize;
            let mut max_rejoin: Step = 0;
            let mut sum_rejoin: u128 = 0;
            for &id in outage.nodes() {
                if metrics.is_corrupt(id) {
                    continue;
                }
                crashed += 1;
                if let Some(decided) = metrics.decided_at(id) {
                    rejoined += 1;
                    let latency = decided.saturating_sub(outage.end);
                    max_rejoin = max_rejoin.max(latency);
                    sum_rejoin += u128::from(latency);
                }
            }
            OutageRejoin {
                start: outage.start,
                end: outage.end,
                crashed,
                rejoined,
                max_rejoin_steps: (crashed > 0 && rejoined == crashed).then_some(max_rejoin),
                mean_rejoin_steps: (rejoined > 0).then(|| sum_rejoin as f64 / rejoined as f64),
            }
        })
        .collect();
    RejoinReport { outages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::{CrashOutage, NodeId};
    use std::collections::BTreeSet;

    fn ids(raw: &[usize]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::from_index).collect()
    }

    #[test]
    fn report_measures_latency_from_restart() {
        let plan = CrashPlan::new(vec![CrashOutage::new(2, 5, ids(&[0, 1, 2])).unwrap()]).unwrap();
        let corrupt: BTreeSet<_> = ids(&[2]).into_iter().collect();
        let mut m = Metrics::new(4, &corrupt);
        m.record_decision(NodeId::from_index(0), 9); // rejoin = 4
        m.record_decision(NodeId::from_index(1), 3); // decided mid-outage: 0
        m.record_decision(NodeId::from_index(3), 4); // not crashed, ignored

        let report = rejoin_report(&plan, &m);
        assert_eq!(report.outages.len(), 1);
        let o = &report.outages[0];
        assert_eq!((o.crashed, o.rejoined), (2, 2), "corrupt victim excluded");
        assert_eq!(o.max_rejoin_steps, Some(4));
        assert_eq!(o.mean_rejoin_steps, Some(2.0));
        assert!(report.all_rejoined());
        assert_eq!(report.max_rejoin_steps(), Some(4));
    }

    #[test]
    fn undecided_nodes_void_the_max() {
        let plan = CrashPlan::new(vec![CrashOutage::new(1, 3, ids(&[0, 1])).unwrap()]).unwrap();
        let mut m = Metrics::new(2, &BTreeSet::new());
        m.record_decision(NodeId::from_index(0), 7);

        let report = rejoin_report(&plan, &m);
        let o = &report.outages[0];
        assert_eq!((o.crashed, o.rejoined), (2, 1));
        assert_eq!(o.max_rejoin_steps, None, "an undecided victim has no max");
        assert_eq!(o.mean_rejoin_steps, Some(4.0));
        assert!(!report.all_rejoined());
        assert_eq!(report.max_rejoin_steps(), None);
    }

    #[test]
    fn empty_plan_yields_empty_report() {
        let m = Metrics::new(4, &BTreeSet::new());
        let report = rejoin_report(&CrashPlan::empty(), &m);
        assert!(report.outages.is_empty());
        assert!(report.all_rejoined());
        assert_eq!(report.max_rejoin_steps(), None);
    }
}
