//! Sustained-service throughput benchmark (`paperbench service`).
//!
//! Drives [`fba_scenario::Scenario::run_service`] over a grid of system
//! size × adversary × offered load (arrival interval) and reports the
//! headline **decisions/sec sustained**: correct-node decisions per
//! wall-clock second across a chain of agreement instances sharing one
//! engine session and one AER arena. Cells run *serially* — each row's
//! wall-clock must measure an uncontended chain, not scheduler luck —
//! which is also why the battery keeps its grid small. The report lands
//! in `BENCH_engine.json` as the `service` section (see
//! [`crate::engine_bench::EngineBenchReport`]).

use std::time::Instant;

use fba_scenario::Scenario;
use fba_sim::{AdversarySpec, Step};

use crate::scope::Scope;

/// The adversary grid every service cell sweeps: fault-free, a fixed
/// silent coalition, and a composed schedule that goes silent for the
/// push wave then honest (same budget in every corrupting window, as
/// the schedule validator requires).
pub const SERVICE_ADVERSARIES: [&str; 3] = ["none", "silent:9", "sched:[0..5]silent:9;[5..]none"];

/// Arrival intervals (offered load) the battery sweeps: back-to-back
/// saturation and spaced arrivals that leave the engine idle between
/// instances.
pub const SERVICE_INTERVALS: [Step; 2] = [1, 32];

/// Scope-dependent system sizes for the service battery. Capped below
/// the engine-bench frontier — every cell chains several full AER runs
/// serially.
#[must_use]
pub fn service_sizes(scope: Scope) -> Vec<usize> {
    match scope {
        Scope::Quick => vec![256],
        Scope::Default => vec![1024],
        Scope::Full | Scope::Huge => vec![1024, 4096],
        Scope::Extreme => vec![4096],
    }
}

/// Instances chained per cell: enough to amortise first-instance cache
/// misses into a sustained rate, small enough for the scope budget.
#[must_use]
pub fn service_instances(scope: Scope) -> usize {
    match scope {
        Scope::Quick => 3,
        Scope::Default => 6,
        _ => 8,
    }
}

/// One cell of the service battery: a full chained service run.
#[derive(Clone, Debug)]
pub struct ServiceRow {
    /// System size.
    pub n: usize,
    /// Adversary spec string (see [`SERVICE_ADVERSARIES`]).
    pub adversary: String,
    /// Arrival interval in steps (offered load).
    pub interval: Step,
    /// Instances chained.
    pub instances: u64,
    /// Instances in which every correct node decided.
    pub decided_instances: u64,
    /// Worst per-instance fraction of correct nodes that decided.
    pub min_decided_fraction: f64,
    /// Correct-node decisions summed over all instances.
    pub decisions: u64,
    /// Service-clock steps from first arrival to last finish.
    pub total_steps: Step,
    /// Wall-clock for the whole chain, seconds.
    pub elapsed_sec: f64,
    /// The headline: decisions per wall-clock second, sustained.
    pub decisions_per_sec: f64,
    /// Decisions per thousand service-clock steps (simulated-time rate).
    pub decisions_per_kilostep: f64,
    /// Poll-list cache hit rate over the whole chain — evidence the
    /// shared arenas were actually reused across instances.
    pub poll_cache_hit_rate: f64,
}

impl ServiceRow {
    pub(crate) fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"adversary\": \"{}\",\n",
                "      \"interval\": {},\n",
                "      \"instances\": {},\n",
                "      \"decided_instances\": {},\n",
                "      \"min_decided_fraction\": {:.4},\n",
                "      \"decisions\": {},\n",
                "      \"total_steps\": {},\n",
                "      \"elapsed_sec\": {:.3},\n",
                "      \"decisions_per_sec\": {:.1},\n",
                "      \"decisions_per_kilostep\": {:.1},\n",
                "      \"poll_cache_hit_rate\": {:.4}\n",
                "    }}"
            ),
            self.n,
            self.adversary,
            self.interval,
            self.instances,
            self.decided_instances,
            self.min_decided_fraction,
            self.decisions,
            self.total_steps,
            self.elapsed_sec,
            self.decisions_per_sec,
            self.decisions_per_kilostep,
            self.poll_cache_hit_rate,
        )
    }
}

/// The service battery's aggregate report.
#[derive(Clone, Debug)]
pub struct ServiceBenchReport {
    /// One row per (n, adversary, interval) cell, grid order.
    pub rows: Vec<ServiceRow>,
}

impl ServiceBenchReport {
    /// The rows as a standalone JSON document (`{"bench": "service",
    /// "rows": [...]}`), for `paperbench service --json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"service\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.rows
                .iter()
                .map(ServiceRow::to_json)
                .collect::<Vec<_>>()
                .join(",\n"),
        )
    }
}

fn run_cell(scope: Scope, n: usize, adversary: &str, interval: Step) -> ServiceRow {
    let spec: AdversarySpec = adversary.parse().expect("service battery adversary spec");
    let instances = service_instances(scope);
    let scenario = Scenario::new(n)
        .adversary(spec)
        .service(instances, interval);
    let start = Instant::now();
    let service = scenario.run_service(1).expect("service battery scenario");
    let elapsed_sec = start.elapsed().as_secs_f64();
    let decisions = service.totals.decisions();
    let (hits, misses) = service.poll_cache_stats;
    ServiceRow {
        n,
        adversary: adversary.to_string(),
        interval,
        instances: instances as u64,
        decided_instances: service.decided_instances(),
        min_decided_fraction: service.min_decided_fraction(),
        decisions,
        total_steps: service.total_steps,
        elapsed_sec,
        decisions_per_sec: decisions as f64 / elapsed_sec,
        decisions_per_kilostep: service.decisions_per_kilostep(),
        poll_cache_hit_rate: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    }
}

/// Runs the service battery for the scope. Serial by design — see the
/// module docs.
#[must_use]
pub fn run(scope: Scope) -> ServiceBenchReport {
    let mut rows = Vec::new();
    for n in service_sizes(scope) {
        for adversary in SERVICE_ADVERSARIES {
            for interval in SERVICE_INTERVALS {
                rows.push(run_cell(scope, n, adversary, interval));
            }
        }
    }
    ServiceBenchReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_service_battery_sustains_full_decisions() {
        let report = run(Scope::Quick);
        assert_eq!(
            report.rows.len(),
            SERVICE_ADVERSARIES.len() * SERVICE_INTERVALS.len()
        );
        for row in &report.rows {
            assert_eq!(row.n, 256);
            assert_eq!(row.decided_instances, row.instances);
            assert_eq!(row.min_decided_fraction, 1.0);
            assert!(row.decisions_per_sec > 0.0);
            assert!(row.decisions_per_kilostep > 0.0);
            assert!(
                row.poll_cache_hit_rate > 0.5,
                "chained instances must mostly hit the persistent poll cache, got {}",
                row.poll_cache_hit_rate
            );
        }
        // Fault-free rows decide with every node; silent-coalition rows
        // with every *correct* node.
        let fault_free = &report.rows[0];
        assert_eq!(
            fault_free.decisions,
            fault_free.instances * fault_free.n as u64
        );
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"service\""));
        assert!(json.contains("\"decisions_per_sec\""));
        assert!(json.contains("\"sched:[0..5]silent:9;[5..]none\""));
    }

    #[test]
    fn service_sizes_stay_below_the_engine_frontier() {
        for scope in [
            Scope::Quick,
            Scope::Default,
            Scope::Full,
            Scope::Huge,
            Scope::Extreme,
        ] {
            let max = *service_sizes(scope).iter().max().unwrap();
            assert!(max <= 4096, "service cells chain serial full runs");
            assert!(service_instances(scope) >= 3);
        }
    }
}
