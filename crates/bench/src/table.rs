//! Minimal Markdown table rendering for experiment output.

use std::fmt::Write as _;

/// One rendered experiment table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Table title (experiment id + paper artifact).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table `{}`",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table as Markdown.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "| {} |", header.join(" | "));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "| {} |", sep.join(" | "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "| {} |", cells.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n> {note}");
        }
        out
    }
}

/// Formats a float with sensible precision for table cells.
#[must_use]
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.push_row(vec!["64".into(), "5".into()]);
        t.push_row(vec!["128".into(), "5".into()]);
        t.note("rounds stay constant");
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| n   | rounds |"));
        assert!(s.contains("| 128 | 5      |"));
        assert!(s.contains("> rounds stay constant"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(3.21987), "3.22");
        assert_eq!(fnum(42.37), "42.4");
        assert_eq!(fnum(12345.6), "12346");
    }
}
