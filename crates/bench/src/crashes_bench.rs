//! Crash–restart recovery battery (`paperbench crashes`).
//!
//! Drives [`fba_scenario::Scenario::faults_spec`] over a grid of system
//! size × dark-window length and reports the rejoin cost of the
//! crash–restart fault family: every cell crashes a fixed fraction of
//! the system mid-push-wave (`crash:[3..3+len]k`), lets the engine drop
//! their traffic for the window, restarts them from their checkpoints,
//! and measures how many steps and extra messages the victims need to
//! reconverge. Each crashed run is paired with the no-fault baseline at
//! the same seed, so the message overhead column is a like-for-like
//! difference, not an absolute. The report lands in `BENCH_engine.json`
//! as the `crashes` section (see
//! [`crate::engine_bench::EngineBenchReport`]).

use fba_recovery::CrashSpec;
use fba_scenario::Scenario;
use fba_sim::Step;

use crate::engine_bench::bench_seeds;
use crate::scope::Scope;

/// Scope-dependent system sizes for the crash battery. Same ladder as
/// the service battery — every cell runs full AER executions twice
/// (crashed + baseline) per seed.
#[must_use]
pub fn crash_sizes(scope: Scope) -> Vec<usize> {
    match scope {
        Scope::Quick => vec![256],
        Scope::Default => vec![1024],
        Scope::Full | Scope::Huge => vec![1024, 4096],
        Scope::Extreme => vec![4096],
    }
}

/// The dark-window lengths the battery sweeps. Every window opens at
/// step 3 — mid push wave, after the victims have accepted candidates
/// worth checkpointing but before the pull phase settles.
pub const CRASH_WINDOW_LENGTHS: [Step; 3] = [4, 8, 16];

/// The fraction of the system each cell crashes (`n / CRASH_DIVISOR`,
/// at least one node).
pub const CRASH_DIVISOR: usize = 16;

/// The crash schedule for one cell: one dark window `[3..3+len)` taking
/// out `n / 16` nodes.
#[must_use]
pub fn cell_spec(n: usize, window_len: Step) -> CrashSpec {
    let count = (n / CRASH_DIVISOR).max(1);
    format!("crash:[3..{}]{count}", 3 + window_len)
        .parse()
        .expect("generated crash spec parses")
}

/// One cell of the crash battery, aggregated over the scope's seeds.
#[derive(Clone, Debug)]
pub struct CrashRow {
    /// System size.
    pub n: usize,
    /// The crash schedule the cell ran (`crash:` grammar).
    pub spec: String,
    /// Total dark steps across the schedule's windows.
    pub dark_steps: Step,
    /// Nodes crashed in the widest window.
    pub crashed: usize,
    /// Seeded runs aggregated (each paired with a baseline run).
    pub runs: u64,
    /// Worst fraction of correct nodes that decided, across runs.
    pub min_decided_fraction: f64,
    /// Whether every crashed correct node decided in every run.
    pub all_rejoined: bool,
    /// Worst steps-past-restart any victim needed to decide; `None`
    /// (JSON `null`) if some victim never decided.
    pub max_rejoin_steps: Option<Step>,
    /// Mean steps-past-restart over all rejoined victims and runs;
    /// `None` if no victim rejoined.
    pub mean_rejoin_steps: Option<f64>,
    /// Mean deliveries dropped into dark windows per run.
    pub mean_msgs_dropped: f64,
    /// Mean messages sent minus the same-seed no-fault baseline —
    /// the recovery traffic bill (can be negative: dark nodes also
    /// stop sending).
    pub mean_msg_overhead: f64,
}

impl CrashRow {
    pub(crate) fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"spec\": \"{}\",\n",
                "      \"dark_steps\": {},\n",
                "      \"crashed\": {},\n",
                "      \"runs\": {},\n",
                "      \"min_decided_fraction\": {:.4},\n",
                "      \"all_rejoined\": {},\n",
                "      \"max_rejoin_steps\": {},\n",
                "      \"mean_rejoin_steps\": {},\n",
                "      \"mean_msgs_dropped\": {:.1},\n",
                "      \"mean_msg_overhead\": {:.1}\n",
                "    }}"
            ),
            self.n,
            self.spec,
            self.dark_steps,
            self.crashed,
            self.runs,
            self.min_decided_fraction,
            self.all_rejoined,
            self.max_rejoin_steps
                .map_or_else(|| "null".to_string(), |s| s.to_string()),
            self.mean_rejoin_steps
                .map_or_else(|| "null".to_string(), |m| format!("{m:.2}")),
            self.mean_msgs_dropped,
            self.mean_msg_overhead,
        )
    }
}

/// The crash battery's aggregate report.
#[derive(Clone, Debug)]
pub struct CrashBenchReport {
    /// One row per (n, window length) cell, grid order.
    pub rows: Vec<CrashRow>,
}

impl CrashBenchReport {
    /// The rows as a standalone JSON document (`{"bench": "crashes",
    /// "rows": [...]}`), for `paperbench crashes --json`.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"bench\": \"crashes\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            self.rows
                .iter()
                .map(CrashRow::to_json)
                .collect::<Vec<_>>()
                .join(",\n"),
        )
    }
}

fn run_cell(n: usize, spec: &CrashSpec, seeds: &[u64]) -> CrashRow {
    let crashed = Scenario::new(n).faults_spec(spec.clone());
    let baseline = Scenario::new(n);
    let mut min_decided_fraction = 1.0f64;
    let mut all_rejoined = true;
    let mut max_rejoin: Option<Step> = Some(0);
    let mut rejoin_means: Vec<f64> = Vec::new();
    let mut dropped = 0u64;
    let mut overhead = 0i64;
    for &seed in seeds {
        let run = crashed
            .run(seed)
            .expect("crash battery scenario")
            .into_aer();
        let base = baseline
            .run(seed)
            .expect("crash battery baseline")
            .into_aer();
        min_decided_fraction = min_decided_fraction.min(run.run.metrics.decided_fraction());
        let rejoin = run.rejoin().expect("crash plan ran");
        all_rejoined &= rejoin.all_rejoined();
        max_rejoin = match (max_rejoin, rejoin.max_rejoin_steps()) {
            (Some(acc), Some(worst)) => Some(acc.max(worst)),
            _ => None,
        };
        rejoin_means.extend(
            rejoin
                .outages
                .iter()
                .filter_map(|outage| outage.mean_rejoin_steps),
        );
        dropped += run.run.metrics.msgs_dropped();
        overhead +=
            run.run.metrics.total_msgs_sent() as i64 - base.run.metrics.total_msgs_sent() as i64;
    }
    let runs = seeds.len() as u64;
    CrashRow {
        n,
        spec: spec.to_string(),
        dark_steps: spec.windows().iter().map(|w| w.end - w.start).sum(),
        crashed: spec.max_count(),
        runs,
        min_decided_fraction,
        all_rejoined,
        max_rejoin_steps: max_rejoin,
        mean_rejoin_steps: crate::scope::mean_opt(&rejoin_means),
        mean_msgs_dropped: dropped as f64 / runs as f64,
        mean_msg_overhead: overhead as f64 / runs as f64,
    }
}

/// Runs the crash battery for the scope: the size ladder times the
/// dark-window length sweep. Serial by design — rejoin latency is a
/// per-run quantity, and the cells at the large sizes hold the engine's
/// whole arena set resident.
#[must_use]
pub fn run(scope: Scope) -> CrashBenchReport {
    let seeds = bench_seeds(scope);
    let mut rows = Vec::new();
    for n in crash_sizes(scope) {
        for window_len in CRASH_WINDOW_LENGTHS {
            rows.push(run_cell(n, &cell_spec(n, window_len), &seeds));
        }
    }
    CrashBenchReport { rows }
}

/// Runs the battery with one explicit schedule (`paperbench crashes
/// --spec crash:[3..9]64`) instead of the window-length sweep. Sizes the
/// schedule cannot fit (a window crashing more nodes than the system
/// has) are skipped; if no scope size fits, the report is empty — the
/// CLI turns that into a usage error.
#[must_use]
pub fn run_spec(scope: Scope, spec: &CrashSpec) -> CrashBenchReport {
    let seeds = bench_seeds(scope);
    CrashBenchReport {
        rows: crash_sizes(scope)
            .into_iter()
            .filter(|&n| spec.max_count() <= n)
            .map(|n| run_cell(n, spec, &seeds))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_crash_battery_reconverges_everywhere() {
        let report = run(Scope::Quick);
        assert_eq!(report.rows.len(), CRASH_WINDOW_LENGTHS.len());
        for row in &report.rows {
            assert_eq!(row.n, 256);
            assert_eq!(row.crashed, 256 / CRASH_DIVISOR);
            assert_eq!(
                row.min_decided_fraction, 1.0,
                "restarted nodes must reconverge ({})",
                row.spec
            );
            assert!(row.all_rejoined, "{}", row.spec);
            assert!(row.max_rejoin_steps.is_some(), "{}", row.spec);
            assert!(row.mean_rejoin_steps.is_some(), "{}", row.spec);
            assert!(row.mean_msgs_dropped > 0.0, "dark windows drop traffic");
        }
        // Longer dark windows cannot shrink the traffic dropped into them.
        assert!(report.rows[0].mean_msgs_dropped <= report.rows[2].mean_msgs_dropped);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"crashes\""));
        assert!(json.contains("\"crash:[3..7]16\""));
        assert!(json.contains("\"mean_msg_overhead\""));
    }

    #[test]
    fn explicit_specs_skip_sizes_they_cannot_fit() {
        let wide: CrashSpec = "crash:[2..5]1024".parse().expect("parses");
        let report = run_spec(Scope::Quick, &wide);
        assert!(report.rows.is_empty(), "1024 victims cannot fit n = 256");
        let narrow: CrashSpec = "crash:[2..5]8".parse().expect("parses");
        let report = run_spec(Scope::Quick, &narrow);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].spec, "crash:[2..5]8");
        assert_eq!(report.rows[0].min_decided_fraction, 1.0);
    }

    #[test]
    fn crash_sizes_cover_the_acceptance_regimes() {
        assert_eq!(crash_sizes(Scope::Full), vec![1024, 4096]);
        assert!(crash_sizes(Scope::Quick) == vec![256]);
        for scope in [Scope::Quick, Scope::Default, Scope::Full, Scope::Huge] {
            assert!(!crash_sizes(scope).is_empty());
        }
    }
}
