//! # fba-bench — the benchmark harness of the reproduction
//!
//! Regenerates every table and figure of *Fast Byzantine Agreement*
//! (PODC 2013): run `cargo run --release -p fba-bench --bin paperbench --
//! all` for the full battery, or pass individual experiment ids
//! (`f1a-time`, `f1b`, `l6`, …; see [`experiments::ALL_IDS`]). Criterion
//! micro-benchmarks of the protocol components live under `benches/`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod battery;
pub mod crashes_bench;
pub mod engine_bench;
pub mod experiments;
pub mod json;
pub mod par;
pub mod scope;
pub mod service_bench;
pub mod sweep;
pub mod table;

pub use battery::{product2, product3, Agg, Battery, Report, SeedPolicy};
pub use experiments::{run_experiment, ALL_IDS};
pub use par::{par_map, parallelism};
pub use scope::Scope;
pub use table::Table;
