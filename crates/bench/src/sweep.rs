//! The command-line battery: `paperbench sweep --axis … --metric …`.
//!
//! An arbitrary axes × metrics battery built entirely from spec strings —
//! no new code per experiment. Axis values parse through the existing
//! scenario spec grammar (`silent:9`, `flood`, `corner:512`, `async:3`,
//! `sched:[0..5]silent;[5..]flood`, …), so everything the [`Scenario`]
//! builder can express is sweepable from the shell:
//!
//! ```bash
//! paperbench sweep --axis n=256,1024 \
//!     --axis 'adversary=silent,flood,sched:[0..3]flood;[3..]silent' \
//!     --metric rounds,bits --scope quick --json sweep.json
//! ```
//!
//! Values split on commas, with spec-aware re-merging: a segment that is
//! not a valid value by itself but completes the previous segment into
//! one (the comma *parameters* of `random-flood:16,4`) is merged back,
//! so comma-parameterized specs work in a plain list
//! (`--axis adversary=silent,random-flood:16,4` is two values). Repeating
//! `--axis` with the same name extends the axis. Unknown axes, metrics
//! or malformed values are rejected with the catalogue before anything
//! runs.

use fba_ae::UnknowingAssignment;
use fba_scenario::{AerRun, Phase, PreconditionSpec, Scenario};
use fba_sim::{AdversarySpec, NetworkSpec};

use crate::battery::{Agg, Battery, SeedPolicy};

/// The sweepable axes, with their value grammar.
pub const AXES: &[(&str, &str)] = &[
    ("n", "system sizes, e.g. n=256,1024"),
    (
        "adversary",
        "adversary specs, e.g. adversary=silent,flood,corner:512",
    ),
    ("network", "timing specs, e.g. network=sync,async:2"),
    ("knowing", "knowledge fractions, e.g. knowing=0.6,0.8"),
];

/// The sweepable metrics, with what each reports per cell.
pub const METRICS: &[(&str, &str)] = &[
    (
        "decided",
        "percent of correct nodes that decided (mean over seeds)",
    ),
    (
        "rounds",
        "median decision step (mean over seeds; n/a if never reached)",
    ),
    (
        "rounds-max",
        "step the last correct node decided (mean; n/a if anyone never did)",
    ),
    ("bits", "amortized bits per node (mean)"),
    ("msgs", "messages sent by correct nodes, per node (mean)"),
    (
        "wrong",
        "correct nodes that decided a non-gstring value (sum, must be 0)",
    ),
];

/// Metrics run when `--metric` is omitted.
pub const DEFAULT_METRICS: &[&str] = &["decided", "rounds", "bits"];

/// One cell of the CLI sweep: every axis pinned to a value (undeclared
/// axes keep these defaults: `n=256`, no adversary, sync network,
/// knowing `0.8`).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// System size.
    pub n: usize,
    /// Adversary spec.
    pub adversary: AdversarySpec,
    /// Timing spec.
    pub network: NetworkSpec,
    /// Knowledge fraction of the synthetic precondition.
    pub knowing: f64,
}

impl Default for SweepPoint {
    fn default() -> Self {
        SweepPoint {
            n: 256,
            adversary: AdversarySpec::None,
            network: NetworkSpec::Sync,
            knowing: 0.8,
        }
    }
}

impl SweepPoint {
    fn scenario(&self, strict: bool) -> Scenario {
        let mut scenario = Scenario::new(self.n)
            .phase(Phase::Aer {
                precondition: PreconditionSpec::new(
                    self.knowing,
                    UnknowingAssignment::RandomPerNode,
                ),
            })
            .adversary(self.adversary.clone())
            .network(self.network);
        if strict {
            scenario = scenario.strict();
        }
        scenario
    }

    fn axis_value(&self, axis: &str) -> String {
        match axis {
            "n" => self.n.to_string(),
            "adversary" => self.adversary.to_string(),
            "network" => self.network.to_string(),
            "knowing" => format!("{}", self.knowing),
            other => unreachable!("unknown sweep axis `{other}` survived validation"),
        }
    }

    fn with_axis(mut self, axis: &str, value: &str) -> Result<Self, String> {
        match axis {
            "n" => {
                self.n = value
                    .parse()
                    .map_err(|e| format!("bad n value `{value}`: {e}"))?;
            }
            "adversary" => {
                self.adversary = value
                    .parse()
                    .map_err(|e| format!("bad adversary value `{value}`: {e}"))?;
            }
            "network" => {
                self.network = value
                    .parse()
                    .map_err(|e| format!("bad network value `{value}`: {e}"))?;
            }
            "knowing" => {
                let knowing: f64 = value
                    .parse()
                    .map_err(|e| format!("bad knowing value `{value}`: {e}"))?;
                if !(0.0..=1.0).contains(&knowing) {
                    return Err(format!("bad knowing value `{value}`: must be in [0, 1]"));
                }
                self.knowing = knowing;
            }
            other => {
                let known: Vec<&str> = AXES.iter().map(|(name, _)| *name).collect();
                return Err(format!(
                    "unknown axis `{other}`; known axes: {}",
                    known.join(", ")
                ));
            }
        }
        Ok(self)
    }
}

/// Splits one `--axis name=<list>` value list on commas, merging back
/// segments that are comma *parameters* of the previous value rather
/// than values themselves: a segment that does not parse as an `axis`
/// value on its own, but completes the previous candidate into one, is
/// appended to it. `silent,random-flood:16,4` therefore yields
/// `["silent", "random-flood:16,4"]`, while a genuinely malformed
/// segment stays separate so validation reports it by name.
#[must_use]
pub fn split_axis_values(axis: &str, raw: &str) -> Vec<String> {
    let parses = |value: &str| SweepPoint::default().with_axis(axis, value).is_ok();
    let mut values: Vec<String> = Vec::new();
    for segment in raw.split(',') {
        if let Some(last) = values.last_mut() {
            let candidate = format!("{last},{segment}");
            if !parses(segment) && parses(&candidate) {
                *last = candidate;
                continue;
            }
        }
        values.push(segment.to_string());
    }
    values
}

fn metric_column(
    battery: Battery<SweepPoint, AerRun>,
    metric: &str,
) -> Result<Battery<SweepPoint, AerRun>, String> {
    Ok(match metric {
        "decided" => battery.col("decided %", Agg::Mean, |o: &AerRun| {
            Some(o.run.metrics.decided_fraction() * 100.0)
        }),
        "rounds" => battery.col("rounds p50", Agg::Mean, |o: &AerRun| {
            o.run.metrics.decided_quantile(0.5).map(|s| s as f64)
        }),
        "rounds-max" => battery.col("rounds max", Agg::Mean, |o: &AerRun| {
            o.run.all_decided_at.map(|s| s as f64)
        }),
        "bits" => battery.col("bits/node", Agg::Mean, |o: &AerRun| {
            Some(o.run.metrics.amortized_bits())
        }),
        "msgs" => battery.col("msgs/node", Agg::Mean, |o: &AerRun| {
            Some(o.run.metrics.correct_msgs_sent() as f64 / o.config.n as f64)
        }),
        "wrong" => battery.col("wrong", Agg::Sum, |o: &AerRun| {
            Some(o.wrong_decisions() as f64)
        }),
        other => {
            let known: Vec<&str> = METRICS.iter().map(|(name, _)| *name).collect();
            return Err(format!(
                "unknown metric `{other}`; known metrics: {}",
                known.join(", ")
            ));
        }
    })
}

/// Builds the sweep battery from declared axes (name → values, in
/// declaration order; repeated names extend the same axis) and metric
/// names. `seeds` overrides the scope seed set; `strict` disables
/// retries.
///
/// # Errors
///
/// Returns a usage-style message on unknown axes or metrics, malformed
/// values, or a cell the scenario builder rejects (pre-flighted here so
/// invalid combinations never reach the parallel fan-out).
pub fn battery(
    axes: &[(String, Vec<String>)],
    metrics: &[String],
    seeds: Option<Vec<u64>>,
    strict: bool,
) -> Result<Battery<SweepPoint, AerRun>, String> {
    // Merge repeated axis declarations, preserving first-seen order.
    let mut merged: Vec<(String, Vec<String>)> = Vec::new();
    for (name, values) in axes {
        if values.is_empty() {
            return Err(format!("axis `{name}` has no values"));
        }
        match merged.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => existing.extend(values.iter().cloned()),
            None => merged.push((name.clone(), values.clone())),
        }
    }
    if merged.is_empty() {
        merged.push(("n".to_string(), vec!["256".to_string()]));
    }

    // The axis product, first declared axis outermost.
    let mut points = vec![SweepPoint::default()];
    for (name, values) in &merged {
        let mut expanded = Vec::with_capacity(points.len() * values.len());
        for point in &points {
            for value in values {
                expanded.push(point.clone().with_axis(name, value)?);
            }
        }
        points = expanded;
    }
    for point in &points {
        point.scenario(strict).validate().map_err(|e| {
            format!(
                "invalid cell (n={}, adversary={}, network={}): {e}",
                point.n, point.adversary, point.network
            )
        })?;
    }

    let axis_names: Vec<String> = merged.iter().map(|(name, _)| name.clone()).collect();
    let title = format!(
        "sweep — {} × [{}]",
        axis_names.join(" × "),
        metrics.join(", ")
    );
    let label_axes = axis_names.clone();
    let names: Vec<&str> = axis_names.iter().map(String::as_str).collect();
    let mut battery = Battery::new("sweep", title, move |p: &SweepPoint, seed| {
        p.scenario(strict)
            .run(seed)
            .expect("sweep cell pre-flighted")
            .into_aer()
    })
    .axes(&names, move |p: &SweepPoint| {
        label_axes.iter().map(|axis| p.axis_value(axis)).collect()
    })
    .points(points)
    .point_n(|p: &SweepPoint| p.n);
    if let Some(seeds) = seeds {
        battery = battery.seeds(SeedPolicy::Fixed(seeds));
    }
    for metric in metrics {
        battery = metric_column(battery, metric)?;
    }
    Ok(battery
        .note("Declarative CLI battery: AER on a synthetic precondition, axes × metrics as data.")
        .note("Undeclared axes default to n=256, adversary=none, network=sync, knowing=0.8."))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use crate::scope::Scope;

    fn axis(name: &str, values: &[&str]) -> (String, Vec<String>) {
        (
            name.to_string(),
            values.iter().map(ToString::to_string).collect(),
        )
    }

    #[test]
    fn rejects_unknown_axes_metrics_and_bad_values() {
        let err = battery(&[axis("planet", &["mars"])], &[], None, false).unwrap_err();
        assert!(err.contains("unknown axis"), "{err}");
        assert!(err.contains("adversary"), "lists the catalogue: {err}");
        let err =
            battery(&[axis("n", &["64"])], &["latency".to_string()], None, false).unwrap_err();
        assert!(err.contains("unknown metric"), "{err}");
        assert!(err.contains("rounds"), "lists the catalogue: {err}");
        let err = battery(&[axis("adversary", &["martian"])], &[], None, false).unwrap_err();
        assert!(err.contains("bad adversary value"), "{err}");
        let err = battery(&[axis("knowing", &["1.5"])], &[], None, false).unwrap_err();
        assert!(err.contains("must be in [0, 1]"), "{err}");
        // A grammatical but semantically invalid schedule is pre-flighted.
        let err = battery(
            &[axis("adversary", &["sched:[0..2]silent:3;[2..]flood"])],
            &[],
            None,
            false,
        )
        .unwrap_err();
        assert!(err.contains("invalid cell"), "{err}");
    }

    #[test]
    fn sweep_runs_axes_by_metrics_and_reports_both_ways() {
        let battery = battery(
            &[
                axis("n", &["48"]),
                axis("adversary", &["silent", "flood"]),
                axis("network", &["sync", "async:2"]),
            ],
            &[
                "decided".to_string(),
                "rounds".to_string(),
                "wrong".to_string(),
            ],
            Some(vec![3]),
            false,
        )
        .expect("valid sweep");
        let report = battery.report(Scope::Quick);
        assert_eq!(report.table.rows.len(), 4, "2 adversaries × 2 networks");
        assert_eq!(
            report.table.columns,
            vec![
                "n",
                "adversary",
                "network",
                "decided %",
                "rounds p50",
                "wrong"
            ]
        );
        for row in &report.table.rows {
            let decided: f64 = row[3].parse().unwrap();
            assert!(decided > 99.0, "row {row:?}");
            assert_eq!(row[5], "0", "safety under sweep: {row:?}");
        }
        let json = Value::parse(&report.cells_json).expect("sweep JSON parses");
        assert_eq!(json.get("battery").and_then(Value::as_str), Some("sweep"));
        let cells = json.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 4);
        let coords = cells[0].get("axes").and_then(Value::as_object).unwrap();
        assert_eq!(coords["adversary"].as_str(), Some("silent"));
    }

    #[test]
    fn comma_parameters_remerge_into_one_axis_value() {
        assert_eq!(
            split_axis_values("adversary", "silent,random-flood:16,4"),
            vec!["silent", "random-flood:16,4"]
        );
        assert_eq!(
            split_axis_values("adversary", "random-flood:16,4,flood,pull-flood:8,2"),
            vec!["random-flood:16,4", "flood", "pull-flood:8,2"]
        );
        // Genuinely malformed segments stay separate so validation names
        // them, and plain lists are untouched.
        assert_eq!(
            split_axis_values("adversary", "silent,martian"),
            vec!["silent", "martian"]
        );
        assert_eq!(split_axis_values("n", "64,128"), vec!["64", "128"]);
        // End to end: a comma-parameterized spec sweeps like any other.
        let battery = battery(
            &[
                axis("n", &["48"]),
                (
                    "adversary".to_string(),
                    split_axis_values("adversary", "silent,random-flood:4,2"),
                ),
            ],
            &["decided".to_string()],
            Some(vec![1]),
            false,
        )
        .expect("comma-parameterized sweep builds");
        let table = battery.table(Scope::Quick);
        assert_eq!(table.rows.len(), 2);
        assert!(
            table.rows.iter().any(|r| r[1] == "random-flood:4,2"),
            "{:?}",
            table.rows
        );
    }

    #[test]
    fn repeated_axis_flags_extend_the_axis() {
        let battery = battery(
            &[
                axis("n", &["48"]),
                axis("adversary", &["silent"]),
                axis("adversary", &["flood"]),
            ],
            &["decided".to_string()],
            Some(vec![1]),
            false,
        )
        .expect("valid sweep");
        let table = battery.table(Scope::Quick);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns[..3], ["n", "adversary", "decided %"]);
    }
}
