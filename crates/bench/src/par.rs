//! Deterministic parallel sweep execution.
//!
//! Experiment sweeps are embarrassingly parallel: every `(n, seed,
//! adversary)` run is a pure function of its inputs (see the determinism
//! contract in `fba-sim`), so fanning runs across cores cannot change any
//! result — only the wall clock. [`par_map`] provides rayon-style
//! data-parallel mapping built on `std::thread::scope` (the container
//! image carries no external crates): workers pull items off a shared
//! atomic cursor (dynamic load balancing — a sweep mixes `n = 64` and
//! `n = 4096` runs whose costs differ by orders of magnitude) and write
//! results *by input index*, so the output order, and therefore every
//! downstream aggregation, is identical to a serial map.
//!
//! `FBA_THREADS` overrides the worker count (`FBA_THREADS=1` forces
//! serial execution); the equivalence test `tests/par_equiv.rs` asserts
//! parallel output == serial output element for element.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a sweep should use. Delegates to
/// [`fba_exec::default_parallelism`] — **the** one thread-count policy
/// (`FBA_THREADS` if set, else available parallelism; an explicit
/// `BackendSpec` shard count outranks both) — so sweep fan-out and the
/// threaded execution backend always agree on what `FBA_THREADS` means.
#[must_use]
pub fn parallelism() -> usize {
    fba_exec::default_parallelism()
}

/// Maps `f` over `items`, fanning across [`parallelism`] threads, and
/// returns results in input order — bit-identical to
/// `items.into_iter().map(f).collect()`.
///
/// # Panics
///
/// Propagates a panic from `f` (the first observed one) after all workers
/// stop.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = parallelism().min(items.len().max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("sweep item lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let result = f(item);
                *results[i].lock().expect("sweep result lock") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result lock poisoned")
                .unwrap_or_else(|| panic!("sweep item {i} produced no result"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(items, |x| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_map_on_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |x: u64| {
            // Skewed workloads exercise the dynamic cursor.
            let iters = if x.is_multiple_of(7) { 200_000 } else { 10 };
            (0..iters).fold(x, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        };
        let serial: Vec<u64> = (0..64).map(work).collect();
        assert_eq!(par_map(items, work), serial);
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![9], |x| x + 1), vec![10]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(parallelism() >= 1);
    }
}
