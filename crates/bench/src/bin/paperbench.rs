//! CLI: regenerate the paper's tables and figures, run one arbitrary
//! scenario, or run an arbitrary axes × metrics battery.
//!
//! ```bash
//! paperbench all              # every experiment, default scope
//! paperbench f1a-time l6      # specific experiments
//! paperbench --quick all      # CI-sized
//! paperbench --full all       # adds the largest classic system sizes
//! paperbench --scope huge …   # scale frontier (n = 4096/8192)
//! paperbench --json out/ all  # also write per-cell JSON records per id
//! paperbench bench-engine     # throughput battery -> BENCH_engine.json
//! paperbench scenario --n 2048 --adversary flood --network async:3 --phase composed
//! paperbench sweep --axis n=256,1024 --axis adversary=silent,flood \
//!     --metric rounds,bits --scope quick --json sweep.json
//! ```
//!
//! Experiment sweeps fan independent seeded runs across every core
//! (deterministically — parallel output is bit-identical to serial; set
//! `FBA_THREADS=1` to force serial execution).
//!
//! Unknown experiment ids, subcommands, scope names, adversary specs,
//! phases, sweep axes or sweep metrics print usage and exit non-zero
//! without running anything.

use std::process::ExitCode;

use fba_bench::{
    crashes_bench, engine_bench, parallelism, run_experiment, service_bench, sweep, Scope, ALL_IDS,
};
use fba_exec::{BackendSpec, BACKEND_EXPECTED};
use fba_recovery::{CrashSpec, CRASH_EXPECTED};
use fba_scenario::{Baseline, Phase, Scenario, ScenarioOutcome};
use fba_sim::{AdversarySpec, NetworkSpec};

fn usage() {
    eprintln!(
        "usage: paperbench [--quick|--full|--huge|--scope <quick|default|full|huge|extreme>] \
         [--json <dir>] [--backend <{BACKEND_EXPECTED}>] [--n <sizes>] <experiment id>... | \
         all | bench-engine | service | crashes <flags> | scenario <flags> | sweep <flags>"
    );
    eprintln!("known ids: {}", ALL_IDS.join(", "));
    eprintln!("--backend applies to bench-engine (default `sim`; `threads[:k]` runs");
    eprintln!("  each benchmark on the node-parallel executor instead of fanning");
    eprintln!("  whole runs across cores); --n overrides its regime sizes");
    eprintln!("scenario flags: see `paperbench scenario --help`");
    eprintln!("sweep flags:    see `paperbench sweep --help`");
    eprintln!("service:        sustained-service battery (`service --help`)");
    eprintln!("crashes:        crash–restart recovery battery (`crashes --help`)");
}

fn sweep_usage() {
    eprintln!(
        "usage: paperbench sweep [--scope <quick|default|full|huge|extreme>] \
         [--axis <name>=<v1,v2,…>]... [--metric <m1,m2,…>]... [--seeds <s1,s2,…>] \
         [--strict] [--json <path>]"
    );
    eprintln!("  axes (values parse through the scenario spec grammar):");
    for (name, what) in sweep::AXES {
        eprintln!("      {name:<10} {what}");
    }
    eprintln!("  metrics (default: {}):", sweep::DEFAULT_METRICS.join(","));
    for (name, what) in sweep::METRICS {
        eprintln!("      {name:<10} {what}");
    }
    eprintln!("  values split on commas; comma *parameters* re-merge automatically");
    eprintln!("  (adversary=silent,random-flood:16,4 is two values). Repeating");
    eprintln!("  --axis with the same name extends the axis.");
}

/// Handles one scope-selecting flag (`--quick`/`--full`/`--huge`, or
/// `--scope <name>` consuming its value from `iter`). Returns `None`
/// when `arg` is not a scope flag, `Some(Err(()))` when `--scope` has a
/// missing or unknown value — one parser shared by every subcommand so
/// the scope surface cannot drift between them.
fn scope_flag(arg: &str, iter: &mut std::slice::Iter<'_, String>) -> Option<Result<Scope, ()>> {
    match arg {
        "--quick" => Some(Ok(Scope::Quick)),
        "--full" => Some(Ok(Scope::Full)),
        "--huge" => Some(Ok(Scope::Huge)),
        "--scope" => Some(iter.next().and_then(|name| Scope::parse(name)).ok_or(())),
        _ => None,
    }
}

#[allow(clippy::too_many_lines)] // flat flag parsing, mirroring run_scenario
fn run_sweep(args: &[String]) -> ExitCode {
    let mut scope = Scope::Default;
    let mut axes: Vec<(String, Vec<String>)> = Vec::new();
    let mut metrics: Vec<String> = Vec::new();
    let mut seeds: Option<Vec<u64>> = None;
    let mut strict = false;
    let mut json_path: Option<String> = None;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match scope_flag(arg, &mut iter) {
            Some(Ok(parsed)) => {
                scope = parsed;
                continue;
            }
            Some(Err(())) => {
                eprintln!("error: --scope needs one of quick|default|full|huge|extreme");
                sweep_usage();
                return ExitCode::FAILURE;
            }
            None => {}
        }
        let mut value_of = |flag: &str| -> Result<String, ExitCode> {
            iter.next().cloned().ok_or_else(|| {
                eprintln!("error: {flag} needs a value");
                sweep_usage();
                ExitCode::FAILURE
            })
        };
        match arg.as_str() {
            "--help" | "-h" => {
                sweep_usage();
                return ExitCode::SUCCESS;
            }
            "--axis" => {
                let raw = match value_of("--axis") {
                    Ok(raw) => raw,
                    Err(code) => return code,
                };
                let Some((name, values)) = raw.split_once('=') else {
                    eprintln!("error: --axis needs <name>=<v1,v2,…> (got `{raw}`)");
                    sweep_usage();
                    return ExitCode::FAILURE;
                };
                axes.push((name.to_string(), sweep::split_axis_values(name, values)));
            }
            "--metric" => {
                let raw = match value_of("--metric") {
                    Ok(raw) => raw,
                    Err(code) => return code,
                };
                metrics.extend(raw.split(',').map(ToString::to_string));
            }
            "--seeds" => {
                let raw = match value_of("--seeds") {
                    Ok(raw) => raw,
                    Err(code) => return code,
                };
                match raw
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<u64>, _>>()
                {
                    Ok(parsed) => seeds = Some(parsed),
                    Err(err) => {
                        eprintln!("error: bad --seeds `{raw}`: {err}");
                        sweep_usage();
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--strict" => strict = true,
            "--json" => {
                json_path = match value_of("--json") {
                    Ok(raw) => Some(raw),
                    Err(code) => return code,
                };
            }
            other => {
                eprintln!("error: unknown sweep flag `{other}`");
                sweep_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if metrics.is_empty() {
        metrics = sweep::DEFAULT_METRICS
            .iter()
            .map(ToString::to_string)
            .collect();
    }
    let battery = match sweep::battery(&axes, &metrics, seeds, strict) {
        Ok(battery) => battery,
        Err(err) => {
            eprintln!("error: {err}");
            sweep_usage();
            return ExitCode::FAILURE;
        }
    };
    // Pre-flight the JSON destination before a potentially hours-long
    // sweep, so a bad path cannot discard the results at the very end:
    // create the parent directory, then probe-write the file itself
    // (catches an unwritable or directory destination up front).
    if let Some(path) = &json_path {
        if let Some(parent) = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
        {
            if let Err(err) = std::fs::create_dir_all(parent) {
                eprintln!("error: could not create {}: {err}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        if let Err(err) = std::fs::write(path, "") {
            eprintln!("error: could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
    }
    let started = std::time::Instant::now();
    let report = battery.report(scope);
    println!("{}", report.table.render());
    println!("_(ran in {:.1?}, scope {scope:?})_", started.elapsed());
    if let Some(path) = json_path {
        if let Err(err) = std::fs::write(&path, &report.cells_json) {
            eprintln!("error: could not write {path}: {err}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}

fn scenario_usage() {
    eprintln!(
        "usage: paperbench scenario [--n <nodes>] [--seed <seed>] [--faults <t>] \
         [--adversary <spec>] [--network <spec>] [--phase <spec>] [--knowing <fraction>] \
         [--strict]"
    );
    eprintln!("  --adversary: one of");
    for (grammar, what) in AdversarySpec::CATALOGUE {
        eprintln!("      {grammar:<28} {what}");
    }
    eprintln!("  --network:   sync | async[:max_delay]");
    eprintln!("  --phase:     {}", Phase::EXPECTED);
}

/// Applies `--knowing` to the phases that synthesise a precondition;
/// `None` for phases that have no knowledge fraction to set (rejected
/// rather than silently ignored).
fn with_knowing(phase: Phase, knowing: f64) -> Option<Phase> {
    match phase {
        Phase::Aer { mut precondition } => {
            precondition.knowing = knowing;
            Some(Phase::Aer { precondition })
        }
        Phase::Baseline(Baseline::Klst { mut precondition }) => {
            precondition.knowing = knowing;
            Some(Phase::Baseline(Baseline::Klst { precondition }))
        }
        Phase::Baseline(Baseline::Flood { mut precondition }) => {
            precondition.knowing = knowing;
            Some(Phase::Baseline(Baseline::Flood { precondition }))
        }
        _ => None,
    }
}

#[allow(clippy::too_many_lines)] // flat flag parsing + per-phase reporting
fn run_scenario(args: &[String]) -> ExitCode {
    let mut n = 256usize;
    let mut seed = 1u64;
    let mut faults: Option<usize> = None;
    let mut adversary = AdversarySpec::None;
    let mut network = NetworkSpec::Sync;
    let mut phase: Phase = "aer".parse().expect("default phase parses");
    let mut knowing: Option<f64> = None;
    let mut strict = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| -> Result<String, ExitCode> {
            iter.next().cloned().ok_or_else(|| {
                eprintln!("error: {flag} needs a value");
                scenario_usage();
                ExitCode::FAILURE
            })
        };
        macro_rules! parse_flag {
            ($flag:literal) => {{
                let raw = match value_of($flag) {
                    Ok(raw) => raw,
                    Err(code) => return code,
                };
                match raw.parse() {
                    Ok(parsed) => parsed,
                    Err(err) => {
                        eprintln!("error: bad {} `{raw}`: {err}", $flag);
                        scenario_usage();
                        return ExitCode::FAILURE;
                    }
                }
            }};
        }
        match arg.as_str() {
            "--help" | "-h" => {
                scenario_usage();
                return ExitCode::SUCCESS;
            }
            "--n" => n = parse_flag!("--n"),
            "--seed" => seed = parse_flag!("--seed"),
            "--faults" => faults = Some(parse_flag!("--faults")),
            "--adversary" => adversary = parse_flag!("--adversary"),
            "--network" => network = parse_flag!("--network"),
            "--phase" => phase = parse_flag!("--phase"),
            "--knowing" => knowing = Some(parse_flag!("--knowing")),
            "--strict" => strict = true,
            other => {
                eprintln!("error: unknown scenario flag `{other}`");
                scenario_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(k) = knowing {
        let Some(updated) = with_knowing(phase, k) else {
            eprintln!("error: --knowing applies only to the aer, baseline:klst and baseline:flood phases (got `{phase}`)");
            scenario_usage();
            return ExitCode::FAILURE;
        };
        phase = updated;
    }
    let mut scenario = Scenario::new(n)
        .adversary(adversary.clone())
        .network(network)
        .phase(phase);
    if let Some(t) = faults {
        scenario = scenario.faults(t);
    }
    if strict {
        scenario = scenario.strict();
    }

    println!("scenario: n={n} seed={seed} phase={phase} adversary={adversary} network={network}");
    let started = std::time::Instant::now();
    let outcome = match scenario.run(seed) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("error: {err}");
            scenario_usage();
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        ScenarioOutcome::Aer(out) => {
            println!(
                "decided {}/{} correct nodes, {} wrong, all decided at {}, {:.0} bits/node",
                out.run.outputs.len(),
                out.correct_nodes(),
                out.wrong_decisions(),
                out.run
                    .all_decided_at
                    .map_or("-".to_string(), |s| format!("step {s}")),
                out.run.metrics.amortized_bits(),
            );
            if let Some(report) = &out.corner {
                println!(
                    "corner plan: {} victims, {} overload targets, depth {}",
                    report.blocked_victims, report.overload_targets, report.planned_depth
                );
            }
        }
        ScenarioOutcome::Ae(run) => {
            println!(
                "almost-everywhere phase decided: {:.1}% of correct nodes knowing after \
                 {} rounds, {:.0} bits/node",
                run.outcome.knowing_fraction * 100.0,
                run.outcome.run.metrics.steps,
                run.outcome.run.metrics.amortized_bits(),
            );
        }
        ScenarioOutcome::Composed(c) => {
            println!(
                "composed BA {}: decided {}/{} correct nodes, AE {} rounds + AER {}, \
                 {:.0} bits/node total",
                if c.report.success() {
                    "SUCCESS"
                } else {
                    "partial"
                },
                c.report.decided_nodes,
                c.report.correct_nodes,
                c.report.ae_rounds,
                c.report
                    .aer_rounds
                    .map_or("-".to_string(), |s| s.to_string()),
                c.report.ae_bits_per_node + c.report.aer_bits_per_node,
            );
        }
        ScenarioOutcome::Baseline(b) => {
            let metrics = b.outcome.metrics();
            println!(
                "baseline decided {:.1}% of correct nodes, {} rounds, {:.0} bits/node",
                metrics.decided_fraction() * 100.0,
                b.outcome
                    .all_decided_at()
                    .map_or("-".to_string(), |s| s.to_string()),
                metrics.amortized_bits(),
            );
        }
    }
    println!("_(ran in {:.1?})_", started.elapsed());
    ExitCode::SUCCESS
}

fn service_usage() {
    eprintln!(
        "usage: paperbench service [--quick|--full|--huge|--scope \
         <quick|default|full|huge|extreme>] [--json]"
    );
    eprintln!("  chains agreement instances over one persistent engine session and reports");
    eprintln!("  decisions/sec sustained per (n, adversary, arrival-interval) cell; --json");
    eprintln!("  prints the rows as a JSON document after the table");
}

fn print_service_rows(rows: &[service_bench::ServiceRow]) {
    println!(
        "{:>6} {:<30} {:>8} {:>5} {:>7} {:>9} {:>11} {:>12} {:>9}",
        "n",
        "adversary",
        "interval",
        "inst",
        "decided",
        "elapsed",
        "dec/sec",
        "dec/kstep",
        "poll-hit"
    );
    for row in rows {
        println!(
            "{:>6} {:<30} {:>8} {:>5} {:>7} {:>8.2}s {:>11.1} {:>12.1} {:>8.1}%",
            row.n,
            row.adversary,
            row.interval,
            row.instances,
            row.decided_instances,
            row.elapsed_sec,
            row.decisions_per_sec,
            row.decisions_per_kilostep,
            row.poll_cache_hit_rate * 100.0,
        );
    }
}

fn run_service_bench(args: &[String]) -> ExitCode {
    let mut scope = Scope::Default;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match scope_flag(arg, &mut iter) {
            Some(Ok(parsed)) => {
                scope = parsed;
                continue;
            }
            Some(Err(())) => {
                eprintln!("error: --scope needs one of quick|default|full|huge|extreme");
                service_usage();
                return ExitCode::FAILURE;
            }
            None => {}
        }
        match arg.as_str() {
            "--help" | "-h" => {
                service_usage();
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            other => {
                eprintln!("error: unknown service flag `{other}`");
                service_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "service: n = {:?}, {} instance(s)/cell, serial cells…",
        service_bench::service_sizes(scope),
        service_bench::service_instances(scope),
    );
    let started = std::time::Instant::now();
    let report = service_bench::run(scope);
    print_service_rows(&report.rows);
    println!("_(ran in {:.1?}, scope {scope:?})_", started.elapsed());
    if json {
        print!("{}", report.to_json());
    }
    ExitCode::SUCCESS
}

fn crashes_usage() {
    eprintln!(
        "usage: paperbench crashes [--quick|--full|--huge|--scope \
         <quick|default|full|huge|extreme>] [--spec <schedule>] [--json]"
    );
    eprintln!("  crashes a fraction of the system mid-run (dark windows), restarts the");
    eprintln!("  victims from their checkpoints, and reports rejoin cost per window");
    eprintln!("  length vs a same-seed no-fault baseline; --json prints the rows as a");
    eprintln!("  JSON document after the table");
    eprintln!("  --spec replaces the window-length sweep with one explicit schedule:");
    eprintln!("      {CRASH_EXPECTED}");
    eprintln!("  windows must be ordered, non-overlapping, non-empty, start past step 0,");
    eprintln!("  and crash at least one node each");
}

fn print_crash_rows(rows: &[crashes_bench::CrashRow]) {
    println!(
        "{:>6} {:<18} {:>5} {:>8} {:>5} {:>8} {:>9} {:>11} {:>9} {:>10}",
        "n",
        "spec",
        "dark",
        "crashed",
        "runs",
        "decided",
        "rejoined",
        "max-rejoin",
        "dropped",
        "overhead"
    );
    for row in rows {
        println!(
            "{:>6} {:<18} {:>5} {:>8} {:>5} {:>8.4} {:>9} {:>11} {:>9.0} {:>10.0}",
            row.n,
            row.spec,
            row.dark_steps,
            row.crashed,
            row.runs,
            row.min_decided_fraction,
            if row.all_rejoined { "all" } else { "PARTIAL" },
            row.max_rejoin_steps
                .map_or("n/a".to_string(), |s| s.to_string()),
            row.mean_msgs_dropped,
            row.mean_msg_overhead,
        );
    }
}

fn run_crashes_bench(args: &[String]) -> ExitCode {
    let mut scope = Scope::Default;
    let mut json = false;
    let mut spec: Option<CrashSpec> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match scope_flag(arg, &mut iter) {
            Some(Ok(parsed)) => {
                scope = parsed;
                continue;
            }
            Some(Err(())) => {
                eprintln!("error: --scope needs one of quick|default|full|huge|extreme");
                crashes_usage();
                return ExitCode::FAILURE;
            }
            None => {}
        }
        match arg.as_str() {
            "--help" | "-h" => {
                crashes_usage();
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--spec" => {
                let Some(raw) = iter.next() else {
                    eprintln!("error: --spec needs a value");
                    crashes_usage();
                    return ExitCode::FAILURE;
                };
                match raw.parse::<CrashSpec>() {
                    Ok(parsed) if parsed.is_empty() => {
                        eprintln!("error: --spec `{raw}` schedules no crashes");
                        crashes_usage();
                        return ExitCode::FAILURE;
                    }
                    Ok(parsed) => spec = Some(parsed),
                    Err(err) => {
                        eprintln!("error: bad --spec `{raw}`: {err}");
                        crashes_usage();
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("error: unknown crashes flag `{other}`");
                crashes_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "crashes: n = {:?}, {}…",
        crashes_bench::crash_sizes(scope),
        spec.as_ref().map_or_else(
            || format!("window lengths {:?}", crashes_bench::CRASH_WINDOW_LENGTHS),
            |s| format!("schedule {s}"),
        ),
    );
    let started = std::time::Instant::now();
    let report = match &spec {
        Some(spec) => {
            let report = crashes_bench::run_spec(scope, spec);
            if report.rows.is_empty() {
                eprintln!(
                    "error: --spec `{spec}` crashes more nodes than any scope size has \
                     (n = {:?})",
                    crashes_bench::crash_sizes(scope)
                );
                crashes_usage();
                return ExitCode::FAILURE;
            }
            report
        }
        None => crashes_bench::run(scope),
    };
    print_crash_rows(&report.rows);
    println!("_(ran in {:.1?}, scope {scope:?})_", started.elapsed());
    if json {
        print!("{}", report.to_json());
    }
    ExitCode::SUCCESS
}

fn run_engine_bench(scope: Scope, backend: BackendSpec, sizes: Option<Vec<usize>>) -> ExitCode {
    let sizes = sizes.unwrap_or_else(|| engine_bench::bench_sizes(scope));
    println!(
        "bench-engine: n = {sizes:?}, backend {backend}, {} worker thread(s)…",
        parallelism()
    );
    let mut report = engine_bench::run_sized(scope, backend, sizes);
    println!(
        "bench-engine: service battery, n = {:?}…",
        service_bench::service_sizes(scope)
    );
    report.service = service_bench::run(scope).rows;
    print_service_rows(&report.service);
    println!(
        "bench-engine: crash battery, n = {:?}…",
        crashes_bench::crash_sizes(scope)
    );
    report.crashes = crashes_bench::run(scope).rows;
    print_crash_rows(&report.crashes);
    let json = report.to_json();
    print!("{json}");
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => {
            println!("wrote BENCH_engine.json");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: could not write BENCH_engine.json: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    // Large-n batteries churn gigabytes of short-lived queue/arena memory;
    // raising the glibc trim/mmap thresholds keeps it inside the heap
    // instead of round-tripping through mmap/munmap. No-op elsewhere.
    let _ = fba_sim::tune_allocator_for_bulk();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("scenario") {
        return run_scenario(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return run_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("service") {
        return run_service_bench(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("crashes") {
        return run_crashes_bench(&args[1..]);
    }
    let mut scope = Scope::Default;
    let mut ids: Vec<String> = Vec::new();
    let mut bench_engine = false;
    let mut backend = BackendSpec::Sim;
    let mut sizes: Option<Vec<usize>> = None;
    let mut json_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match scope_flag(arg, &mut iter) {
            Some(Ok(parsed)) => {
                scope = parsed;
                continue;
            }
            Some(Err(())) => {
                eprintln!("error: --scope needs one of quick|default|full|huge|extreme");
                usage();
                return ExitCode::FAILURE;
            }
            None => {}
        }
        match arg.as_str() {
            "--json" => {
                let Some(dir) = iter.next() else {
                    eprintln!("error: --json needs a directory path");
                    usage();
                    return ExitCode::FAILURE;
                };
                json_dir = Some(dir.clone());
            }
            "--backend" => {
                let spec = iter.next().and_then(|v| v.parse::<BackendSpec>().ok());
                let Some(spec) = spec else {
                    eprintln!("error: --backend needs {BACKEND_EXPECTED}");
                    usage();
                    return ExitCode::FAILURE;
                };
                backend = spec;
            }
            "--n" => {
                let parsed = iter.next().map(|v| {
                    v.split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<Vec<usize>, _>>()
                });
                match parsed {
                    Some(Ok(ns)) if !ns.is_empty() => sizes = Some(ns),
                    _ => {
                        eprintln!("error: --n needs a comma-separated size list (e.g. 4096,16384)");
                        usage();
                        return ExitCode::FAILURE;
                    }
                }
            }
            "all" => ids.extend(ALL_IDS.iter().map(ToString::to_string)),
            "bench-engine" => bench_engine = true,
            other => {
                if ALL_IDS.contains(&other) {
                    ids.push(other.to_string());
                } else {
                    eprintln!("error: unknown experiment id or subcommand `{other}`");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if bench_engine {
        let code = run_engine_bench(scope, backend, sizes);
        if ids.is_empty() || code == ExitCode::FAILURE {
            return code;
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    if let Some(dir) = &json_dir {
        if let Err(err) = std::fs::create_dir_all(dir) {
            eprintln!("error: could not create {dir}: {err}");
            return ExitCode::FAILURE;
        }
    }
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scope) {
            Ok(report) => {
                println!("{}", report.table.render());
                println!(
                    "_(generated in {:.1?}, scope {scope:?})_\n",
                    started.elapsed()
                );
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{id}.json");
                    if let Err(err) = std::fs::write(&path, &report.cells_json) {
                        eprintln!("error: could not write {path}: {err}");
                        return ExitCode::FAILURE;
                    }
                    println!("wrote {path}");
                }
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
