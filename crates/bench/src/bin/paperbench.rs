//! CLI: regenerate the paper's tables and figures.
//!
//! ```bash
//! paperbench all              # every experiment, default scope
//! paperbench f1a-time l6      # specific experiments
//! paperbench --quick all      # CI-sized
//! paperbench --full all       # adds the largest classic system sizes
//! paperbench --scope huge …   # scale frontier (n = 4096/8192)
//! paperbench bench-engine     # throughput battery -> BENCH_engine.json
//! ```
//!
//! Experiment sweeps fan independent seeded runs across every core
//! (deterministically — parallel output is bit-identical to serial; set
//! `FBA_THREADS=1` to force serial execution).
//!
//! Unknown experiment ids, subcommands or scope names print usage and
//! exit non-zero without running anything.

use std::process::ExitCode;

use fba_bench::{engine_bench, parallelism, run_experiment, Scope, ALL_IDS};

fn usage() {
    eprintln!(
        "usage: paperbench [--quick|--full|--huge|--scope <quick|default|full|huge>] \
         <experiment id>... | all | bench-engine"
    );
    eprintln!("known ids: {}", ALL_IDS.join(", "));
}

fn run_engine_bench(scope: Scope) -> ExitCode {
    println!(
        "bench-engine: n = {:?}, {} worker thread(s)…",
        engine_bench::bench_sizes(scope),
        parallelism()
    );
    let report = engine_bench::run(scope);
    let json = report.to_json();
    print!("{json}");
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => {
            println!("wrote BENCH_engine.json");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: could not write BENCH_engine.json: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scope = Scope::Default;
    let mut ids: Vec<String> = Vec::new();
    let mut bench_engine = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scope = Scope::Quick,
            "--full" => scope = Scope::Full,
            "--huge" => scope = Scope::Huge,
            "--scope" => {
                let Some(parsed) = iter.next().and_then(|name| Scope::parse(name)) else {
                    eprintln!("error: --scope needs one of quick|default|full|huge");
                    usage();
                    return ExitCode::FAILURE;
                };
                scope = parsed;
            }
            "all" => ids.extend(ALL_IDS.iter().map(ToString::to_string)),
            "bench-engine" => bench_engine = true,
            other => {
                if ALL_IDS.contains(&other) {
                    ids.push(other.to_string());
                } else {
                    eprintln!("error: unknown experiment id or subcommand `{other}`");
                    usage();
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if bench_engine {
        let code = run_engine_bench(scope);
        if ids.is_empty() || code == ExitCode::FAILURE {
            return code;
        }
    }
    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scope) {
            Ok(table) => {
                println!("{}", table.render());
                println!(
                    "_(generated in {:.1?}, scope {scope:?})_\n",
                    started.elapsed()
                );
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
