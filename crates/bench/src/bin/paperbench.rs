//! CLI: regenerate the paper's tables and figures.
//!
//! ```bash
//! paperbench all            # every experiment, default scope
//! paperbench f1a-time l6    # specific experiments
//! paperbench --quick all    # CI-sized
//! paperbench --full all     # adds the largest system sizes
//! paperbench bench-engine   # throughput battery -> BENCH_engine.json
//! ```
//!
//! Experiment sweeps fan independent seeded runs across every core
//! (deterministically — parallel output is bit-identical to serial; set
//! `FBA_THREADS=1` to force serial execution).

use std::process::ExitCode;

use fba_bench::{engine_bench, parallelism, run_experiment, Scope, ALL_IDS};

fn run_engine_bench(scope: Scope) -> ExitCode {
    println!(
        "bench-engine: n = {}, {} worker thread(s)…",
        engine_bench::bench_size(scope),
        parallelism()
    );
    let report = engine_bench::run(scope);
    let json = report.to_json();
    print!("{json}");
    match std::fs::write("BENCH_engine.json", &json) {
        Ok(()) => {
            println!("wrote BENCH_engine.json");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: could not write BENCH_engine.json: {err}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scope = Scope::Default;
    let mut ids: Vec<String> = Vec::new();
    let mut bench_engine = false;
    for arg in &args {
        match arg.as_str() {
            "--quick" => scope = Scope::Quick,
            "--full" => scope = Scope::Full,
            "all" => ids.extend(ALL_IDS.iter().map(ToString::to_string)),
            "bench-engine" => bench_engine = true,
            other => ids.push(other.to_string()),
        }
    }
    if bench_engine {
        let code = run_engine_bench(scope);
        if ids.is_empty() || code == ExitCode::FAILURE {
            return code;
        }
    }
    if ids.is_empty() {
        eprintln!("usage: paperbench [--quick|--full] <experiment id>... | all | bench-engine");
        eprintln!("known ids: {}", ALL_IDS.join(", "));
        return ExitCode::FAILURE;
    }
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scope) {
            Ok(table) => {
                println!("{}", table.render());
                println!(
                    "_(generated in {:.1?}, scope {scope:?})_\n",
                    started.elapsed()
                );
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
