//! CLI: regenerate the paper's tables and figures.
//!
//! ```bash
//! paperbench all            # every experiment, default scope
//! paperbench f1a-time l6    # specific experiments
//! paperbench --quick all    # CI-sized
//! paperbench --full all     # adds the largest system sizes
//! ```

use std::process::ExitCode;

use fba_bench::{run_experiment, Scope, ALL_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scope = Scope::Default;
    let mut ids: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--quick" => scope = Scope::Quick,
            "--full" => scope = Scope::Full,
            "all" => ids.extend(ALL_IDS.iter().map(ToString::to_string)),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: paperbench [--quick|--full] <experiment id>... | all");
        eprintln!("known ids: {}", ALL_IDS.join(", "));
        return ExitCode::FAILURE;
    }
    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scope) {
            Ok(table) => {
                println!("{}", table.render());
                println!("_(generated in {:.1?}, scope {scope:?})_\n", started.elapsed());
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
