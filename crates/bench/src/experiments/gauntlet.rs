//! The composed-fault-schedule gauntlet: mixed-adversary batteries.
//!
//! The paper's adversary is adaptive in behaviour — it can corrupt the
//! schedule, silence nodes, and flood at different moments of one run.
//! The `sched:` grammar makes that matrix *data*: every row of this
//! battery is a parseable fault schedule (windows of distinct strategies)
//! swept across system sizes, reporting decision time and communication
//! per schedule. Safety and liveness must hold across every window
//! boundary, which no single-strategy experiment exercises.
//!
//! All runs use the asynchronous engine (`async:1`) with the
//! delay-scaled poll timeout, handing the adversary its full scheduling
//! power in every window.

use fba_ae::UnknowingAssignment;
use fba_scenario::PollTimeoutSpec;
use fba_sim::{AdversarySpec, NetworkSpec};

use crate::battery::{product2, Agg, Battery, Report, SeedPolicy};
use crate::experiments::common::{aer_scenario, KNOWING};
use crate::scope::Scope;

/// The schedule matrix: every entry is a parseable adversary spec — the
/// battery is data, not wiring. The bare `silent` row is the
/// single-strategy control the schedules are read against.
pub const SCHEDULES: &[(&str, &str)] = &[
    ("silent (control)", "silent"),
    ("flood->silent", "sched:[0..1]flood;[1..]silent"),
    ("silent->bad-string", "sched:[0..2]silent;[2..]bad-string"),
    (
        "flood->equivocate->corner",
        "sched:[0..1]flood;[1..3]equivocate:8;[3..]corner:256",
    ),
    ("corner->silent", "sched:[0..4]corner:256;[4..]silent"),
];

/// System sizes per scope. The default scope runs the full
/// 256/1024/4096 matrix the schedule battery is specified over; quick
/// keeps CI-sized systems.
#[must_use]
pub fn gauntlet_sizes(scope: Scope) -> Vec<usize> {
    match scope {
        Scope::Quick => vec![64, 128],
        Scope::Default | Scope::Full => vec![256, 1024, 4096],
        Scope::Huge => vec![1024, 4096, 8192],
        Scope::Extreme => vec![4096, 8192, 16384],
    }
}

/// One cell's statistics: decided %, p50 / max decision steps, bits.
type Cell = (f64, Option<f64>, Option<f64>, f64);

fn run_cell(name: &str, spec: &str, n: usize, seed: u64) -> Cell {
    let spec: AdversarySpec = spec.parse().expect("gauntlet schedule parses");
    let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
        .adversary(spec)
        .network(NetworkSpec::Async { max_delay: 1 })
        .poll_timeout(PollTimeoutSpec::DelayScaled)
        .run(seed)
        .expect("gauntlet scenario")
        .into_aer();
    assert_eq!(
        out.wrong_decisions(),
        0,
        "safety violated under fault schedule {name} (n={n}, seed={seed})"
    );
    (
        out.run.metrics.decided_fraction() * 100.0,
        out.run.metrics.decided_quantile(0.5).map(|s| s as f64),
        out.run.all_decided_at.map(|s| s as f64),
        out.run.metrics.amortized_bits(),
    )
}

/// The `gauntlet` experiment: decision steps and bits per schedule.
#[must_use]
pub fn table(scope: Scope) -> Report {
    Battery::new(
        "gauntlet",
        "gauntlet — composed fault schedules: mixed-adversary batteries",
        |&((name, spec), n): &((&str, &str), usize), seed| run_cell(name, spec, n, seed),
    )
    .axes(&["schedule", "n"], |&((name, _), n)| {
        vec![name.to_string(), n.to_string()]
    })
    .points(product2(SCHEDULES, &gauntlet_sizes(scope)))
    .point_n(|&(_, n)| n)
    // Adversarial runs at n >= 4096 cost ~10 s each; the thinning is a
    // declared policy surfaced in the notes and JSON, not a silent take(3).
    .seeds(SeedPolicy::ThinAt {
        threshold: 4096,
        max: 3,
    })
    .col("decided %", Agg::Mean, |o: &Cell| Some(o.0))
    .col("rounds p50", Agg::Mean, |o: &Cell| o.1)
    .col("rounds max", Agg::Mean, |o: &Cell| o.2)
    .col("bits/node", Agg::Mean, |o: &Cell| Some(o.3))
    .note("Each schedule assigns one strategy per step window (the sched: grammar);")
    .note("windows keep their own state, so e.g. the corner window still reports its")
    .note("plan. Async engine, delay-scaled poll timeout, SharedAdversarial precondition.")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_gauntlet_decides_everywhere() {
        let t = table(Scope::Quick).table;
        assert_eq!(
            t.rows.len(),
            SCHEDULES.len() * gauntlet_sizes(Scope::Quick).len()
        );
        for row in &t.rows {
            let decided: f64 = row[2].parse().unwrap();
            assert!(decided > 99.0, "row {row:?}");
            assert_ne!(row[4], "n/a", "someone never decided: {row:?}");
        }
        // The declared thinning policy surfaces in the notes.
        assert!(
            t.notes.iter().any(|n| n.contains("n >= 4096")),
            "{:?}",
            t.notes
        );
    }

    #[test]
    fn mixed_three_strategy_schedule_decides_at_scale() {
        // The acceptance bar: a schedule mixing >= 3 strategies completes
        // with everyone deciding at n = 1024 (debug builds run n = 256;
        // release/CI and the paperbench battery cover 1024+).
        let n = if cfg!(debug_assertions) { 256 } else { 1024 };
        let spec: AdversarySpec = "sched:[0..1]flood;[1..3]equivocate:8;[3..]corner:256"
            .parse()
            .expect("parses");
        let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
            .adversary(spec)
            .network(NetworkSpec::Async { max_delay: 1 })
            .poll_timeout(PollTimeoutSpec::DelayScaled)
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert!(out.run.all_decided(), "everyone decides at n={n}");
        assert_eq!(out.wrong_decisions(), 0);
        assert!(out.corner.is_some(), "corner window state surfaces");
    }
}
