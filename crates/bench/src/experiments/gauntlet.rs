//! The composed-fault-schedule gauntlet: mixed-adversary batteries.
//!
//! The paper's adversary is adaptive in behaviour — it can corrupt the
//! schedule, silence nodes, and flood at different moments of one run.
//! The `sched:` grammar makes that matrix *data*: every row of this
//! battery is a parseable fault schedule (windows of distinct strategies)
//! swept across system sizes, reporting decision time and communication
//! per schedule. Safety and liveness must hold across every window
//! boundary, which no single-strategy experiment exercises.
//!
//! All runs use the asynchronous engine (`async:1`) with the
//! delay-scaled poll timeout, handing the adversary its full scheduling
//! power in every window.

use fba_ae::UnknowingAssignment;
use fba_scenario::PollTimeoutSpec;
use fba_sim::{AdversarySpec, NetworkSpec};

use crate::experiments::common::{aer_scenario, KNOWING};
use crate::par::par_map;
use crate::scope::{mean, mean_cell, mean_opt, opt_cell, Scope};
use crate::table::{fnum, Table};

/// The schedule matrix: every entry is a parseable adversary spec — the
/// battery is data, not wiring. The bare `silent` row is the
/// single-strategy control the schedules are read against.
pub const SCHEDULES: &[(&str, &str)] = &[
    ("silent (control)", "silent"),
    ("flood->silent", "sched:[0..1]flood;[1..]silent"),
    ("silent->bad-string", "sched:[0..2]silent;[2..]bad-string"),
    (
        "flood->equivocate->corner",
        "sched:[0..1]flood;[1..3]equivocate:8;[3..]corner:256",
    ),
    ("corner->silent", "sched:[0..4]corner:256;[4..]silent"),
];

/// System sizes per scope. The default scope runs the full
/// 256/1024/4096 matrix the schedule battery is specified over; quick
/// keeps CI-sized systems.
#[must_use]
pub fn gauntlet_sizes(scope: Scope) -> Vec<usize> {
    match scope {
        Scope::Quick => vec![64, 128],
        Scope::Default | Scope::Full => vec![256, 1024, 4096],
        Scope::Huge => vec![1024, 4096, 8192],
    }
}

/// Seeds per cell: the scope's seed set, thinned at n ≥ 4096 where a
/// single adversarial run costs ~10 s (the thinning is printed in the
/// table notes, not silent).
fn gauntlet_seeds(scope: Scope, n: usize) -> Vec<u64> {
    let seeds = scope.seeds();
    if n >= 4096 {
        seeds.into_iter().take(3).collect()
    } else {
        seeds
    }
}

/// The `gauntlet` experiment: decision steps and bits per schedule.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let mut t = Table::new(
        "gauntlet — composed fault schedules: mixed-adversary batteries",
        &[
            "schedule",
            "n",
            "decided %",
            "rounds p50",
            "rounds max",
            "bits/node",
        ],
    );
    let sizes = gauntlet_sizes(scope);
    let mut configs: Vec<(&str, AdversarySpec, usize, Vec<u64>)> = Vec::new();
    for &(name, spec) in SCHEDULES {
        let spec: AdversarySpec = spec.parse().expect("gauntlet schedule parses");
        for &n in &sizes {
            configs.push((name, spec.clone(), n, gauntlet_seeds(scope, n)));
        }
    }
    let cells: Vec<(AdversarySpec, usize, u64)> = configs
        .iter()
        .flat_map(|(_, spec, n, seeds)| seeds.iter().map(move |&seed| (spec.clone(), *n, seed)))
        .collect();
    // Fan the (schedule, n, seed) grid across cores (pure seeded runs;
    // aggregation in input order == serial sweep).
    let outcomes = par_map(cells, |(spec, n, seed)| {
        let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
            .adversary(spec)
            .network(NetworkSpec::Async { max_delay: 1 })
            .poll_timeout(PollTimeoutSpec::DelayScaled)
            .run(seed)
            .expect("gauntlet scenario")
            .into_aer();
        assert_eq!(
            out.wrong_decisions(),
            0,
            "safety violated under a fault schedule (n={n}, seed={seed})"
        );
        (
            out.run.metrics.decided_fraction() * 100.0,
            out.run.metrics.decided_quantile(0.5).map(|s| s as f64),
            out.run.all_decided_at.map(|s| s as f64),
            out.run.metrics.amortized_bits(),
        )
    });
    let mut offset = 0;
    for (name, _, n, seeds) in &configs {
        let rows = &outcomes[offset..offset + seeds.len()];
        offset += seeds.len();
        let decided: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let p50: Vec<f64> = rows.iter().filter_map(|r| r.1).collect();
        let max: Vec<f64> = rows.iter().filter_map(|r| r.2).collect();
        let bits: Vec<f64> = rows.iter().map(|r| r.3).collect();
        t.push_row(vec![
            (*name).to_string(),
            n.to_string(),
            fnum(mean(&decided)),
            mean_cell(&p50),
            opt_cell(mean_opt(&max)),
            fnum(mean(&bits)),
        ]);
    }
    t.note("Each schedule assigns one strategy per step window (the sched: grammar);");
    t.note("windows keep their own state, so e.g. the corner window still reports its");
    t.note("plan. Async engine, delay-scaled poll timeout, SharedAdversarial precondition.");
    t.note("n >= 4096 cells run 3 seeds (others the scope's full seed set).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_gauntlet_decides_everywhere() {
        let t = table(Scope::Quick);
        assert_eq!(
            t.rows.len(),
            SCHEDULES.len() * gauntlet_sizes(Scope::Quick).len()
        );
        for row in &t.rows {
            let decided: f64 = row[2].parse().unwrap();
            assert!(decided > 99.0, "row {row:?}");
            assert_ne!(row[4], "n/a", "someone never decided: {row:?}");
        }
    }

    #[test]
    fn mixed_three_strategy_schedule_decides_at_scale() {
        // The acceptance bar: a schedule mixing >= 3 strategies completes
        // with everyone deciding at n = 1024 (debug builds run n = 256;
        // release/CI and the paperbench battery cover 1024+).
        let n = if cfg!(debug_assertions) { 256 } else { 1024 };
        let spec: AdversarySpec = "sched:[0..1]flood;[1..3]equivocate:8;[3..]corner:256"
            .parse()
            .expect("parses");
        let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
            .adversary(spec)
            .network(NetworkSpec::Async { max_delay: 1 })
            .poll_timeout(PollTimeoutSpec::DelayScaled)
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert!(out.run.all_decided(), "everyone decides at n={n}");
        assert_eq!(out.wrong_decisions(), 0);
        assert!(out.corner.is_some(), "corner window state surfaces");
    }
}
