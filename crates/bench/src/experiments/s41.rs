//! §4.1 / §2.2 sampler-property experiments: the Lemma 1 and Lemma 2
//! behaviour of the instantiated sampler functions — a pure-computation
//! battery (no engine runs).

use fba_samplers::properties::{
    good_majority_fraction, greedy_min_border, indegree_stats, property1_bad_fraction,
    random_good_set,
};
use fba_samplers::{PollSampler, QuorumSampler, StringKey};
use fba_sim::rng::derive_rng;

use crate::battery::{Agg, Battery, Report, SeedPolicy};
use crate::scope::Scope;

/// The sampler-property table: Lemma 1 goodness, Lemma 2 Property 1 & 2,
/// and overload (in-degree) concentration.
#[must_use]
pub fn table(scope: Scope) -> Report {
    type Cell = (f64, f64, f64, f64);
    let sizes = match scope {
        Scope::Quick => vec![256usize],
        Scope::Default => vec![256, 1024, 4096],
        Scope::Full => vec![256, 1024, 4096, 16384],
        Scope::Huge => vec![1024, 4096, 16384, 65536],
        Scope::Extreme => vec![4096, 16384, 65536],
    };
    Battery::new(
        "s41",
        "s41 — §4.1: empirical sampler properties",
        |&n: &usize, seed| -> Cell {
            let d = fba_samplers::default_quorum_size(n, 3.0);
            let mut rng = derive_rng(seed, &[0x41]);
            let q = QuorumSampler::new(seed, fba_samplers::tags::PUSH, n, d);
            let j = PollSampler::new(seed, n, d, PollSampler::default_cardinality(n));
            // Good set of measure 1/2 + ε (ε = 0.15 here).
            let good = random_good_set(n, 0.65, &mut rng);
            let goodness = good_majority_fraction(&q, StringKey(seed), &good);
            let p1 = property1_bad_fraction(&j, &good, 2, &mut rng);
            let family = (n / (fba_sim::ceil_log2(n) as usize).max(1)).clamp(4, 64);
            let reports = greedy_min_border(&j, &[family], 8, &mut rng);
            let (max_in, _) = indegree_stats(&q, StringKey(seed));
            (goodness, p1, reports[0].ratio, max_in as f64 / d as f64)
        },
    )
    .axes(&["n"], |n| vec![n.to_string()])
    .points(sizes)
    .point_n(|&n| n)
    .seeds(SeedPolicy::Capped { max: 3 })
    .col_point("d", |&n| {
        fba_samplers::default_quorum_size(n, 3.0).to_string()
    })
    .col("good-majority quorums", Agg::Mean, |o: &Cell| Some(o.0))
    .col("bad poll lists (P1)", Agg::Mean, |o: &Cell| Some(o.1))
    .col("min border ratio (P2)", Agg::Mean, |o: &Cell| Some(o.2))
    .col("max in-degree / d", Agg::Mean, |o: &Cell| Some(o.3))
    .note("Lemma 1: good-majority fraction → 1, no node overloaded (in-degree O(d)).")
    .note("Lemma 2 P1: vanishing fraction of (x, r) poll lists with good minority.")
    .note("Lemma 2 P2: the adversarially-grown family's border ratio must exceed 2/3.")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_hold_at_quick_scale() {
        let t = table(Scope::Quick).table;
        for row in &t.rows {
            let goodness: f64 = row[2].parse().unwrap();
            let p1: f64 = row[3].parse().unwrap();
            let p2: f64 = row[4].parse().unwrap();
            let overload: f64 = row[5].parse().unwrap();
            assert!(goodness > 0.9, "{row:?}");
            assert!(p1 < 0.1, "{row:?}");
            assert!(p2 > 2.0 / 3.0, "{row:?}");
            assert!(overload < 3.0, "{row:?}");
        }
    }
}
