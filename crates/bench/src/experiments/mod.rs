//! One module per experiment family; see DESIGN.md §5 for the index
//! mapping every table/figure of the paper to these functions.
//!
//! Every experiment is a declarative [`crate::battery::Battery`]: its
//! sweep (cell product, seed policy, parallel fan-out, aggregation) and
//! both reporters (Markdown table + JSON cell records) are data declared
//! on the battery — no module hand-rolls cell loops or aggregation.

pub mod ablate_d;
pub mod ae_exp;
pub mod common;
pub mod fig1a;
pub mod fig1b;
pub mod fig2;
pub mod gauntlet;
pub mod gbits;
pub mod lemmas;
pub mod recovery;
pub mod s41;
pub mod timing;

use crate::battery::Report;
use crate::scope::Scope;

/// All experiment ids, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "f1a-time",
    "f1a-bits",
    "f1a-load",
    "f1b",
    "f2a",
    "f2b",
    "l3",
    "l4",
    "l5",
    "l6",
    "l7",
    "l8",
    "l9",
    "l10",
    "s41",
    "ae",
    "gbits",
    "gauntlet",
    "recovery",
    "ablate-cap",
    "ablate-d",
];

/// Runs one experiment by id, producing its table and JSON cell records.
///
/// # Errors
///
/// Returns the list of known ids when `id` is unknown.
pub fn run_experiment(id: &str, scope: Scope) -> Result<Report, String> {
    Ok(match id {
        "f1a-time" => fig1a::time(scope),
        "f1a-bits" => fig1a::bits(scope),
        "f1a-load" => fig1a::load(scope),
        "f1b" => fig1b::table(scope),
        "f2a" => fig2::f2a(scope),
        "f2b" => fig2::f2b(scope),
        "l3" => lemmas::l3(scope),
        "l4" => lemmas::l4(scope),
        "l5" => lemmas::l5(scope),
        "l6" => timing::l6(scope),
        "l7" => lemmas::l7(scope),
        "l8" => timing::l8(scope),
        "l9" => lemmas::l9(scope),
        "l10" => timing::l10(scope),
        "s41" => s41::table(scope),
        "ablate-cap" => timing::ablate_cap(scope),
        "ablate-d" => ablate_d::table(scope),
        "gauntlet" => gauntlet::table(scope),
        "recovery" => recovery::table(scope),
        "gbits" => gbits::table(scope),
        "ae" => ae_exp::table(scope),
        other => {
            return Err(format!(
                "unknown experiment `{other}`; known ids: {}",
                ALL_IDS.join(", ")
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_reports_catalogue() {
        let err = run_experiment("nope", Scope::Quick).unwrap_err();
        assert!(err.contains("f1a-time"));
        assert!(err.contains("l10"));
        assert!(err.contains("recovery"));
    }
}
