//! Figure 1b reproduction: the Byzantine Agreement comparison.
//!
//! End-to-end BA (almost-everywhere phase + AER) against the two
//! implementable lineage baselines: Ben-Or's randomized binary agreement
//! (`[BO83]`, the `Θ(n²)`-message classic Fig. 1b's randomized rows
//! descend from) and Phase-King (the deterministic `t+1`-round
//! counterpoint enforcing the Fischer–Lynch bound). `[BOPV06]`'s
//! `n^{O(log n)}` communication and `[KS13]`'s `Õ(n².⁵)` bits are not
//! implementable at any useful scale — their rows are reproduced as
//! formulas in EXPERIMENTS.md.

use fba_baselines::{BenOrNode, BenOrParams, KingNode, KingParams};
use fba_core::{run_ba, BaConfig};
use fba_sim::{run, EngineConfig, SilentAdversary};
use rand::Rng;

use crate::par::par_map;
use crate::scope::{mean, Scope};
use crate::table::{fnum, Table};

/// Figure 1b: rounds, bits/node and fault tolerance per protocol.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let mut t = Table::new(
        "f1b — Fig. 1b: Byzantine Agreement protocols (mean over seeds)",
        &[
            "protocol",
            "n",
            "rounds",
            "bits/node",
            "msgs/node",
            "tolerates",
        ],
    );

    // One parallel fan-out per protocol family; each (n, seed) cell is an
    // independent seeded run, and rows aggregate cells in input order, so
    // the table matches the serial sweep exactly.
    let cells = |sizes: Vec<usize>, seeds: Vec<u64>| -> Vec<(usize, u64)> {
        sizes
            .iter()
            .flat_map(|&n| seeds.iter().map(move |&seed| (n, seed)))
            .collect()
    };
    let push_rows = |t: &mut Table,
                     protocol: &str,
                     tolerates: &str,
                     sizes: &[usize],
                     per_seed: usize,
                     outcomes: &[(Option<f64>, f64, f64)]| {
        for (i, &n) in sizes.iter().enumerate() {
            let rows = &outcomes[i * per_seed..(i + 1) * per_seed];
            let rounds: Vec<f64> = rows.iter().filter_map(|r| r.0).collect();
            let bits: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let msgs: Vec<f64> = rows.iter().map(|r| r.2).collect();
            t.push_row(vec![
                protocol.into(),
                n.to_string(),
                fnum(mean(&rounds)),
                fnum(mean(&bits)),
                fnum(mean(&msgs)),
                tolerates.into(),
            ]);
        }
    };

    // --- BA = AE + AER (this paper) ---
    let sizes = scope.aer_sizes();
    let seeds = scope.seeds();
    let outcomes = par_map(cells(sizes.clone(), seeds.clone()), |(n, seed)| {
        let cfg = BaConfig::recommended(n);
        let t_faults = cfg.aer.t.min(n / 8);
        let mut ae_adv = SilentAdversary::new(t_faults);
        let (report, ae, aer_run) = run_ba(
            &cfg,
            seed,
            &mut ae_adv,
            |_, _| SilentAdversary::new(t_faults),
            None,
        );
        (
            aer_run
                .metrics
                .decided_quantile(0.95)
                .map(|r| (report.ae_rounds + r) as f64),
            report.ae_bits_per_node + report.aer_bits_per_node,
            (ae.run.metrics.correct_msgs_sent() + aer_run.metrics.correct_msgs_sent()) as f64
                / n as f64,
        )
    });
    push_rows(
        &mut t,
        "BA (this paper)",
        "t < (1/3-ε)n",
        &sizes,
        seeds.len(),
        &outcomes,
    );

    // --- Ben-Or (randomized, binary) ---
    let outcomes = par_map(cells(sizes.clone(), seeds.clone()), |(n, seed)| {
        let params = BenOrParams::recommended(n);
        let engine = EngineConfig {
            max_steps: 400,
            ..EngineConfig::sync(n)
        };
        let mut rng = fba_sim::rng::derive_rng(seed, &[0xb0]);
        let inputs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.9)).collect();
        let mut adv = SilentAdversary::new(params.t);
        let out = run::<BenOrNode, _, _>(&engine, seed, &mut adv, |id| {
            BenOrNode::new(params, n, inputs[id.index()])
        });
        (
            out.metrics.decided_quantile(0.95).map(|s| s as f64),
            out.metrics.amortized_bits(),
            out.metrics.correct_msgs_sent() as f64 / n as f64,
        )
    });
    push_rows(
        &mut t,
        "Ben-Or [BO83]",
        "t < n/5",
        &sizes,
        seeds.len(),
        &outcomes,
    );

    // --- Phase-King (deterministic) ---
    let king_sizes = scope.king_sizes();
    let outcomes = par_map(cells(king_sizes.clone(), seeds.clone()), |(n, seed)| {
        let params = KingParams::recommended(n);
        let engine = EngineConfig {
            max_steps: params.schedule_len() + 8,
            ..EngineConfig::sync(n)
        };
        let mut rng = fba_sim::rng::derive_rng(seed, &[0xb1]);
        let inputs: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut adv = SilentAdversary::new(params.t / 2);
        let out = run::<KingNode, _, _>(&engine, seed, &mut adv, |id| {
            KingNode::new(params, n, inputs[id.index()])
        });
        (
            out.metrics.decided_quantile(0.95).map(|s| s as f64),
            out.metrics.amortized_bits(),
            out.metrics.correct_msgs_sent() as f64 / n as f64,
        )
    });
    push_rows(
        &mut t,
        "Phase-King (determ.)",
        "t < n/4",
        &king_sizes,
        seeds.len(),
        &outcomes,
    );

    t.note("paper Fig. 1b: BA is polylog in both time and bits; Ben-Or is Θ(n) bits/node per");
    t.note("phase; deterministic protocols pay Θ(n) rounds (t+1 lower bound).");
    t.note("Ben-Or rows use 90%-biased binary inputs (worst-case Ben-Or is exponential and");
    t.note("50/50 inputs stall at these n — which is the very gap this paper's lineage closes).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_all_protocol_rows() {
        let t = table(Scope::Quick);
        let ba_rows = t.rows.iter().filter(|r| r[0].contains("BA")).count();
        let bo_rows = t.rows.iter().filter(|r| r[0].contains("Ben-Or")).count();
        let pk_rows = t.rows.iter().filter(|r| r[0].contains("King")).count();
        assert_eq!(ba_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(bo_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(pk_rows, Scope::Quick.king_sizes().len());
    }
}
