//! Figure 1b reproduction: the Byzantine Agreement comparison.
//!
//! End-to-end BA (almost-everywhere phase + AER) against the two
//! implementable lineage baselines: Ben-Or's randomized binary agreement
//! (`[BO83]`, the `Θ(n²)`-message classic Fig. 1b's randomized rows
//! descend from) and Phase-King (the deterministic `t+1`-round
//! counterpoint enforcing the Fischer–Lynch bound). `[BOPV06]`'s
//! `n^{O(log n)}` communication and `[KS13]`'s `Õ(n².⁵)` bits are not
//! implementable at any useful scale — their rows are reproduced as
//! formulas in EXPERIMENTS.md.

use fba_baselines::{BenOrParams, KingParams};
use fba_core::AerConfig;
use fba_scenario::{Baseline, Phase, Scenario};
use fba_sim::AdversarySpec;

use crate::battery::{product2, Agg, Battery, Report};
use crate::scope::Scope;

/// The three protocol families of the comparison, as data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Protocol {
    /// AE + AER, the paper's composition.
    Ba,
    /// Ben-Or's randomized binary agreement.
    BenOr,
    /// The deterministic Phase-King counterpoint.
    King,
}

impl Protocol {
    fn name(self) -> &'static str {
        match self {
            Protocol::Ba => "BA (this paper)",
            Protocol::BenOr => "Ben-Or [BO83]",
            Protocol::King => "Phase-King (determ.)",
        }
    }

    fn tolerates(self) -> &'static str {
        match self {
            Protocol::Ba => "t < (1/3-ε)n",
            Protocol::BenOr => "t < n/5",
            Protocol::King => "t < n/4",
        }
    }
}

/// One cell's statistics: rounds (p95 quantile, absent when never
/// reached), bits/node, msgs/node.
type Cell = (Option<f64>, f64, f64);

fn run_cell(protocol: Protocol, n: usize, seed: u64) -> Cell {
    let silent = AdversarySpec::Silent { t: None };
    match protocol {
        Protocol::Ba => {
            let t_faults = AerConfig::recommended(n).t.min(n / 8);
            let c = Scenario::new(n)
                .phase(Phase::Composed)
                .faults(t_faults)
                .adversary(silent.clone())
                .ae_adversary(silent)
                .run(seed)
                .expect("composed scenario")
                .into_composed();
            (
                c.aer
                    .metrics
                    .decided_quantile(0.95)
                    .map(|r| (c.report.ae_rounds + r) as f64),
                c.report.ae_bits_per_node + c.report.aer_bits_per_node,
                (c.ae.run.metrics.correct_msgs_sent() + c.aer.metrics.correct_msgs_sent()) as f64
                    / n as f64,
            )
        }
        Protocol::BenOr => {
            let b = Scenario::new(n)
                .phase(Phase::Baseline(Baseline::BenOr { bias: 0.9 }))
                .faults(BenOrParams::recommended(n).t)
                .adversary(silent)
                .run(seed)
                .expect("benor scenario")
                .into_baseline();
            let metrics = b.outcome.metrics();
            (
                metrics.decided_quantile(0.95).map(|s| s as f64),
                metrics.amortized_bits(),
                metrics.correct_msgs_sent() as f64 / n as f64,
            )
        }
        Protocol::King => {
            let k = Scenario::new(n)
                .phase(Phase::Baseline(Baseline::PhaseKing))
                .faults(KingParams::recommended(n).t / 2)
                .adversary(silent)
                .run(seed)
                .expect("phase-king scenario")
                .into_baseline();
            let metrics = k.outcome.metrics();
            (
                metrics.decided_quantile(0.95).map(|s| s as f64),
                metrics.amortized_bits(),
                metrics.correct_msgs_sent() as f64 / n as f64,
            )
        }
    }
}

/// Figure 1b: rounds, bits/node and fault tolerance per protocol. The
/// randomized families sweep the AER size ladder; Phase-King sweeps its
/// own `Θ(n)`-round ladder — one battery whose points chain the two
/// products.
#[must_use]
pub fn table(scope: Scope) -> Report {
    let mut points = product2(&[Protocol::Ba, Protocol::BenOr], &scope.aer_sizes());
    points.extend(product2(&[Protocol::King], &scope.king_sizes()));
    Battery::new(
        "f1b",
        "f1b — Fig. 1b: Byzantine Agreement protocols (mean over seeds)",
        |&(protocol, n): &(Protocol, usize), seed| run_cell(protocol, n, seed),
    )
    .axes(&["protocol", "n"], |&(p, n)| {
        vec![p.name().to_string(), n.to_string()]
    })
    .points(points)
    .point_n(|&(_, n)| n)
    .col("rounds", Agg::Mean, |o: &Cell| o.0)
    .col("bits/node", Agg::Mean, |o: &Cell| Some(o.1))
    .col("msgs/node", Agg::Mean, |o: &Cell| Some(o.2))
    .col_point("tolerates", |&(p, _)| p.tolerates().to_string())
    .note("paper Fig. 1b: BA is polylog in both time and bits; Ben-Or is Θ(n) bits/node per")
    .note("phase; deterministic protocols pay Θ(n) rounds (t+1 lower bound).")
    .note("Ben-Or rows use 90%-biased binary inputs (worst-case Ben-Or is exponential and")
    .note("50/50 inputs stall at these n — which is the very gap this paper's lineage closes).")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_all_protocol_rows() {
        let t = table(Scope::Quick).table;
        let ba_rows = t.rows.iter().filter(|r| r[0].contains("BA")).count();
        let bo_rows = t.rows.iter().filter(|r| r[0].contains("Ben-Or")).count();
        let pk_rows = t.rows.iter().filter(|r| r[0].contains("King")).count();
        assert_eq!(ba_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(bo_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(pk_rows, Scope::Quick.king_sizes().len());
    }
}
