//! Figure 1b reproduction: the Byzantine Agreement comparison.
//!
//! End-to-end BA (almost-everywhere phase + AER) against the two
//! implementable lineage baselines: Ben-Or's randomized binary agreement
//! (`[BO83]`, the `Θ(n²)`-message classic Fig. 1b's randomized rows
//! descend from) and Phase-King (the deterministic `t+1`-round
//! counterpoint enforcing the Fischer–Lynch bound). `[BOPV06]`'s
//! `n^{O(log n)}` communication and `[KS13]`'s `Õ(n².⁵)` bits are not
//! implementable at any useful scale — their rows are reproduced as
//! formulas in EXPERIMENTS.md.

use fba_baselines::{BenOrParams, KingParams};
use fba_core::AerConfig;
use fba_scenario::{Baseline, Phase, Scenario};
use fba_sim::AdversarySpec;

use crate::par::par_map;
use crate::scope::{mean, Scope};
use crate::table::{fnum, Table};

/// Figure 1b: rounds, bits/node and fault tolerance per protocol.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let mut t = Table::new(
        "f1b — Fig. 1b: Byzantine Agreement protocols (mean over seeds)",
        &[
            "protocol",
            "n",
            "rounds",
            "bits/node",
            "msgs/node",
            "tolerates",
        ],
    );

    // One parallel fan-out per protocol family; each (n, seed) cell is an
    // independent seeded run, and rows aggregate cells in input order, so
    // the table matches the serial sweep exactly.
    let cells = |sizes: Vec<usize>, seeds: Vec<u64>| -> Vec<(usize, u64)> {
        sizes
            .iter()
            .flat_map(|&n| seeds.iter().map(move |&seed| (n, seed)))
            .collect()
    };
    let push_rows = |t: &mut Table,
                     protocol: &str,
                     tolerates: &str,
                     sizes: &[usize],
                     per_seed: usize,
                     outcomes: &[(Option<f64>, f64, f64)]| {
        for (i, &n) in sizes.iter().enumerate() {
            let rows = &outcomes[i * per_seed..(i + 1) * per_seed];
            let rounds: Vec<f64> = rows.iter().filter_map(|r| r.0).collect();
            let bits: Vec<f64> = rows.iter().map(|r| r.1).collect();
            let msgs: Vec<f64> = rows.iter().map(|r| r.2).collect();
            t.push_row(vec![
                protocol.into(),
                n.to_string(),
                fnum(mean(&rounds)),
                fnum(mean(&bits)),
                fnum(mean(&msgs)),
                tolerates.into(),
            ]);
        }
    };

    // --- BA = AE + AER (this paper) ---
    let sizes = scope.aer_sizes();
    let seeds = scope.seeds();
    let silent = AdversarySpec::Silent { t: None };
    let outcomes = par_map(cells(sizes.clone(), seeds.clone()), |(n, seed)| {
        let t_faults = AerConfig::recommended(n).t.min(n / 8);
        let c = Scenario::new(n)
            .phase(Phase::Composed)
            .faults(t_faults)
            .adversary(silent.clone())
            .ae_adversary(silent.clone())
            .run(seed)
            .expect("composed scenario")
            .into_composed();
        (
            c.aer
                .metrics
                .decided_quantile(0.95)
                .map(|r| (c.report.ae_rounds + r) as f64),
            c.report.ae_bits_per_node + c.report.aer_bits_per_node,
            (c.ae.run.metrics.correct_msgs_sent() + c.aer.metrics.correct_msgs_sent()) as f64
                / n as f64,
        )
    });
    push_rows(
        &mut t,
        "BA (this paper)",
        "t < (1/3-ε)n",
        &sizes,
        seeds.len(),
        &outcomes,
    );

    // --- Ben-Or (randomized, binary) ---
    let outcomes = par_map(cells(sizes.clone(), seeds.clone()), |(n, seed)| {
        let b = Scenario::new(n)
            .phase(Phase::Baseline(Baseline::BenOr { bias: 0.9 }))
            .faults(BenOrParams::recommended(n).t)
            .adversary(silent.clone())
            .run(seed)
            .expect("benor scenario")
            .into_baseline();
        let metrics = b.outcome.metrics();
        (
            metrics.decided_quantile(0.95).map(|s| s as f64),
            metrics.amortized_bits(),
            metrics.correct_msgs_sent() as f64 / n as f64,
        )
    });
    push_rows(
        &mut t,
        "Ben-Or [BO83]",
        "t < n/5",
        &sizes,
        seeds.len(),
        &outcomes,
    );

    // --- Phase-King (deterministic) ---
    let king_sizes = scope.king_sizes();
    let outcomes = par_map(cells(king_sizes.clone(), seeds.clone()), |(n, seed)| {
        let k = Scenario::new(n)
            .phase(Phase::Baseline(Baseline::PhaseKing))
            .faults(KingParams::recommended(n).t / 2)
            .adversary(silent.clone())
            .run(seed)
            .expect("phase-king scenario")
            .into_baseline();
        let metrics = k.outcome.metrics();
        (
            metrics.decided_quantile(0.95).map(|s| s as f64),
            metrics.amortized_bits(),
            metrics.correct_msgs_sent() as f64 / n as f64,
        )
    });
    push_rows(
        &mut t,
        "Phase-King (determ.)",
        "t < n/4",
        &king_sizes,
        seeds.len(),
        &outcomes,
    );

    t.note("paper Fig. 1b: BA is polylog in both time and bits; Ben-Or is Θ(n) bits/node per");
    t.note("phase; deterministic protocols pay Θ(n) rounds (t+1 lower bound).");
    t.note("Ben-Or rows use 90%-biased binary inputs (worst-case Ben-Or is exponential and");
    t.note("50/50 inputs stall at these n — which is the very gap this paper's lineage closes).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_all_protocol_rows() {
        let t = table(Scope::Quick);
        let ba_rows = t.rows.iter().filter(|r| r[0].contains("BA")).count();
        let bo_rows = t.rows.iter().filter(|r| r[0].contains("Ben-Or")).count();
        let pk_rows = t.rows.iter().filter(|r| r[0].contains("King")).count();
        assert_eq!(ba_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(bo_rows, Scope::Quick.aer_sizes().len());
        assert_eq!(pk_rows, Scope::Quick.king_sizes().len());
    }
}
