//! Lemma-level experiments: push costs (L3), candidate-list totals (L4),
//! push reliability (L5), safety (L7) and the synchronous end-to-end
//! summary (L9) — each a declarative battery.

use fba_ae::{Precondition, UnknowingAssignment};
use fba_core::{AerConfig, AerNode};
use fba_samplers::GString;
use fba_scenario::Scenario;
use fba_sim::{AdversarySpec, FinalInspect, NetworkSpec, NodeId};

use crate::battery::{product2, Agg, Battery, Report, SeedPolicy};
use crate::experiments::common::{aer_scenario, log2, KNOWING};
use crate::scope::Scope;
use crate::table::fnum;

/// Lemma 3: push-phase messages and bits per correct node.
///
/// Each node `y` pushes to `{x : y ∈ I(s_y, x)}`; Lemma 3 says this is
/// `O(log n)` messages of `O(log n)` bits each. Measured directly from
/// the push target lists (which is exactly what `on_start` transmits) —
/// a pure sampler computation, no engine run.
#[must_use]
pub fn l3(scope: Scope) -> Report {
    Battery::new(
        "l3",
        "l3 — Lemma 3: push cost per correct node",
        |&n: &usize, seed| {
            let cfg = AerConfig::recommended(n);
            let pre = Precondition::synthetic(
                n,
                cfg.string_len,
                KNOWING,
                UnknowingAssignment::RandomPerNode,
                seed,
            );
            // Push targets are the real measure:
            let scheme = cfg.scheme();
            let mut counts = Vec::with_capacity(n);
            for (i, s) in pre.assignments.iter().enumerate() {
                let y = fba_sim::NodeId::from_index(i);
                let inverse = scheme.push.inverse_for_string(s.key());
                counts.push(inverse[y.index()].len());
            }
            let msg_bits = cfg.string_len as u64 + 3 + 2 * u64::from(fba_sim::ceil_log2(n));
            (
                counts.iter().sum::<usize>() as f64 / n as f64,
                counts.iter().copied().max().unwrap_or(0) as f64,
                counts.iter().sum::<usize>() as f64 * msg_bits as f64 / n as f64,
            )
        },
    )
    .axes(&["n"], |n| vec![n.to_string()])
    .points(scope.light_sizes())
    .point_n(|&n| n)
    .seeds(SeedPolicy::Capped { max: 3 })
    .col_point("d", |&n| {
        fba_samplers::default_quorum_size(n, 3.0).to_string()
    })
    .col("msgs/node (mean)", Agg::Mean, |o: &(f64, f64, f64)| {
        Some(o.0)
    })
    .col("msgs/node (max)", Agg::Max, |o: &(f64, f64, f64)| Some(o.1))
    .col("bits/node", Agg::Mean, |o: &(f64, f64, f64)| Some(o.2))
    .col_point("ref log²n", |&n| fnum(log2(n) * log2(n)))
    .note("paper: O(log n) messages of O(log n) bits per good node, no node overloaded.")
    .report(scope)
}

/// Runs `scenario`, collecting every surviving node's candidate-list
/// size through the observer hook.
fn candidate_sizes(scenario: Scenario, seed: u64) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut inspect = FinalInspect(|_id: NodeId, node: &AerNode| {
        sizes.push(node.candidates().len());
    });
    let _ = scenario
        .run_observed(seed, &mut inspect)
        .expect("valid scenario");
    sizes
}

/// Lemma 4: sum of candidate-list sizes is `O(n)` even under coherent
/// push flooding and equivocation.
#[must_use]
pub fn l4(scope: Scope) -> Report {
    const ADVERSARIES: [&str; 3] = ["none", "push-flood", "equivocate×8"];
    Battery::new(
        "l4",
        "l4 — Lemma 4: Σ|Lx| per node under push attacks",
        |&(n, adv_name): &(usize, &str), seed| {
            let base = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode);
            let bad = GString::random(
                AerConfig::recommended(n).string_len,
                &mut fba_sim::rng::derive_rng(seed, &[0xbad]),
            );
            let scenario = match adv_name {
                "none" => base,
                "push-flood" => base.adversary(AdversarySpec::PushFlood).bad_string(bad),
                _ => base.adversary(AdversarySpec::Equivocate { strings: 8 }),
            };
            let sizes = candidate_sizes(scenario, seed);
            let total: usize = sizes.iter().sum();
            (
                total as f64 / n as f64,
                sizes.iter().copied().max().unwrap_or(0) as f64,
            )
        },
    )
    .axes(&["n", "adversary"], |&(n, adv)| {
        vec![n.to_string(), adv.to_string()]
    })
    .points(product2(&scope.aer_sizes(), &ADVERSARIES))
    .point_n(|&(n, _)| n)
    .seeds(SeedPolicy::Capped { max: 3 })
    .col("Σ|Lx|/n", Agg::Mean, |o: &(f64, f64)| Some(o.0))
    .col("max |Lx|", Agg::Max, |o: &(f64, f64)| Some(o.1))
    .note("paper: the sum of candidate-list sizes is O(n) — the per-node column must stay")
    .note("bounded by a constant as n grows, regardless of the attack.")
    .report(scope)
}

/// Lemma 5: every correct node has gstring in its candidate list after
/// the push phase.
#[must_use]
pub fn l5(scope: Scope) -> Report {
    Battery::new(
        "l5",
        "l5 — Lemma 5: gstring lands in every candidate list",
        |&n: &usize, seed| {
            let scenario = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .adversary(AdversarySpec::Silent { t: None });
            // Snapshot every surviving node's candidate list, then count
            // misses against the gstring the run itself carried — no
            // out-of-band precondition rebuild to keep in lockstep.
            let mut lists: Vec<Vec<GString>> = Vec::new();
            let out = {
                let mut inspect = FinalInspect(|_id: NodeId, node: &AerNode| {
                    lists.push(node.candidates().to_vec());
                });
                scenario
                    .run_observed(seed, &mut inspect)
                    .expect("valid scenario")
                    .into_aer()
            };
            let g = out.precondition.gstring;
            let missing = lists.iter().filter(|l| !l.contains(&g)).count();
            (missing as f64, lists.len() as f64)
        },
    )
    .axes(&["n"], |n| vec![n.to_string()])
    .points(scope.aer_sizes())
    .point_n(|&n| n)
    .col_runs("runs")
    .col("nodes missing gstring", Agg::Sum, |o: &(f64, f64)| {
        Some(o.0)
    })
    .col_derived("fraction with gstring", |ctx| {
        // A ratio of sums across the cell's runs (not a mean of ratios):
        // the fraction of all observed nodes that held gstring.
        let missing: f64 = ctx.samples(|o| Some(o.0)).iter().sum();
        let nodes: f64 = ctx.samples(|o| Some(o.1)).iter().sum();
        fnum(1.0 - missing / nodes.max(1.0))
    })
    .note("paper: w.h.p. each node has gstring in Lx at the end of the push phase;")
    .note("finite-size misses shrink as n (and d = 3·ln n) grow.")
    .report(scope)
}

/// Lemma 7: no correct node decides on anything but gstring, across the
/// whole attack suite.
#[must_use]
pub fn l7(scope: Scope) -> Report {
    let n = match scope {
        Scope::Quick => 64,
        _ => 128,
    };
    // The attack suite as specs — the sweep is data, not wiring.
    let adversaries: Vec<(&str, AdversarySpec, NetworkSpec)> = vec![
        ("none", AdversarySpec::None, NetworkSpec::Sync),
        (
            "silent-t",
            AdversarySpec::Silent { t: None },
            NetworkSpec::Sync,
        ),
        (
            "random-flood",
            AdversarySpec::RandomFlood { rate: 16, steps: 4 },
            NetworkSpec::Sync,
        ),
        ("push-flood", AdversarySpec::PushFlood, NetworkSpec::Sync),
        (
            "equivocate",
            AdversarySpec::Equivocate { strings: 8 },
            NetworkSpec::Sync,
        ),
        ("bad-string", AdversarySpec::BadString, NetworkSpec::Sync),
        (
            "corner(async)",
            AdversarySpec::Corner { label_scan: 256 },
            NetworkSpec::Async { max_delay: 1 },
        ),
    ];
    Battery::new(
        "l7",
        "l7 — Lemma 7: wrong-decision census under every adversary",
        move |(_, spec, network): &(&str, AdversarySpec, NetworkSpec), seed| {
            // Worst-case precondition: the unknowing block shares one
            // bogus string the adversary campaigns for (the builder's
            // default campaign string).
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
                .adversary(spec.clone())
                .network(*network)
                .run(seed)
                .expect("l7 scenario")
                .into_aer();
            (out.run.outputs.len() as f64, out.wrong_decisions() as f64)
        },
    )
    .axes(&["adversary"], |(name, _, _)| vec![(*name).to_string()])
    .points(adversaries)
    .col_runs("runs")
    .col("decisions", Agg::Sum, |o: &(f64, f64)| Some(o.0))
    .col("wrong decisions", Agg::Sum, |o: &(f64, f64)| Some(o.1))
    .note(format!(
        "n = {n}, worst-case precondition (unknowing block shares the campaign string)."
    ))
    .note("paper: any node decides on gstring w.h.p. — the wrong column should be 0.")
    .report(scope)
}

/// Lemma 9: the synchronous non-rushing end-to-end summary — constant
/// rounds, Õ(n) messages.
#[must_use]
pub fn l9(scope: Scope) -> Report {
    type Cell = (f64, Option<f64>, Option<f64>, f64);
    Battery::new(
        "l9",
        "l9 — Lemma 9: AER end-to-end, synchronous, non-rushing",
        |&n: &usize, seed| -> Cell {
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .adversary(AdversarySpec::Silent { t: None })
                .run(seed)
                .expect("l9 scenario")
                .into_aer();
            (
                out.run.metrics.decided_fraction() * 100.0,
                out.run.metrics.decided_quantile(0.5).map(|s| s as f64),
                out.run.metrics.decided_quantile(0.95).map(|s| s as f64),
                out.run.metrics.correct_msgs_sent() as f64 / n as f64,
            )
        },
    )
    .axes(&["n"], |n| vec![n.to_string()])
    .points(scope.aer_sizes())
    .point_n(|&n| n)
    .col("decided %", Agg::Mean, |o: &Cell| Some(o.0))
    .col("rounds p50", Agg::Mean, |o: &Cell| o.1)
    .col("rounds p95", Agg::Mean, |o: &Cell| o.2)
    .col("msgs total / n", Agg::Mean, |o: &Cell| Some(o.3))
    .col_point("ref log³n", |&n| fnum(log2(n).powi(3)))
    .note("paper: O(1) rounds and Õ(n) total messages (the msgs/n column is the Õ(1)·polylog")
    .note("amortization; compare its growth against the log³n reference).")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l3_rows_cover_sizes() {
        let t = l3(Scope::Quick).table;
        assert_eq!(t.rows.len(), Scope::Quick.light_sizes().len());
        // mean msgs/node ≈ d.
        for row in &t.rows {
            let d: f64 = row[1].parse().unwrap();
            let mean_msgs: f64 = row[2].parse().unwrap();
            assert!((mean_msgs - d).abs() < 1.0, "row {row:?}");
        }
        // The capped seed policy is declared in the notes, not silent.
        assert!(
            t.notes.iter().any(|n| n.contains("first 3 seed")),
            "{:?}",
            t.notes
        );
    }

    #[test]
    fn l4_per_node_totals_are_bounded() {
        let t = l4(Scope::Quick).table;
        for row in &t.rows {
            let per_node: f64 = row[2].parse().unwrap();
            assert!(
                per_node < 4.0,
                "Σ|Lx|/n should be a small constant: {row:?}"
            );
        }
    }

    #[test]
    fn l7_reports_zero_wrong_under_quick_scope() {
        let t = l7(Scope::Quick).table;
        for row in &t.rows {
            assert_eq!(row[3], "0", "wrong decision under {row:?}");
        }
    }
}
