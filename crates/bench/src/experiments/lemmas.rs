//! Lemma-level experiments: push costs (L3), candidate-list totals (L4),
//! push reliability (L5), safety (L7) and the synchronous end-to-end
//! summary (L9).

use fba_ae::{Precondition, UnknowingAssignment};
use fba_core::{AerConfig, AerNode};
use fba_samplers::GString;
use fba_scenario::Scenario;
use fba_sim::{AdversarySpec, FinalInspect, NetworkSpec, NodeId};

use crate::experiments::common::{aer_scenario, log2, KNOWING};
use crate::scope::{mean, Scope};
use crate::table::{fnum, Table};

/// Lemma 3: push-phase messages and bits per correct node.
///
/// Each node `y` pushes to `{x : y ∈ I(s_y, x)}`; Lemma 3 says this is
/// `O(log n)` messages of `O(log n)` bits each. Measured directly from
/// the push target lists (which is exactly what `on_start` transmits) —
/// a pure sampler computation, no engine run.
#[must_use]
pub fn l3(scope: Scope) -> Table {
    let mut t = Table::new(
        "l3 — Lemma 3: push cost per correct node",
        &[
            "n",
            "d",
            "msgs/node (mean)",
            "msgs/node (max)",
            "bits/node",
            "ref log²n",
        ],
    );
    for n in scope.light_sizes() {
        let mut means = Vec::new();
        let mut maxes = Vec::new();
        let mut bits = Vec::new();
        for seed in scope.seeds().into_iter().take(3) {
            let cfg = AerConfig::recommended(n);
            let pre = Precondition::synthetic(
                n,
                cfg.string_len,
                KNOWING,
                UnknowingAssignment::RandomPerNode,
                seed,
            );
            // Push targets are the real measure:
            let scheme = cfg.scheme();
            let mut counts = Vec::with_capacity(n);
            for (i, s) in pre.assignments.iter().enumerate() {
                let y = fba_sim::NodeId::from_index(i);
                let inverse = scheme.push.inverse_for_string(s.key());
                counts.push(inverse[y.index()].len());
            }
            let msg_bits = cfg.string_len as u64 + 3 + 2 * u64::from(fba_sim::ceil_log2(n));
            means.push(counts.iter().sum::<usize>() as f64 / n as f64);
            maxes.push(counts.iter().copied().max().unwrap_or(0) as f64);
            bits.push(counts.iter().sum::<usize>() as f64 * msg_bits as f64 / n as f64);
        }
        let d = fba_samplers::default_quorum_size(n, 3.0);
        t.push_row(vec![
            n.to_string(),
            d.to_string(),
            fnum(mean(&means)),
            fnum(crate::scope::fmax(&maxes)),
            fnum(mean(&bits)),
            fnum(log2(n) * log2(n)),
        ]);
    }
    t.note("paper: O(log n) messages of O(log n) bits per good node, no node overloaded.");
    t
}

/// Runs `scenario`, collecting every surviving node's candidate-list
/// size through the observer hook.
fn candidate_sizes(scenario: Scenario, seed: u64) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut inspect = FinalInspect(|_id: NodeId, node: &AerNode| {
        sizes.push(node.candidates().len());
    });
    let _ = scenario
        .run_observed(seed, &mut inspect)
        .expect("valid scenario");
    sizes
}

/// Lemma 4: sum of candidate-list sizes is `O(n)` even under coherent
/// push flooding and equivocation.
#[must_use]
pub fn l4(scope: Scope) -> Table {
    let mut t = Table::new(
        "l4 — Lemma 4: Σ|Lx| per node under push attacks",
        &["n", "adversary", "Σ|Lx|/n", "max |Lx|"],
    );
    for n in scope.aer_sizes() {
        for adv_name in ["none", "push-flood", "equivocate×8"] {
            let mut totals = Vec::new();
            let mut maxes = Vec::new();
            for seed in scope.seeds().into_iter().take(3) {
                let base = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode);
                let bad = GString::random(
                    AerConfig::recommended(n).string_len,
                    &mut fba_sim::rng::derive_rng(seed, &[0xbad]),
                );
                let scenario = match adv_name {
                    "none" => base,
                    "push-flood" => base.adversary(AdversarySpec::PushFlood).bad_string(bad),
                    _ => base.adversary(AdversarySpec::Equivocate { strings: 8 }),
                };
                let sizes = candidate_sizes(scenario, seed);
                let total: usize = sizes.iter().sum();
                totals.push(total as f64 / n as f64);
                maxes.push(sizes.iter().copied().max().unwrap_or(0) as f64);
            }
            t.push_row(vec![
                n.to_string(),
                adv_name.into(),
                fnum(mean(&totals)),
                fnum(crate::scope::fmax(&maxes)),
            ]);
        }
    }
    t.note("paper: the sum of candidate-list sizes is O(n) — the per-node column must stay");
    t.note("bounded by a constant as n grows, regardless of the attack.");
    t
}

/// Lemma 5: every correct node has gstring in its candidate list after
/// the push phase.
#[must_use]
pub fn l5(scope: Scope) -> Table {
    let mut t = Table::new(
        "l5 — Lemma 5: gstring lands in every candidate list",
        &[
            "n",
            "runs",
            "nodes missing gstring",
            "fraction with gstring",
        ],
    );
    for n in scope.aer_sizes() {
        let mut missing_total = 0usize;
        let mut nodes_total = 0usize;
        let seeds = scope.seeds();
        for seed in &seeds {
            let scenario = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .adversary(AdversarySpec::Silent { t: None });
            // Snapshot every surviving node's candidate list, then count
            // misses against the gstring the run itself carried — no
            // out-of-band precondition rebuild to keep in lockstep.
            let mut lists: Vec<Vec<GString>> = Vec::new();
            let out = {
                let mut inspect = FinalInspect(|_id: NodeId, node: &AerNode| {
                    lists.push(node.candidates().to_vec());
                });
                scenario
                    .run_observed(*seed, &mut inspect)
                    .expect("valid scenario")
                    .into_aer()
            };
            let g = out.precondition.gstring;
            missing_total += lists.iter().filter(|l| !l.contains(&g)).count();
            nodes_total += lists.len();
        }
        t.push_row(vec![
            n.to_string(),
            seeds.len().to_string(),
            missing_total.to_string(),
            fnum(1.0 - missing_total as f64 / nodes_total.max(1) as f64),
        ]);
    }
    t.note("paper: w.h.p. each node has gstring in Lx at the end of the push phase;");
    t.note("finite-size misses shrink as n (and d = 3·ln n) grow.");
    t
}

/// Lemma 7: no correct node decides on anything but gstring, across the
/// whole attack suite.
#[must_use]
pub fn l7(scope: Scope) -> Table {
    let n = match scope {
        Scope::Quick => 64,
        _ => 128,
    };
    let mut t = Table::new(
        "l7 — Lemma 7: wrong-decision census under every adversary",
        &["adversary", "runs", "decisions", "wrong decisions"],
    );
    // The attack suite as specs — the sweep is data, not wiring.
    let adversaries: [(&str, AdversarySpec, NetworkSpec); 7] = [
        ("none", AdversarySpec::None, NetworkSpec::Sync),
        (
            "silent-t",
            AdversarySpec::Silent { t: None },
            NetworkSpec::Sync,
        ),
        (
            "random-flood",
            AdversarySpec::RandomFlood { rate: 16, steps: 4 },
            NetworkSpec::Sync,
        ),
        ("push-flood", AdversarySpec::PushFlood, NetworkSpec::Sync),
        (
            "equivocate",
            AdversarySpec::Equivocate { strings: 8 },
            NetworkSpec::Sync,
        ),
        ("bad-string", AdversarySpec::BadString, NetworkSpec::Sync),
        (
            "corner(async)",
            AdversarySpec::Corner { label_scan: 256 },
            NetworkSpec::Async { max_delay: 1 },
        ),
    ];
    for (name, spec, network) in adversaries {
        let mut decisions = 0usize;
        let mut wrong = 0usize;
        let seeds = scope.seeds();
        for seed in &seeds {
            // Worst-case precondition: the unknowing block shares one
            // bogus string the adversary campaigns for (the builder's
            // default campaign string).
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::SharedAdversarial)
                .adversary(spec.clone())
                .network(network)
                .run(*seed)
                .expect("l7 scenario")
                .into_aer();
            decisions += out.run.outputs.len();
            wrong += out.wrong_decisions();
        }
        t.push_row(vec![
            name.into(),
            seeds.len().to_string(),
            decisions.to_string(),
            wrong.to_string(),
        ]);
    }
    t.note(format!(
        "n = {n}, worst-case precondition (unknowing block shares the campaign string)."
    ));
    t.note("paper: any node decides on gstring w.h.p. — the wrong column should be 0.");
    t
}

/// Lemma 9: the synchronous non-rushing end-to-end summary — constant
/// rounds, Õ(n) messages.
#[must_use]
pub fn l9(scope: Scope) -> Table {
    let mut t = Table::new(
        "l9 — Lemma 9: AER end-to-end, synchronous, non-rushing",
        &[
            "n",
            "decided %",
            "rounds p50",
            "rounds p95",
            "msgs total / n",
            "ref log³n",
        ],
    );
    for n in scope.aer_sizes() {
        let mut decided = Vec::new();
        let mut p50 = Vec::new();
        let mut p95 = Vec::new();
        let mut msgs = Vec::new();
        for seed in scope.seeds() {
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .adversary(AdversarySpec::Silent { t: None })
                .run(seed)
                .expect("l9 scenario")
                .into_aer();
            decided.push(out.run.metrics.decided_fraction() * 100.0);
            if let Some(s) = out.run.metrics.decided_quantile(0.5) {
                p50.push(s as f64);
            }
            if let Some(s) = out.run.metrics.decided_quantile(0.95) {
                p95.push(s as f64);
            }
            msgs.push(out.run.metrics.correct_msgs_sent() as f64 / n as f64);
        }
        t.push_row(vec![
            n.to_string(),
            fnum(mean(&decided)),
            fnum(mean(&p50)),
            fnum(mean(&p95)),
            fnum(mean(&msgs)),
            fnum(log2(n).powi(3)),
        ]);
    }
    t.note("paper: O(1) rounds and Õ(n) total messages (the msgs/n column is the Õ(1)·polylog");
    t.note("amortization; compare its growth against the log³n reference).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l3_rows_cover_sizes() {
        let t = l3(Scope::Quick);
        assert_eq!(t.rows.len(), Scope::Quick.light_sizes().len());
        // mean msgs/node ≈ d.
        for row in &t.rows {
            let d: f64 = row[1].parse().unwrap();
            let mean_msgs: f64 = row[2].parse().unwrap();
            assert!((mean_msgs - d).abs() < 1.0, "row {row:?}");
        }
    }

    #[test]
    fn l4_per_node_totals_are_bounded() {
        let t = l4(Scope::Quick);
        for row in &t.rows {
            let per_node: f64 = row[2].parse().unwrap();
            assert!(
                per_node < 4.0,
                "Σ|Lx|/n should be a small constant: {row:?}"
            );
        }
    }

    #[test]
    fn l7_reports_zero_wrong_under_quick_scope() {
        let t = l7(Scope::Quick);
        for row in &t.rows {
            assert_eq!(row[3], "0", "wrong decision under {row:?}");
        }
    }
}
