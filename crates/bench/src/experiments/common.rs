//! Shared experiment plumbing.

use fba_ae::UnknowingAssignment;
use fba_scenario::{Phase, PreconditionSpec, Scenario};

/// Standard knowledge fraction used by the sweeps (the paper's
/// assumption, with working margin at finite scale).
pub const KNOWING: f64 = 0.8;

/// The baseline scenario every AER experiment refines: `n` nodes on a
/// synchronous network, a synthetic precondition with the given
/// knowledge fraction and unknowing-assignment mode, no adversary.
/// Experiments chain [`Scenario`] setters (adversary, network, tuning
/// knobs) onto it — all run wiring lives in the builder.
pub fn aer_scenario(n: usize, knowing: f64, mode: UnknowingAssignment) -> Scenario {
    Scenario::new(n).phase(Phase::Aer {
        precondition: PreconditionSpec::new(knowing, mode),
    })
}

/// Reference column: `⌈log₂ n⌉`.
pub fn log2(n: usize) -> f64 {
    f64::from(fba_sim::ceil_log2(n))
}

/// Reference column: `log n / log log n` (natural logs, clamped).
pub fn loglog_ratio(n: usize) -> f64 {
    let ln = fba_sim::ln_at_least_one(n);
    ln / ln.ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_scenario::PollTimeoutSpec;

    #[test]
    fn scenario_builder_applies_config_knobs() {
        let out = aer_scenario(64, 0.75, UnknowingAssignment::RandomPerNode)
            .overload_cap(7)
            .strict()
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert_eq!(out.config.overload_cap, 7);
        assert_eq!(out.config.poll_attempts, 1);
        assert_eq!(out.precondition.assignments.len(), 64);
        // And it runs.
        assert!(out.run.unanimous().is_some());
    }

    #[test]
    fn poll_timeout_knob_reaches_the_config() {
        let out = aer_scenario(64, 0.75, UnknowingAssignment::RandomPerNode)
            .poll_timeout(PollTimeoutSpec::Fixed(9))
            .run(1)
            .expect("valid scenario")
            .into_aer();
        assert_eq!(out.config.poll_timeout, 9);
    }

    #[test]
    fn reference_columns() {
        assert_eq!(log2(1024), 10.0);
        assert!(loglog_ratio(1024) > 3.0 && loglog_ratio(1024) < 4.0);
    }
}
