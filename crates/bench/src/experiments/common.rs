//! Shared experiment plumbing.

use fba_ae::{Precondition, UnknowingAssignment};
use fba_core::{AerConfig, AerHarness};

/// Standard knowledge fraction used by the sweeps (the paper's
/// assumption, with working margin at finite scale).
pub const KNOWING: f64 = 0.8;

/// Builds an AER harness on a synthetic precondition.
pub fn harness(
    n: usize,
    seed: u64,
    knowing: f64,
    mode: UnknowingAssignment,
    cfg_map: impl FnOnce(AerConfig) -> AerConfig,
) -> (AerHarness, Precondition) {
    let cfg = cfg_map(AerConfig::recommended(n));
    let pre = Precondition::synthetic(n, cfg.string_len, knowing, mode, seed);
    (AerHarness::from_precondition(cfg, &pre), pre)
}

/// Reference column: `⌈log₂ n⌉`.
pub fn log2(n: usize) -> f64 {
    f64::from(fba_sim::ceil_log2(n))
}

/// Reference column: `log n / log log n` (natural logs, clamped).
pub fn loglog_ratio(n: usize) -> f64 {
    let ln = fba_sim::ln_at_least_one(n);
    ln / ln.ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fba_sim::NoAdversary;

    #[test]
    fn harness_builder_applies_config_map() {
        let (h, pre) = harness(64, 1, 0.75, UnknowingAssignment::RandomPerNode, |c| {
            c.with_overload_cap(7).strict()
        });
        assert_eq!(h.config().overload_cap, 7);
        assert_eq!(h.config().poll_attempts, 1);
        assert_eq!(pre.assignments.len(), 64);
        // And it runs.
        let out = h.run(&h.engine_sync(), 1, &mut NoAdversary);
        assert!(out.unanimous().is_some());
    }

    #[test]
    fn reference_columns() {
        assert_eq!(log2(1024), 10.0);
        assert!(loglog_ratio(1024) > 3.0 && loglog_ratio(1024) < 4.0);
    }
}
