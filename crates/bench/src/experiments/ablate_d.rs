//! Quorum-size ablation: the reliability/communication trade-off behind
//! the paper's `d = Θ(log n)` choice (and the load-balancing trade-off
//! its conclusion poses as future work).
//!
//! Smaller `d` means cheaper quorums (`Θ(d³)` routing per verification)
//! but weaker majorities: the strict-mode decided fraction degrades as
//! quorum sampling noise overwhelms the `1/2 + ε` margin.

use fba_ae::UnknowingAssignment;
use fba_sim::AdversarySpec;

use crate::experiments::common::{aer_scenario, KNOWING};
use crate::par::par_map;
use crate::scope::{mean, mean_cell, Scope};
use crate::table::{fnum, Table};

/// The ablation table: κ (in `d = ⌈κ·ln n⌉`) vs decided %, bits and time.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let n = match scope {
        Scope::Quick => 64,
        _ => 256,
    };
    let mut t = Table::new(
        "ablate-d — quorum size vs reliability and cost (strict mode)",
        &["kappa", "d", "decided %", "rounds p50", "bits/node"],
    );
    let kappas = [1.5, 2.0, 3.0, 4.0];
    let seeds = scope.seeds();
    let cells: Vec<(f64, u64)> = kappas
        .iter()
        .flat_map(|&k| seeds.iter().map(move |&seed| (k, seed)))
        .collect();
    // Independent seeded runs fan across cores; aggregation walks them in
    // input order, matching the serial sweep bit for bit.
    let outcomes = par_map(cells, |(kappa, seed)| {
        let d = fba_samplers::default_quorum_size(n, kappa);
        let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
            .quorum_size(d)
            .strict()
            .adversary(AdversarySpec::Silent { t: None })
            .run(seed)
            .expect("ablate-d scenario")
            .into_aer();
        (
            out.run.metrics.decided_fraction() * 100.0,
            out.run.metrics.decided_quantile(0.5).map(|s| s as f64),
            out.run.metrics.amortized_bits(),
        )
    });
    for (i, &kappa) in kappas.iter().enumerate() {
        let d = fba_samplers::default_quorum_size(n, kappa);
        let rows = &outcomes[i * seeds.len()..(i + 1) * seeds.len()];
        let decided: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let p50: Vec<f64> = rows.iter().filter_map(|r| r.1).collect();
        let bits: Vec<f64> = rows.iter().map(|r| r.2).collect();
        t.push_row(vec![
            fnum(kappa),
            d.to_string(),
            fnum(mean(&decided)),
            mean_cell(&p50),
            fnum(mean(&bits)),
        ]);
    }
    t.note(format!(
        "n = {n}, strict mode, silent-t adversary. Larger quorums buy reliability"
    ));
    t.note("(decided %) at Θ(d³) communication cost — the knob behind `d = Θ(log n)`.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_quorums_are_more_reliable_and_more_expensive() {
        let t = table(Scope::Quick);
        let first_decided: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last_decided: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last_decided >= first_decided - 3.0,
            "reliability should not degrade with d: {first_decided} → {last_decided}"
        );
        let first_bits: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last_bits: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last_bits > 2.0 * first_bits,
            "d³ scaling must show in bits: {first_bits} vs {last_bits}"
        );
    }
}
