//! Quorum-size ablation: the reliability/communication trade-off behind
//! the paper's `d = Θ(log n)` choice (and the load-balancing trade-off
//! its conclusion poses as future work).
//!
//! Smaller `d` means cheaper quorums (`Θ(d³)` routing per verification)
//! but weaker majorities: the strict-mode decided fraction degrades as
//! quorum sampling noise overwhelms the `1/2 + ε` margin.

use fba_ae::UnknowingAssignment;
use fba_sim::SilentAdversary;

use crate::experiments::common::{harness, KNOWING};
use crate::scope::{mean, mean_cell, Scope};
use crate::table::{fnum, Table};

/// The ablation table: κ (in `d = ⌈κ·ln n⌉`) vs decided %, bits and time.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let n = match scope {
        Scope::Quick => 64,
        _ => 256,
    };
    let mut t = Table::new(
        "ablate-d — quorum size vs reliability and cost (strict mode)",
        &["kappa", "d", "decided %", "rounds p50", "bits/node"],
    );
    for kappa in [1.5, 2.0, 3.0, 4.0] {
        let d = fba_samplers::default_quorum_size(n, kappa);
        let mut decided = Vec::new();
        let mut p50 = Vec::new();
        let mut bits = Vec::new();
        for seed in scope.seeds() {
            let (h, _) = harness(n, seed, KNOWING, UnknowingAssignment::RandomPerNode, |c| {
                c.with_d(d).strict()
            });
            let out = h.run(&h.engine_sync(), seed, &mut SilentAdversary::new(h.config().t));
            decided.push(out.metrics.decided_fraction() * 100.0);
            if let Some(s) = out.metrics.decided_quantile(0.5) {
                p50.push(s as f64);
            }
            bits.push(out.metrics.amortized_bits());
        }
        t.push_row(vec![
            fnum(kappa),
            d.to_string(),
            fnum(mean(&decided)),
            mean_cell(&p50),
            fnum(mean(&bits)),
        ]);
    }
    t.note(format!(
        "n = {n}, strict mode, silent-t adversary. Larger quorums buy reliability"
    ));
    t.note("(decided %) at Θ(d³) communication cost — the knob behind `d = Θ(log n)`.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_quorums_are_more_reliable_and_more_expensive() {
        let t = table(Scope::Quick);
        let first_decided: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last_decided: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last_decided >= first_decided - 3.0,
            "reliability should not degrade with d: {first_decided} → {last_decided}"
        );
        let first_bits: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last_bits: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last_bits > 2.0 * first_bits,
            "d³ scaling must show in bits: {first_bits} vs {last_bits}"
        );
    }
}
