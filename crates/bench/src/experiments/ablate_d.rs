//! Quorum-size ablation: the reliability/communication trade-off behind
//! the paper's `d = Θ(log n)` choice (and the load-balancing trade-off
//! its conclusion poses as future work).
//!
//! Smaller `d` means cheaper quorums (`Θ(d³)` routing per verification)
//! but weaker majorities: the strict-mode decided fraction degrades as
//! quorum sampling noise overwhelms the `1/2 + ε` margin.

use fba_ae::UnknowingAssignment;
use fba_sim::AdversarySpec;

use crate::battery::{Agg, Battery, Report};
use crate::experiments::common::{aer_scenario, KNOWING};
use crate::scope::Scope;
use crate::table::fnum;

/// The ablation table: κ (in `d = ⌈κ·ln n⌉`) vs decided %, bits and time.
#[must_use]
pub fn table(scope: Scope) -> Report {
    type Cell = (f64, Option<f64>, f64);
    let n = match scope {
        Scope::Quick => 64,
        _ => 256,
    };
    Battery::new(
        "ablate-d",
        "ablate-d — quorum size vs reliability and cost (strict mode)",
        move |&kappa: &f64, seed| -> Cell {
            let d = fba_samplers::default_quorum_size(n, kappa);
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .quorum_size(d)
                .strict()
                .adversary(AdversarySpec::Silent { t: None })
                .run(seed)
                .expect("ablate-d scenario")
                .into_aer();
            (
                out.run.metrics.decided_fraction() * 100.0,
                out.run.metrics.decided_quantile(0.5).map(|s| s as f64),
                out.run.metrics.amortized_bits(),
            )
        },
    )
    .axes(&["kappa"], |&kappa| vec![fnum(kappa)])
    .points(vec![1.5, 2.0, 3.0, 4.0])
    .col_point("d", move |&kappa| {
        fba_samplers::default_quorum_size(n, kappa).to_string()
    })
    .col("decided %", Agg::Mean, |o: &Cell| Some(o.0))
    .col("rounds p50", Agg::Mean, |o: &Cell| o.1)
    .col("bits/node", Agg::Mean, |o: &Cell| Some(o.2))
    .note(format!(
        "n = {n}, strict mode, silent-t adversary. Larger quorums buy reliability"
    ))
    .note("(decided %) at Θ(d³) communication cost — the knob behind `d = Θ(log n)`.")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_quorums_are_more_reliable_and_more_expensive() {
        let t = table(Scope::Quick).table;
        let first_decided: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let last_decided: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last_decided >= first_decided - 3.0,
            "reliability should not degrade with d: {first_decided} → {last_decided}"
        );
        let first_bits: f64 = t.rows.first().unwrap()[4].parse().unwrap();
        let last_bits: f64 = t.rows.last().unwrap()[4].parse().unwrap();
        assert!(
            last_bits > 2.0 * first_bits,
            "d³ scaling must show in bits: {first_bits} vs {last_bits}"
        );
    }
}
