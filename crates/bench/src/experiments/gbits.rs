//! gstring entropy experiment: the "`2/3 + ε` of gstring's bits are
//! uniformly random" precondition structure (§2.1, §3).
//!
//! The paper's gstring is produced by a committee whose corrupt members
//! can bias — but only — the bits *they* contribute. We reproduce that:
//! a `ρ` fraction of nodes contribute a fixed constant instead of private
//! randomness (semi-honest bias), and we measure what fraction of
//! gstring's bits those members actually controlled. With `ρ ≤ 1/3 − ε`
//! the uniform fraction must stay above `2/3 + ε` — exactly the
//! assumption Lemma 5's union bound needs.

use std::collections::BTreeSet;

use fba_scenario::{Phase, Scenario};
use fba_sim::choose_corrupt;

use crate::scope::{mean, Scope};
use crate::table::{fnum, Table};

/// The entropy table: rigged fraction vs measured controlled-bit
/// fraction.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let mut t = Table::new(
        "gbits — §2.1: fraction of gstring bits the adversary controls",
        &[
            "n",
            "rigged fraction",
            "committee rigged %",
            "controlled bits %",
            "uniform bits %",
            "knowing %",
        ],
    );
    let sizes = match scope {
        Scope::Quick => vec![64usize],
        _ => vec![64, 256, 1024],
    };
    for n in sizes {
        for rho in [0.0, 0.15, 0.30] {
            let mut committee_rigged = Vec::new();
            let mut controlled = Vec::new();
            let mut knowing = Vec::new();
            for seed in scope.seeds() {
                let k = ((n as f64) * rho).round() as usize;
                let mut rng = fba_sim::rng::derive_rng(seed, &[0x9b]);
                let rigged: BTreeSet<_> = choose_corrupt(n, k, &mut rng);
                let run = Scenario::new(n)
                    .phase(Phase::Ae)
                    .rig(rigged.clone(), 0)
                    .run(seed)
                    .expect("gbits scenario")
                    .into_ae();
                let (out, cfg) = (run.outcome, run.config);
                knowing.push(out.knowing_fraction * 100.0);
                if let Some(committee) = &out.supreme_committee {
                    let rigged_members = committee.iter().filter(|m| rigged.contains(m)).count();
                    committee_rigged.push(rigged_members as f64 / committee.len() as f64 * 100.0);
                    // Each member controls an equal slice of gstring.
                    let per = cfg.string_len.div_ceil(committee.len());
                    let controlled_bits = (rigged_members * per).min(cfg.string_len) as f64;
                    controlled.push(controlled_bits / cfg.string_len as f64 * 100.0);
                }
            }
            t.push_row(vec![
                n.to_string(),
                fnum(rho),
                fnum(mean(&committee_rigged)),
                fnum(mean(&controlled)),
                fnum(100.0 - mean(&controlled)),
                fnum(mean(&knowing)),
            ]);
        }
    }
    t.note("rigged members follow the protocol but contribute constants instead of");
    t.note("randomness. Controlled-bit % tracks the rigged committee fraction (≈ ρ);");
    t.note("with ρ ≤ 1/3 the uniform fraction stays ≥ 2/3 — the paper's precondition.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fraction_stays_above_two_thirds() {
        let t = table(Scope::Quick);
        for row in &t.rows {
            let rho: f64 = row[1].parse().unwrap();
            let uniform: f64 = row[4].parse().unwrap();
            let knowing: f64 = row[5].parse().unwrap();
            assert!(knowing > 99.0, "bias must not break agreement: {row:?}");
            if rho <= 0.30 {
                assert!(
                    uniform > 55.0,
                    "uniform fraction collapsed under rho={rho}: {row:?}"
                );
            }
            if rho == 0.0 {
                assert!(uniform > 99.0, "no rigging, no control: {row:?}");
            }
        }
    }
}
