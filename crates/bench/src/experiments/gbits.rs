//! gstring entropy experiment: the "`2/3 + ε` of gstring's bits are
//! uniformly random" precondition structure (§2.1, §3).
//!
//! The paper's gstring is produced by a committee whose corrupt members
//! can bias — but only — the bits *they* contribute. We reproduce that:
//! a `ρ` fraction of nodes contribute a fixed constant instead of private
//! randomness (semi-honest bias), and we measure what fraction of
//! gstring's bits those members actually controlled. With `ρ ≤ 1/3 − ε`
//! the uniform fraction must stay above `2/3 + ε` — exactly the
//! assumption Lemma 5's union bound needs.

use std::collections::BTreeSet;

use fba_scenario::{Phase, Scenario};
use fba_sim::choose_corrupt;

use crate::battery::{product2, Agg, Battery, Report};
use crate::scope::{mean, Scope};
use crate::table::fnum;

/// One cell run: committee-rigging stats are absent when the run formed
/// no supreme committee.
struct Cell {
    committee_rigged: Option<f64>,
    controlled: Option<f64>,
    knowing: f64,
}

/// The entropy table: rigged fraction vs measured controlled-bit
/// fraction.
#[must_use]
pub fn table(scope: Scope) -> Report {
    let sizes = match scope {
        Scope::Quick => vec![64usize],
        _ => vec![64, 256, 1024],
    };
    Battery::new(
        "gbits",
        "gbits — §2.1: fraction of gstring bits the adversary controls",
        |&(n, rho): &(usize, f64), seed| {
            let k = ((n as f64) * rho).round() as usize;
            let mut rng = fba_sim::rng::derive_rng(seed, &[0x9b]);
            let rigged: BTreeSet<_> = choose_corrupt(n, k, &mut rng);
            let run = Scenario::new(n)
                .phase(Phase::Ae)
                .rig(rigged.clone(), 0)
                .run(seed)
                .expect("gbits scenario")
                .into_ae();
            let (out, cfg) = (run.outcome, run.config);
            let committee_stats = out.supreme_committee.as_ref().map(|committee| {
                let rigged_members = committee.iter().filter(|m| rigged.contains(m)).count();
                // Each member controls an equal slice of gstring.
                let per = cfg.string_len.div_ceil(committee.len());
                let controlled_bits = (rigged_members * per).min(cfg.string_len) as f64;
                (
                    rigged_members as f64 / committee.len() as f64 * 100.0,
                    controlled_bits / cfg.string_len as f64 * 100.0,
                )
            });
            Cell {
                committee_rigged: committee_stats.map(|s| s.0),
                controlled: committee_stats.map(|s| s.1),
                knowing: out.knowing_fraction * 100.0,
            }
        },
    )
    .axes(&["n", "rigged fraction"], |&(n, rho)| {
        vec![n.to_string(), fnum(rho)]
    })
    .points(product2(&sizes, &[0.0, 0.15, 0.30]))
    .point_n(|&(n, _)| n)
    .col("committee rigged %", Agg::Mean, |o: &Cell| {
        o.committee_rigged
    })
    .col("controlled bits %", Agg::Mean, |o: &Cell| o.controlled)
    .col_derived("uniform bits %", |ctx| {
        // The complement of the *plain* controlled mean (0 when no run
        // formed a committee), matching the controlled column's source.
        fnum(100.0 - mean(&ctx.samples(|o| o.controlled)))
    })
    .col("knowing %", Agg::Mean, |o: &Cell| Some(o.knowing))
    .note("rigged members follow the protocol but contribute constants instead of")
    .note("randomness. Controlled-bit % tracks the rigged committee fraction (≈ ρ);")
    .note("with ρ ≤ 1/3 the uniform fraction stays ≥ 2/3 — the paper's precondition.")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fraction_stays_above_two_thirds() {
        let t = table(Scope::Quick).table;
        for row in &t.rows {
            let rho: f64 = row[1].parse().unwrap();
            let uniform: f64 = row[4].parse().unwrap();
            let knowing: f64 = row[5].parse().unwrap();
            assert!(knowing > 99.0, "bias must not break agreement: {row:?}");
            if rho <= 0.30 {
                assert!(
                    uniform > 55.0,
                    "uniform fraction collapsed under rho={rho}: {row:?}"
                );
            }
            if rho == 0.0 {
                assert!(uniform > 99.0, "no rigging, no control: {row:?}");
            }
        }
    }
}
