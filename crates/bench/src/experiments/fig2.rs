//! Figure 2 reproduction: the push and pull phase mechanics, as data.
//!
//! Figure 2a shows a node accepting candidate `s₁` (majority of its push
//! quorum pushed it) and rejecting `s₂`; Figure 2b shows one pull request
//! flowing through `H(s, x)`, the `H(s, w)` quorums and the poll list
//! `J(x, r)`. These experiments regenerate both as measured tables.

use fba_ae::UnknowingAssignment;
use fba_core::trace::{push_votes_at, request_flow};
use fba_sim::NodeId;

use crate::experiments::common::{aer_scenario, KNOWING};
use crate::par::par_map;
use crate::scope::Scope;
use crate::table::{fnum, Table};

/// Figure 2a: push-quorum vote counts and verdicts at unknowing nodes.
#[must_use]
pub fn f2a(scope: Scope) -> Table {
    let n = match scope {
        Scope::Quick => 48,
        _ => 96,
    };
    let seed = 7;
    let out = aer_scenario(n, 0.75, UnknowingAssignment::SharedAdversarial)
        .record_transcript(true)
        .run(seed)
        .expect("f2a scenario")
        .into_aer();
    let pre = &out.precondition;
    let scheme = out.config.scheme();
    let cfg = &out.config;

    let mut t = Table::new(
        "f2a — Fig. 2a: push-phase votes at sample unknowing nodes",
        &["node", "string", "valid pushes", "needed", "verdict"],
    );
    let witnesses: Vec<NodeId> = (0..n)
        .map(NodeId::from_index)
        .filter(|id| !pre.knows(*id))
        .take(3)
        .collect();
    let bogus = pre
        .assignments
        .iter()
        .find(|s| **s != pre.gstring)
        .expect("bogus block exists");
    // Each witness's vote tally scans the whole transcript; fan the
    // witnesses across cores (read-only over one recorded run).
    let tallies = par_map(witnesses.clone(), |x| {
        let votes = push_votes_at(&out.run.transcript, x, &scheme);
        (x, votes.votes_for(&pre.gstring), votes.votes_for(bogus))
    });
    for (x, g_count, bad_count) in tallies {
        for (label, count) in [("s1 = gstring", g_count), ("s2 (shared bogus)", bad_count)] {
            t.push_row(vec![
                x.to_string(),
                label.into(),
                count.to_string(),
                cfg.majority().to_string(),
                if count >= cfg.majority() {
                    "accepted".into()
                } else {
                    "rejected".into()
                },
            ]);
        }
    }
    t.note(format!(
        "n = {n}, d = {}, 75% know gstring, 25% share one bogus candidate.",
        cfg.d
    ));
    t.note("gstring crosses the majority at (nearly) every witness; the bogus block does not.");
    t
}

/// Figure 2b: message counts per hop for one node's gstring verification.
#[must_use]
pub fn f2b(scope: Scope) -> Table {
    let n = match scope {
        Scope::Quick => 48,
        _ => 96,
    };
    let seed = 9;
    let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
        .record_transcript(true)
        .run(seed)
        .expect("f2b scenario")
        .into_aer();
    let pre = &out.precondition;
    let x = (0..n)
        .map(NodeId::from_index)
        .find(|id| pre.knows(*id))
        .expect("a knowing node exists");

    let mut t = Table::new(
        "f2b — Fig. 2b: one pull request for gstring, hop by hop",
        &["hop", "message", "count", "first step", "ref (d, d², d³)"],
    );
    let d = out.config.d as f64;
    let flow = request_flow(&out.run.transcript, x, &pre.gstring);
    let rows: [(&str, &str, f64); 5] = [
        ("Poll", "Poll(s,r) → J(x,r)", d),
        ("Pull", "Pull(s,r) → H(s,x)", d),
        ("Fw1", "Fw1 → H(s,w) ∀w", d * d * d),
        ("Fw2", "Fw2 → w", d * d),
        ("Answer", "Answer → x", d),
    ];
    for (i, (kind, label, reference)) in rows.iter().enumerate() {
        let hop = flow.hop(kind).expect("hop present");
        t.push_row(vec![
            (i + 1).min(4).to_string(),
            (*label).into(),
            hop.count.to_string(),
            hop.first_step.map_or("-".to_string(), |s| s.to_string()),
            fnum(*reference),
        ]);
    }
    t.note(format!(
        "requester {x}, n = {n}, d = {}; decision at step {}; pipeline depth {}.",
        out.config.d,
        out.run
            .metrics
            .decided_at(x)
            .map_or("-".to_string(), |s| s.to_string()),
        flow.pipeline_depth()
            .map_or("-".to_string(), |s| s.to_string()),
    ));
    t.note("counts track the d/d³/d²/d fan-out of Algorithms 1–3 (routers forward only if");
    t.note("the string matches their belief, so Fw1 ≈ knowing-fraction × d³).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2a_rows_accept_gstring_and_reject_bogus() {
        let t = f2a(Scope::Quick);
        assert!(!t.rows.is_empty());
        let mut g_accepted = 0;
        let mut g_total = 0;
        for row in &t.rows {
            if row[1].contains("gstring") {
                g_total += 1;
                if row[4] == "accepted" {
                    g_accepted += 1;
                }
            } else {
                assert_eq!(row[4], "rejected", "bogus block accepted: {row:?}");
            }
        }
        assert!(
            g_accepted * 3 >= g_total * 2,
            "gstring accepted at only {g_accepted}/{g_total} witnesses"
        );
    }

    #[test]
    fn f2b_counts_every_hop() {
        let t = f2b(Scope::Quick);
        assert_eq!(t.rows.len(), 5);
        // The Fw1 wave must dominate.
        let fw1: usize = t.rows[2][2].parse().unwrap();
        let answers: usize = t.rows[4][2].parse().unwrap();
        assert!(fw1 > answers, "Fw1 {fw1} vs answers {answers}");
        assert!(answers >= 1);
    }
}
