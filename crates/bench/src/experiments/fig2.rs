//! Figure 2 reproduction: the push and pull phase mechanics, as data.
//!
//! Figure 2a shows a node accepting candidate `s₁` (majority of its push
//! quorum pushed it) and rejecting `s₂`; Figure 2b shows one pull request
//! flowing through `H(s, x)`, the `H(s, w)` quorums and the poll list
//! `J(x, r)`. These experiments regenerate both as measured tables —
//! single-cell batteries (one fixed-seed recorded run each) whose rows
//! dissect the transcript rather than aggregate a sweep.

use fba_ae::UnknowingAssignment;
use fba_core::trace::{push_votes_at, request_flow, HopSummary};
use fba_sim::NodeId;

use crate::battery::{Agg, Battery, Report, SeedPolicy};
use crate::experiments::common::{aer_scenario, KNOWING};
use crate::scope::Scope;
use crate::table::fnum;

/// One witness's vote tally in the recorded f2a run.
struct Tally {
    witness: NodeId,
    gstring_votes: usize,
    bogus_votes: usize,
}

/// The f2a cell: per-witness tallies plus the run parameters the table
/// and notes read.
struct F2aCell {
    tallies: Vec<Tally>,
    majority: usize,
    d: usize,
    n: usize,
}

/// Figure 2a: push-quorum vote counts and verdicts at unknowing nodes.
#[must_use]
pub fn f2a(scope: Scope) -> Report {
    let n = match scope {
        Scope::Quick => 48,
        _ => 96,
    };
    let battery = Battery::new(
        "f2a",
        "f2a — Fig. 2a: push-phase votes at sample unknowing nodes",
        move |&(): &(), seed| {
            let out = aer_scenario(n, 0.75, UnknowingAssignment::SharedAdversarial)
                .record_transcript(true)
                .run(seed)
                .expect("f2a scenario")
                .into_aer();
            let pre = &out.precondition;
            let scheme = out.config.scheme();
            let bogus = pre
                .assignments
                .iter()
                .find(|s| **s != pre.gstring)
                .expect("bogus block exists");
            let tallies = (0..n)
                .map(NodeId::from_index)
                .filter(|id| !pre.knows(*id))
                .take(3)
                .map(|x| {
                    let votes = push_votes_at(&out.run.transcript, x, &scheme);
                    Tally {
                        witness: x,
                        gstring_votes: votes.votes_for(&pre.gstring),
                        bogus_votes: votes.votes_for(bogus),
                    }
                })
                .collect();
            F2aCell {
                tallies,
                majority: out.config.majority(),
                d: out.config.d,
                n,
            }
        },
    )
    .points(vec![()])
    .seeds(SeedPolicy::Fixed(vec![7]))
    .rows(
        &["node", "string", "valid pushes", "needed", "verdict"],
        |ctx| {
            let cell = &ctx.outcomes()[0];
            let mut rows = Vec::new();
            for tally in &cell.tallies {
                for (label, count) in [
                    ("s1 = gstring", tally.gstring_votes),
                    ("s2 (shared bogus)", tally.bogus_votes),
                ] {
                    rows.push(vec![
                        tally.witness.to_string(),
                        label.into(),
                        count.to_string(),
                        cell.majority.to_string(),
                        if count >= cell.majority {
                            "accepted".into()
                        } else {
                            "rejected".into()
                        },
                    ]);
                }
            }
            rows
        },
    )
    .json_metric("witnesses", Agg::Mean, |o: &F2aCell| {
        Some(o.tallies.len() as f64)
    })
    .json_metric("gstring accepted witnesses", Agg::Mean, |o: &F2aCell| {
        Some(
            o.tallies
                .iter()
                .filter(|t| t.gstring_votes >= o.majority)
                .count() as f64,
        )
    })
    .json_metric("bogus accepted witnesses", Agg::Mean, |o: &F2aCell| {
        Some(
            o.tallies
                .iter()
                .filter(|t| t.bogus_votes >= o.majority)
                .count() as f64,
        )
    })
    .cached();
    let mut report = battery.report(scope);
    let cell = &battery.grid(scope).groups[0][0];
    report.table.note(format!(
        "n = {}, d = {}, 75% know gstring, 25% share one bogus candidate.",
        cell.n, cell.d
    ));
    report
        .table
        .note("gstring crosses the majority at (nearly) every witness; the bogus block does not.");
    report
}

/// The f2b cell: the five hop summaries of one pull request plus the
/// run parameters the table and notes read.
struct F2bCell {
    hops: Vec<(String, HopSummary)>,
    pipeline_depth: Option<u64>,
    requester: NodeId,
    decided_at: Option<u64>,
    d: usize,
    n: usize,
}

/// Figure 2b: message counts per hop for one node's gstring verification.
#[must_use]
pub fn f2b(scope: Scope) -> Report {
    let n = match scope {
        Scope::Quick => 48,
        _ => 96,
    };
    let battery = Battery::new(
        "f2b",
        "f2b — Fig. 2b: one pull request for gstring, hop by hop",
        move |&(): &(), seed| {
            let out = aer_scenario(n, KNOWING, UnknowingAssignment::RandomPerNode)
                .record_transcript(true)
                .run(seed)
                .expect("f2b scenario")
                .into_aer();
            let pre = &out.precondition;
            let x = (0..n)
                .map(NodeId::from_index)
                .find(|id| pre.knows(*id))
                .expect("a knowing node exists");
            let flow = request_flow(&out.run.transcript, x, &pre.gstring);
            let hops = ["Poll", "Pull", "Fw1", "Fw2", "Answer"]
                .iter()
                .map(|&kind| {
                    let hop = flow.hop(kind).expect("hop present");
                    (kind.to_string(), hop.clone())
                })
                .collect();
            F2bCell {
                hops,
                pipeline_depth: flow.pipeline_depth(),
                requester: x,
                decided_at: out.run.metrics.decided_at(x),
                d: out.config.d,
                n,
            }
        },
    )
    .points(vec![()])
    .seeds(SeedPolicy::Fixed(vec![9]))
    .rows(
        &["hop", "message", "count", "first step", "ref (d, d², d³)"],
        |ctx| {
            let cell = &ctx.outcomes()[0];
            let d = cell.d as f64;
            let labels: [(&str, f64); 5] = [
                ("Poll(s,r) → J(x,r)", d),
                ("Pull(s,r) → H(s,x)", d),
                ("Fw1 → H(s,w) ∀w", d * d * d),
                ("Fw2 → w", d * d),
                ("Answer → x", d),
            ];
            cell.hops
                .iter()
                .zip(labels)
                .enumerate()
                .map(|(i, ((_, hop), (label, reference)))| {
                    vec![
                        (i + 1).min(4).to_string(),
                        label.into(),
                        hop.count.to_string(),
                        hop.first_step.map_or("-".to_string(), |s| s.to_string()),
                        fnum(reference),
                    ]
                })
                .collect()
        },
    )
    .json_metric("fw1 count", Agg::Mean, |o: &F2bCell| {
        o.hops
            .iter()
            .find(|(kind, _)| kind == "Fw1")
            .map(|(_, hop)| hop.count as f64)
    })
    .json_metric("answer count", Agg::Mean, |o: &F2bCell| {
        o.hops
            .iter()
            .find(|(kind, _)| kind == "Answer")
            .map(|(_, hop)| hop.count as f64)
    })
    .json_metric("pipeline depth", Agg::Mean, |o: &F2bCell| {
        o.pipeline_depth.map(|s| s as f64)
    })
    .cached();
    let mut report = battery.report(scope);
    let cell = &battery.grid(scope).groups[0][0];
    report.table.note(format!(
        "requester {}, n = {}, d = {}; decision at step {}; pipeline depth {}.",
        cell.requester,
        cell.n,
        cell.d,
        cell.decided_at.map_or("-".to_string(), |s| s.to_string()),
        cell.pipeline_depth
            .map_or("-".to_string(), |s| s.to_string()),
    ));
    report
        .table
        .note("counts track the d/d³/d²/d fan-out of Algorithms 1–3 (routers forward only if");
    report
        .table
        .note("the string matches their belief, so Fw1 ≈ knowing-fraction × d³).");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2a_rows_accept_gstring_and_reject_bogus() {
        let t = f2a(Scope::Quick).table;
        assert!(!t.rows.is_empty());
        let mut g_accepted = 0;
        let mut g_total = 0;
        for row in &t.rows {
            if row[1].contains("gstring") {
                g_total += 1;
                if row[4] == "accepted" {
                    g_accepted += 1;
                }
            } else {
                assert_eq!(row[4], "rejected", "bogus block accepted: {row:?}");
            }
        }
        assert!(
            g_accepted * 3 >= g_total * 2,
            "gstring accepted at only {g_accepted}/{g_total} witnesses"
        );
    }

    #[test]
    fn f2b_counts_every_hop() {
        let t = f2b(Scope::Quick).table;
        assert_eq!(t.rows.len(), 5);
        // The Fw1 wave must dominate.
        let fw1: usize = t.rows[2][2].parse().unwrap();
        let answers: usize = t.rows[4][2].parse().unwrap();
        assert!(fw1 > answers, "Fw1 {fw1} vs answers {answers}");
        assert!(answers >= 1);
    }
}
