//! The almost-everywhere substrate contract experiment (§2.1
//! precondition): knowing fraction, rounds and bits per node of the
//! committee-tree phase.

use fba_scenario::{Phase, Scenario};
use fba_sim::AdversarySpec;

use crate::scope::{mean, Scope};
use crate::table::{fnum, Table};

/// The AE contract table.
#[must_use]
pub fn table(scope: Scope) -> Table {
    let mut t = Table::new(
        "ae — §2.1 precondition: the almost-everywhere phase contract",
        &[
            "n",
            "adversary",
            "knowing %",
            "rounds",
            "bits/node",
            "bits growth",
        ],
    );
    let mut prev_bits: Option<(f64, usize)> = None;
    for n in scope.light_sizes() {
        for (name, t_frac) in [("none", 0.0), ("silent 15%", 0.15)] {
            let mut knowing = Vec::new();
            let mut rounds = Vec::new();
            let mut bits = Vec::new();
            for seed in scope.seeds() {
                let scenario = if t_frac == 0.0 {
                    Scenario::new(n).phase(Phase::Ae)
                } else {
                    let t = (n as f64 * t_frac) as usize;
                    Scenario::new(n)
                        .phase(Phase::Ae)
                        .faults(t)
                        .adversary(AdversarySpec::Silent { t: None })
                };
                let outcome = scenario.run(seed).expect("ae scenario").into_ae().outcome;
                knowing.push(outcome.knowing_fraction * 100.0);
                rounds.push(outcome.run.metrics.steps as f64);
                bits.push(outcome.run.metrics.amortized_bits());
            }
            let growth = if name == "none" {
                let b = mean(&bits);
                let cell = match prev_bits {
                    Some((pb, pn)) => format!(
                        "×{} over ×{}",
                        fnum(b / pb.max(1.0)),
                        fnum(n as f64 / pn as f64)
                    ),
                    None => "-".to_string(),
                };
                prev_bits = Some((b, n));
                cell
            } else {
                "-".to_string()
            };
            t.push_row(vec![
                n.to_string(),
                name.into(),
                fnum(mean(&knowing)),
                fnum(mean(&rounds)),
                fnum(mean(&bits)),
                growth,
            ]);
        }
    }
    t.note("contract: > 75% of correct nodes know gstring, polylog rounds, polylog bits/node");
    t.note("(the bits growth column should lag far behind the ×n growth it is printed over).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_holds_at_quick_scale() {
        let t = table(Scope::Quick);
        for row in &t.rows {
            let knowing: f64 = row[2].parse().unwrap();
            assert!(knowing > 75.0, "contract violated: {row:?}");
        }
    }
}
