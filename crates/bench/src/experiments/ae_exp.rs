//! The almost-everywhere substrate contract experiment (§2.1
//! precondition): knowing fraction, rounds and bits per node of the
//! committee-tree phase — a declarative battery.

use fba_scenario::{Phase, Scenario};
use fba_sim::AdversarySpec;

use crate::battery::{product2, Agg, Battery, Report};
use crate::scope::{mean, Scope};
use crate::table::fnum;

/// The AE contract table.
#[must_use]
pub fn table(scope: Scope) -> Report {
    type Cell = (f64, f64, f64);
    const ADVERSARIES: [(&str, f64); 2] = [("none", 0.0), ("silent 15%", 0.15)];
    Battery::new(
        "ae",
        "ae — §2.1 precondition: the almost-everywhere phase contract",
        |&(n, (_, t_frac)): &(usize, (&str, f64)), seed| -> Cell {
            let scenario = if t_frac == 0.0 {
                Scenario::new(n).phase(Phase::Ae)
            } else {
                let t = (n as f64 * t_frac) as usize;
                Scenario::new(n)
                    .phase(Phase::Ae)
                    .faults(t)
                    .adversary(AdversarySpec::Silent { t: None })
            };
            let outcome = scenario.run(seed).expect("ae scenario").into_ae().outcome;
            (
                outcome.knowing_fraction * 100.0,
                outcome.run.metrics.steps as f64,
                outcome.run.metrics.amortized_bits(),
            )
        },
    )
    .axes(&["n", "adversary"], |&(n, (name, _))| {
        vec![n.to_string(), name.to_string()]
    })
    .points(product2(&scope.light_sizes(), &ADVERSARIES))
    .point_n(|&(n, _)| n)
    .col("knowing %", Agg::Mean, |o: &Cell| Some(o.0))
    .col("rounds", Agg::Mean, |o: &Cell| Some(o.1))
    .col("bits/node", Agg::Mean, |o: &Cell| Some(o.2))
    .col_derived("bits growth", |ctx| {
        // Growth against the previous adversary-free row (the points are
        // n-major, so that row is two back), printed over the ×n scale
        // jump it happened across — `-` on the first size and on the
        // adversarial rows.
        let &(n, (name, _)) = ctx.point();
        if name != "none" || ctx.index < 2 {
            return "-".to_string();
        }
        let (prev_n, _) = ctx.grid.points[ctx.index - 2];
        let bits = mean(&ctx.samples(|o| Some(o.2)));
        let prev_bits = mean(&ctx.grid.samples(ctx.index - 2, |o| Some(o.2)));
        format!(
            "×{} over ×{}",
            fnum(bits / prev_bits.max(1.0)),
            fnum(n as f64 / prev_n as f64)
        )
    })
    .note("contract: > 75% of correct nodes know gstring, polylog rounds, polylog bits/node")
    .note("(the bits growth column should lag far behind the ×n growth it is printed over).")
    .report(scope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_holds_at_quick_scale() {
        let t = table(Scope::Quick).table;
        for row in &t.rows {
            let knowing: f64 = row[2].parse().unwrap();
            assert!(knowing > 75.0, "contract violated: {row:?}");
        }
        // The growth column anchors and only fills on adversary-free rows.
        assert_eq!(t.rows[0][5], "-");
        assert_eq!(t.rows[1][5], "-");
        assert!(t.rows[2][5].contains("over"), "row {:?}", t.rows[2]);
    }
}
